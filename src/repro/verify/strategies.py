"""Seeded random SA problem generators for property testing.

The paper's three workload generators model realistic populations; the
strategies here instead stress the *machinery*: random tree shapes,
skewed and clustered subscription sets, degenerate (zero-width) boxes,
and adversarial mixes of duplicates, nested boxes, and domain-sized
subscriptions.  Every instance is derived deterministically from a
``(kind, seed)`` pair, so a property-suite failure is replayable from
its case id alone.

Instances are kept small (tens of subscribers, a handful of brokers) so
every registered algorithm — including the LP-based SLP variants — can
be pushed through :func:`repro.verify.verify_solution` hundreds of
times in a test run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import SAParameters, SAProblem
from ..geometry import Rect, RectSet
from ..network import build_hierarchical_tree, build_one_level_tree

__all__ = ["EVENT_DOMAIN", "STRATEGY_NAMES", "RandomInstance",
           "random_problem", "problem_cases"]

#: Event domain every strategy generates subscriptions inside.
EVENT_DOMAIN = Rect([0.0, 0.0], [100.0, 100.0])

STRATEGY_NAMES = ("uniform", "clustered", "skewed", "degenerate",
                  "adversarial")

_NETWORK_DIM = 3


@dataclass(frozen=True)
class RandomInstance:
    """A generated problem plus the metadata needed to replay it."""

    kind: str
    seed: int
    problem: SAProblem

    @property
    def case_id(self) -> str:
        return f"{self.kind}-{self.seed}"


def _uniform_boxes(rng: np.random.Generator, n: int) -> RectSet:
    lo = rng.uniform(0.0, 90.0, size=(n, 2))
    widths = rng.uniform(1.0, 10.0, size=(n, 2))
    return RectSet(lo, np.minimum(lo + widths, 100.0))


def _clustered_boxes(rng: np.random.Generator, n: int) -> RectSet:
    num_clusters = int(rng.integers(2, 5))
    centers = rng.uniform(10.0, 90.0, size=(num_clusters, 2))
    which = rng.integers(0, num_clusters, size=n)
    jitter = rng.normal(scale=3.0, size=(n, 2))
    mid = np.clip(centers[which] + jitter, 1.0, 99.0)
    half = rng.uniform(0.25, 4.0, size=(n, 2))
    return RectSet(np.clip(mid - half, 0.0, 100.0),
                   np.clip(mid + half, 0.0, 100.0))


def _skewed_boxes(rng: np.random.Generator, n: int) -> RectSet:
    # Zipf-like width spectrum: a few near-domain-sized boxes, a long
    # tail of tiny ones, positions hot-spotted toward one corner.
    ranks = rng.permutation(n) + 1
    widths = np.minimum(95.0 * ranks[:, None] ** -0.8
                        * rng.uniform(0.5, 1.5, size=(n, 2)), 95.0)
    lo = np.abs(rng.normal(scale=20.0, size=(n, 2)))
    lo = np.minimum(lo, 100.0 - widths)
    return RectSet(lo, lo + widths)


def _degenerate_boxes(rng: np.random.Generator, n: int) -> RectSet:
    rects = _uniform_boxes(rng, n)
    lo = rects.lo.copy()
    hi = rects.hi.copy()
    flatten = rng.random(size=(n, 2)) < 0.4   # zero-width per axis
    hi[flatten] = lo[flatten]
    return RectSet(lo, hi)


def _adversarial_boxes(rng: np.random.Generator, n: int) -> RectSet:
    lo = np.empty((n, 2))
    hi = np.empty((n, 2))
    anchor_lo = rng.uniform(20.0, 60.0, size=2)
    anchor_hi = anchor_lo + rng.uniform(5.0, 20.0, size=2)
    for i in range(n):
        roll = rng.random()
        if roll < 0.3:       # exact duplicates of one shared box
            lo[i], hi[i] = anchor_lo, anchor_hi
        elif roll < 0.5:     # nested shrinking copies of the shared box
            shrink = rng.uniform(0.1, 0.9)
            center = (anchor_lo + anchor_hi) / 2.0
            half = (anchor_hi - anchor_lo) / 2.0 * shrink
            lo[i], hi[i] = center - half, center + half
        elif roll < 0.65:    # the whole event domain
            lo[i], hi[i] = EVENT_DOMAIN.lo, EVENT_DOMAIN.hi
        elif roll < 0.8:     # a shared point (degenerate duplicate)
            lo[i] = hi[i] = anchor_lo
        else:                # ordinary random box
            lo[i] = rng.uniform(0.0, 90.0, size=2)
            hi[i] = lo[i] + rng.uniform(0.5, 10.0, size=2)
    return RectSet(lo, hi)


_SUBSCRIPTION_STRATEGIES = {
    "uniform": _uniform_boxes,
    "clustered": _clustered_boxes,
    "skewed": _skewed_boxes,
    "degenerate": _degenerate_boxes,
    "adversarial": _adversarial_boxes,
}


def _random_network(rng: np.random.Generator, n: int,
                    num_brokers: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Publisher, broker, and subscriber positions in network space."""
    publisher = rng.uniform(-5.0, 5.0, size=_NETWORK_DIM)
    num_sites = int(rng.integers(2, 5))
    sites = rng.uniform(-50.0, 50.0, size=(num_sites, _NETWORK_DIM))
    members = rng.integers(0, num_sites, size=n)
    subscribers = sites[members] + rng.normal(scale=4.0,
                                              size=(n, _NETWORK_DIM))
    # Brokers track the subscriber sites so load balance is attainable.
    broker_sites = sites[rng.integers(0, num_sites, size=num_brokers)]
    brokers = broker_sites + rng.normal(scale=4.0,
                                        size=(num_brokers, _NETWORK_DIM))
    return publisher, brokers, subscribers


def random_problem(seed: int, kind: str = "uniform") -> RandomInstance:
    """One deterministic random instance of the given strategy.

    Constraint parameters are drawn generously (ample ``max_delay``,
    ``beta_max`` with headroom) so that every instance is feasible and
    each algorithm can be held to its guarantees.
    """
    if kind not in _SUBSCRIPTION_STRATEGIES:
        raise ValueError(f"unknown strategy {kind!r}; "
                         f"known: {', '.join(STRATEGY_NAMES)}")
    rng = np.random.default_rng([seed, STRATEGY_NAMES.index(kind)])
    n = int(rng.integers(16, 48))
    num_brokers = int(rng.integers(3, 7))
    publisher, brokers, subscribers = _random_network(rng, n, num_brokers)

    if num_brokers >= 4 and rng.random() < 0.3:
        tree = build_hierarchical_tree(publisher, brokers,
                                       max_out_degree=3, rng=rng)
    else:
        tree = build_one_level_tree(publisher, brokers)

    subscriptions = _SUBSCRIPTION_STRATEGIES[kind](rng, n)
    beta = float(rng.uniform(1.5, 2.0))
    params = SAParameters(
        alpha=int(rng.integers(1, 4)),
        max_delay=float(rng.uniform(0.5, 1.2)),
        beta=beta,
        beta_max=beta + float(rng.uniform(0.8, 1.2)),
    )
    problem = SAProblem(tree, subscribers, subscriptions, params)
    return RandomInstance(kind=kind, seed=seed, problem=problem)


def problem_cases(count: int, base_seed: int = 0) -> list[tuple[str, int]]:
    """``count`` replayable ``(kind, seed)`` case ids, round-robin over
    every strategy so each gets even coverage."""
    if count < 0:
        raise ValueError("count must be non-negative")
    cases = []
    for i in range(count):
        kind = STRATEGY_NAMES[i % len(STRATEGY_NAMES)]
        cases.append((kind, base_seed + i))
    return cases
