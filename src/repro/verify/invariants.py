"""End-to-end invariant checking for arbitrary SA solutions.

:class:`~repro.core.problem.SASolution.validate` answers "is this
feasible" with a handful of booleans; this module answers *what exactly
is wrong and where*.  :func:`verify_solution` re-derives every paper
guarantee from scratch — assignment completeness, per-subscriber latency
budgets ``delta_j <= (1 + D) * Delta_j``, the nesting condition (leaf
filters cover their assigned subscriptions, child filters nest inside
their parents as point sets), the ``alpha`` filter-complexity cap, and
the load-balance factor against ``beta_max`` — and returns a structured
:class:`VerificationReport` whose :class:`Violation` records name the
offending subscriber or broker, the measured quantity, and the limit it
broke.

Not every registered algorithm promises every invariant (Gr¬l is
latency-blind by design, Closest¬b ignores load); the
:func:`guaranteed_checks` map states what each algorithm *does*
guarantee, so the property suite and the ``repro verify`` CLI hold each
algorithm to exactly its own contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.problem import SAProblem, SASolution
from ..network.tree import PUBLISHER

__all__ = [
    "CHECK_ASSIGNMENT",
    "CHECK_LATENCY",
    "CHECK_NESTING",
    "CHECK_COMPLEXITY",
    "CHECK_LOAD",
    "ALL_CHECKS",
    "Violation",
    "VerificationReport",
    "verify_solution",
    "guaranteed_checks",
]

CHECK_ASSIGNMENT = "assignment"   #: every subscriber mapped to a real leaf
CHECK_LATENCY = "latency"         #: delta_j <= (1 + D) * Delta_j per subscriber
CHECK_NESTING = "nesting"         #: subscriptions covered; child in parent
CHECK_COMPLEXITY = "complexity"   #: at most alpha rectangles per filter
CHECK_LOAD = "load"               #: lbf <= beta_max

ALL_CHECKS = frozenset({CHECK_ASSIGNMENT, CHECK_LATENCY, CHECK_NESTING,
                        CHECK_COMPLEXITY, CHECK_LOAD})

#: Relative latency slack mirroring SASolution.validate's tolerance.
_LATENCY_RTOL = 1e-6
#: Absolute slack on the load-balance factor comparison.
_LBF_ATOL = 1e-9


@dataclass(frozen=True)
class Violation:
    """One broken invariant, pinned to the entity that broke it."""

    check: str             #: which invariant (one of the CHECK_* names)
    subject: str           #: e.g. "subscriber 12", "broker 3"
    message: str           #: human-readable description
    measured: float | None = None  #: observed quantity, when numeric
    limit: float | None = None     #: bound it violated, when numeric

    def __str__(self) -> str:
        text = f"[{self.check}] {self.subject}: {self.message}"
        if self.measured is not None and self.limit is not None:
            text += f" ({self.measured:.6g} > {self.limit:.6g})"
        return text


@dataclass
class VerificationReport:
    """Structured outcome of :func:`verify_solution`."""

    checks: frozenset[str]            #: invariants that were evaluated
    violations: list[Violation] = field(default_factory=list)
    lbf: float = 0.0                  #: measured load-balance factor
    max_delay_seen: float = 0.0       #: worst per-subscriber delay observed
    num_subscribers: int = 0
    num_brokers: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, check: str) -> int:
        """Number of violations of one invariant."""
        return sum(1 for v in self.violations if v.check == check)

    def by_check(self) -> dict[str, int]:
        """Violation counts keyed by invariant, for every check run."""
        return {check: self.count(check) for check in sorted(self.checks)}

    def summary(self, max_lines: int = 10) -> str:
        """A short multi-line report: verdict, counts, first violations."""
        lines = [
            ("OK" if self.ok else f"FAILED ({len(self.violations)} violations)")
            + f" — checks: {', '.join(sorted(self.checks))}; "
            f"lbf={self.lbf:.3f}, worst delay={self.max_delay_seen:.3f}"
        ]
        for violation in self.violations[:max_lines]:
            lines.append("  " + str(violation))
        if len(self.violations) > max_lines:
            lines.append(f"  ... and {len(self.violations) - max_lines} more")
        return "\n".join(lines)


def _check_assignment(problem: SAProblem, assignment: np.ndarray,
                      out: list[Violation]) -> np.ndarray:
    """Validate targets; returns the mask of validly assigned subscribers."""
    leaf_set = {int(v) for v in problem.tree.leaves}
    valid = np.zeros(problem.num_subscribers, dtype=bool)
    for j in range(problem.num_subscribers):
        node = int(assignment[j])
        if node < 0:
            out.append(Violation(CHECK_ASSIGNMENT, f"subscriber {j}",
                                 "not assigned to any leaf broker"))
        elif node not in leaf_set:
            out.append(Violation(CHECK_ASSIGNMENT, f"subscriber {j}",
                                 f"assigned to node {node}, which is not a "
                                 "leaf broker"))
        else:
            valid[j] = True
    return valid


def _check_latency(problem: SAProblem, assignment: np.ndarray,
                   valid: np.ndarray, out: list[Violation]) -> float:
    worst = 0.0
    for j in np.flatnonzero(valid):
        row = problem.tree.leaf_row(int(assignment[j]))
        used = float(problem.leaf_latency[row, j])
        budget = float(problem.latency_budgets[j])
        base = float(problem.shortest_latency[j])
        delay = used / base - 1.0 if base > 0 else 0.0
        worst = max(worst, delay)
        if used > budget * (1.0 + _LATENCY_RTOL):
            out.append(Violation(
                CHECK_LATENCY, f"subscriber {int(j)}",
                f"path latency via leaf {int(assignment[j])} exceeds the "
                f"budget (delay {delay:.4f} vs D={problem.params.max_delay})",
                measured=used, limit=budget))
    return worst


def _check_nesting(problem: SAProblem, solution: SASolution,
                   assignment: np.ndarray, valid: np.ndarray,
                   out: list[Violation]) -> None:
    # Leaf level: every assigned subscription must be covered by its
    # leaf's filter (single-rectangle containment — the paper's "cover").
    for j in np.flatnonzero(valid):
        leaf = int(assignment[j])
        leaf_filter = solution.filters.get(leaf)
        if leaf_filter is None:
            out.append(Violation(CHECK_NESTING, f"broker {leaf}",
                                 "has assigned subscribers but no filter"))
        elif not leaf_filter.contains_subscription(problem.subscriptions.rect(int(j))):
            out.append(Violation(
                CHECK_NESTING, f"subscriber {int(j)}",
                f"subscription not covered by the filter of leaf {leaf}"))

    # Interior: each child filter must nest inside its parent's filter as
    # a point set (the publisher forwards everything, so depth-1 nodes
    # are exempt).
    tree = problem.tree
    for node in range(1, tree.num_nodes):
        parent = int(tree.parents[node])
        if parent == PUBLISHER:
            continue
        child_filter = solution.filters.get(node)
        if child_filter is None or child_filter.is_empty():
            continue
        parent_filter = solution.filters.get(parent)
        if parent_filter is None or not parent_filter.covers_filter(child_filter):
            out.append(Violation(
                CHECK_NESTING, f"broker {node}",
                f"filter not nested inside the filter of parent {parent}"))


def _check_complexity(problem: SAProblem, solution: SASolution,
                      out: list[Violation]) -> None:
    alpha = problem.params.alpha
    for node, filt in sorted(solution.filters.items()):
        if filt.complexity > alpha:
            out.append(Violation(
                CHECK_COMPLEXITY, f"broker {node}",
                "filter exceeds the alpha slot cap",
                measured=float(filt.complexity), limit=float(alpha)))


def _check_load(problem: SAProblem, assignment: np.ndarray,
                out: list[Violation]) -> float:
    loads = problem.loads(assignment)
    shares = loads / (problem.kappas * problem.num_subscribers)
    limit = problem.params.beta_max
    for row in np.flatnonzero(shares > limit + _LBF_ATOL):
        out.append(Violation(
            CHECK_LOAD, f"broker {int(problem.tree.leaves[row])}",
            f"load {int(loads[row])} exceeds its beta_max share",
            measured=float(shares[row]), limit=limit))
    return float(shares.max()) if len(shares) else 0.0


def verify_solution(problem: SAProblem, solution: SASolution,
                    checks: frozenset[str] | set[str] = ALL_CHECKS) -> VerificationReport:
    """Check an arbitrary solution against the requested invariants.

    Unlike :meth:`SASolution.validate`, the result carries one
    :class:`Violation` per broken constraint instance, so a failure says
    *which* subscriber's budget or *which* broker's filter is wrong.
    """
    unknown = set(checks) - ALL_CHECKS
    if unknown:
        raise ValueError(f"unknown checks: {sorted(unknown)}")

    assignment = np.asarray(solution.assignment, dtype=int)
    if assignment.shape != (problem.num_subscribers,):
        raise ValueError("assignment must have one entry per subscriber")

    violations: list[Violation] = []
    report = VerificationReport(checks=frozenset(checks),
                                num_subscribers=problem.num_subscribers,
                                num_brokers=problem.tree.num_brokers)

    assignment_noise: list[Violation] = []
    valid = _check_assignment(problem, assignment, assignment_noise)
    if CHECK_ASSIGNMENT in checks:
        violations.extend(assignment_noise)
    # Downstream checks must survive malformed assignments (that is the
    # point of a verifier): invalid targets are masked out first.
    sane = np.where(valid, assignment, -1)

    if CHECK_LATENCY in checks:
        report.max_delay_seen = _check_latency(problem, sane, valid,
                                               violations)
    if CHECK_NESTING in checks:
        _check_nesting(problem, solution, sane, valid, violations)
    if CHECK_COMPLEXITY in checks:
        _check_complexity(problem, solution, violations)
    if CHECK_LOAD in checks:
        report.lbf = _check_load(problem, sane, violations)
    else:
        report.lbf = problem.load_balance_factor(sane)

    report.violations = violations
    return report


#: Invariants every algorithm in the registry promises unconditionally.
_BASE_GUARANTEES = frozenset({CHECK_ASSIGNMENT, CHECK_NESTING,
                              CHECK_COMPLEXITY})

#: Which algorithms additionally promise the latency budget.  (Gr¬l is
#: latency-blind; Closest minimizes the last hop only, which does not
#: bound the full publisher->leaf->subscriber path.)
_LATENCY_GUARANTEED = frozenset({"Gr", "Gr*", "Balance", "SLP1", "SLP"})


def guaranteed_checks(algorithm: str,
                      solution: SASolution | None = None) -> frozenset[str]:
    """The invariant set an algorithm actually promises.

    The load cap is conditional: Gr/Gr* fall back to best effort when an
    instance is load-infeasible (reported via ``info["load_cap_violations"]``),
    and Closest only respects its per-broker caps while capacity remains.
    Passing the produced ``solution`` resolves those conditions; without
    it, the unconditional set is returned.
    """
    checks = set(_BASE_GUARANTEES)
    if algorithm in _LATENCY_GUARANTEED:
        checks.add(CHECK_LATENCY)
    if solution is not None:
        if (algorithm in ("Gr", "Gr*")
                and solution.info.get("load_cap_violations", 1) == 0):
            checks.add(CHECK_LOAD)
        if algorithm == "Closest":
            # Caps are floor(beta_max * kappa_i * m); when they sum to at
            # least m the fallback branch never triggers.
            problem = solution.problem
            caps = np.floor(problem.params.beta_max * problem.kappas
                            * problem.num_subscribers)
            if caps.sum() >= problem.num_subscribers:
                checks.add(CHECK_LOAD)
    return frozenset(checks)
