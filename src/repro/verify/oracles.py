"""Differential oracles: cross-check independent implementations.

Four families of redundancy exist in the library, and each pair must
agree for the fast path to be trustworthy:

* **Matching** — :class:`BruteForceMatcher` is the exact oracle;
  :class:`GridMatcher` and :class:`RTreeMatcher` must reproduce its
  match matrix bit-for-bit on any shared event stream, and each
  matcher's batched ``match_points`` must agree column-for-column with
  its own scalar ``match_point``.
* **Measure** — :func:`union_volume` (exact coordinate compression) and
  :func:`union_volume_monte_carlo` (sampling) estimate the same
  quantity; they must agree within the estimator's statistical error.
* **Dissemination** — the discrete-event :mod:`repro.runtime` engine
  must reproduce the batch :func:`simulate_dissemination` counts
  exactly on a fault-free shared seed.
* **Batch planes** — the vectorized event paths must be *sha256-bit-
  identical* to their scalar twins: chunked simulation with the
  heuristic matcher vs event-at-a-time simulation with brute force
  (:func:`simulator_batch_oracle`), epoch-mode engine runs vs scalar
  heap stepping (:func:`epoch_runtime_oracle`), and sharded
  multi-process dissemination vs the single-process engine
  (:func:`shard_oracle`).

Each harness returns an :class:`OracleReport`; ``repro verify`` and the
differential test suite treat any disagreement as a failure.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.problem import SAProblem, SASolution
from ..geometry import Rect, RectSet, union_volume, union_volume_monte_carlo
from ..pubsub.events import EventDistribution, UniformEvents
from ..pubsub.matching import BruteForceMatcher, GridMatcher, Matcher
from ..pubsub.rtree import RTreeMatcher
from ..pubsub.simulator import simulate_dissemination
from ..runtime import (BrokerOutage, DisseminationEngine, FaultPlan,
                       RuntimeConfig)

__all__ = ["OracleReport", "matcher_oracle", "volume_oracle",
           "runtime_oracle", "simulator_batch_oracle",
           "epoch_runtime_oracle", "shard_oracle", "solution_oracles"]


def _sha256(payload: dict[str, Any]) -> str:
    """Canonical digest of a JSON-ready result dict."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


@dataclass(frozen=True)
class OracleReport:
    """Verdict of one differential comparison."""

    name: str
    agree: bool
    detail: str
    max_error: float | None = None   #: worst numeric deviation, when numeric
    tolerance: float | None = None   #: bound the deviation was held to

    def __str__(self) -> str:
        verdict = "agree" if self.agree else "DISAGREE"
        return f"[{self.name}] {verdict}: {self.detail}"


def matcher_oracle(subscriptions: RectSet, domain: Rect,
                   events: np.ndarray, *,
                   grid_resolution: int = 16,
                   scalar_samples: int = 32) -> OracleReport:
    """All three matching indexes must produce identical match matrices.

    Two agreements are checked per matcher: its batched ``match_points``
    matrix must equal the brute-force oracle's, and its scalar
    ``match_point`` must reproduce the corresponding matrix column on
    the first ``scalar_samples`` events (batch/scalar self-consistency).
    """
    events = np.asarray(events, dtype=float)
    expected = BruteForceMatcher(subscriptions).match_points(events)
    mismatches = []
    matchers: list[tuple[str, Matcher]] = [
        ("brute", BruteForceMatcher(subscriptions)),
        ("grid", GridMatcher(subscriptions, domain,
                             resolution=grid_resolution)),
        ("rtree", RTreeMatcher(subscriptions)),
    ]
    for name, matcher in matchers:
        got = matcher.match_points(events)
        wrong = int(np.sum(got != expected))
        if wrong:
            mismatches.append(f"{name}: {wrong} cells differ")
        for j in range(min(scalar_samples, events.shape[0])):
            ids = np.asarray(matcher.match_point(events[j]), dtype=int)
            if not np.array_equal(np.flatnonzero(got[:, j]), ids):
                mismatches.append(
                    f"{name}: scalar/batch disagree at event {j}")
                break
    detail = (f"{len(subscriptions)} subscriptions x {events.shape[0]} "
              f"events; " + ("; ".join(mismatches) if mismatches
                             else "all three matchers agree exactly in "
                                  "batch and scalar mode"))
    return OracleReport(name="matcher", agree=not mismatches, detail=detail,
                        max_error=float(len(mismatches)), tolerance=0.0)


def volume_oracle(rects: RectSet, rng: np.random.Generator, *,
                  samples: int = 200_000,
                  sigmas: float = 5.0) -> OracleReport:
    """Exact union volume vs Monte Carlo, within ``sigmas`` standard errors.

    The MC estimator samples inside the set's MEB; its standard error is
    ``V_meb * sqrt(p (1 - p) / samples)`` for covered fraction ``p``, so
    the tolerance is statistical, not an arbitrary epsilon.
    """
    exact = union_volume(rects)
    estimate = union_volume_monte_carlo(rects, rng, samples=samples)
    if len(rects) == 0 or rects.meb().volume() == 0.0:
        agree = estimate == exact == 0.0
        return OracleReport(name="volume", agree=agree,
                            detail=f"degenerate set: exact={exact}, "
                                   f"mc={estimate}",
                            max_error=abs(estimate - exact), tolerance=0.0)
    meb_volume = rects.meb().volume()
    p = min(max(exact / meb_volume, 0.0), 1.0)
    stderr = meb_volume * float(np.sqrt(p * (1.0 - p) / samples))
    tolerance = sigmas * stderr + 1e-12 * meb_volume
    error = abs(estimate - exact)
    return OracleReport(
        name="volume", agree=error <= tolerance,
        detail=f"exact={exact:.6g}, mc={estimate:.6g} "
               f"({samples} samples, {sigmas} sigma tolerance)",
        max_error=error, tolerance=tolerance)


def runtime_oracle(problem: SAProblem, solution: SASolution,
                   distribution: EventDistribution, *, seed: int = 0,
                   num_events: int = 400) -> OracleReport:
    """Fault-free engine run vs the batch simulator on a shared seed.

    Both consume the event stream through the same chunked sampler, so
    per-node entries, per-subscriber deliveries, and misses must be
    *identical*, not merely close.
    """
    batch = simulate_dissemination(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, distribution, np.random.default_rng(seed),
        num_events=num_events, subscriber_points=problem.subscriber_points)
    engine = DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, config=RuntimeConfig(),
        subscriber_points=problem.subscriber_points)
    live = engine.run(distribution, np.random.default_rng(seed), num_events)

    differences = []
    if not np.array_equal(live.node_entries, batch.node_entries):
        differences.append("node entries")
    if not np.array_equal(live.deliveries, batch.deliveries):
        differences.append("deliveries")
    if not np.array_equal(live.missed, batch.missed):
        differences.append("missed")
    detail = (f"{num_events} events, seed {seed}; "
              + (", ".join(differences) + " differ" if differences
                 else "entries, deliveries, and misses identical"))
    return OracleReport(name="runtime", agree=not differences, detail=detail,
                        max_error=float(len(differences)), tolerance=0.0)


def simulator_batch_oracle(problem: SAProblem, solution: SASolution,
                           distribution: EventDistribution, *,
                           seed: int = 0, num_events: int = 400,
                           chunk_size: int = 512) -> OracleReport:
    """Chunked simulation with the heuristic matcher vs scalar brute force.

    Runs :func:`simulate_dissemination` twice on the same seed: once
    event-at-a-time (``chunk_size=1``) with the :class:`BruteForceMatcher`
    oracle, once chunked with the default :func:`best_matcher` index.
    The two :class:`SimulationResult` payloads must be sha256-identical —
    the batch plane is only trusted bit-for-bit.  Requires a chunk-stable
    distribution (``UniformEvents``): the sampler must emit the same
    point stream regardless of how draws are split into chunks.
    """
    def run(chunk: int, matcher: Matcher | None) -> dict[str, Any]:
        return simulate_dissemination(
            problem.tree, solution.filters, solution.assignment,
            problem.subscriptions, distribution,
            np.random.default_rng(seed), num_events=num_events,
            chunk_size=chunk, subscriber_points=problem.subscriber_points,
            matcher=matcher).to_dict()

    scalar = run(1, BruteForceMatcher(problem.subscriptions))
    batched = run(chunk_size, None)
    scalar_sha, batched_sha = _sha256(scalar), _sha256(batched)
    agree = scalar_sha == batched_sha
    detail = (f"{num_events} events, seed {seed}, chunk {chunk_size}; "
              + (f"sha256 {scalar_sha[:12]} identical" if agree
                 else f"sha256 differ: scalar {scalar_sha[:12]} vs "
                      f"batched {batched_sha[:12]}"))
    return OracleReport(name="simulator-batch", agree=agree, detail=detail,
                        max_error=float(not agree), tolerance=0.0)


def epoch_runtime_oracle(problem: SAProblem, solution: SASolution,
                         distribution: EventDistribution, *, seed: int = 0,
                         num_events: int = 400,
                         epoch_batch: int = 128) -> OracleReport:
    """Epoch-mode engine run vs scalar heap stepping: sha256-identical.

    Both runs share the seed and the full config; only ``epoch_batch``
    differs.  When the tree has more than one node, a mid-run crash and
    recovery are scheduled so the oracle also exercises the epoch
    barrier logic (controls split the event column into batchable
    prefixes).  The complete :meth:`RuntimeResult.to_dict` payload —
    counts, duration, queue peaks, and telemetry — must hash equal.
    """
    interval = 1.0
    crash_at = interval * num_events * 0.25
    recover_at = interval * num_events * 0.75

    def run(epoch: int) -> dict[str, Any]:
        engine = DisseminationEngine(
            problem.tree, solution.filters, solution.assignment,
            problem.subscriptions,
            config=RuntimeConfig(publish_interval=interval,
                                 epoch_batch=epoch),
            subscriber_points=problem.subscriber_points)
        if problem.tree.num_nodes > 1:
            engine.schedule_crash(crash_at, 1)
            engine.schedule_recover(recover_at, 1)
        return engine.run(distribution, np.random.default_rng(seed),
                          num_events).to_dict()

    scalar_sha = _sha256(run(0))
    epoch_sha = _sha256(run(epoch_batch))
    agree = scalar_sha == epoch_sha
    detail = (f"{num_events} events, seed {seed}, epoch batch {epoch_batch}, "
              f"crash/recover barrier; "
              + (f"sha256 {scalar_sha[:12]} identical" if agree
                 else f"sha256 differ: scalar {scalar_sha[:12]} vs "
                      f"epoch {epoch_sha[:12]}"))
    return OracleReport(name="runtime-epoch", agree=agree, detail=detail,
                        max_error=float(not agree), tolerance=0.0)


def shard_oracle(problem: SAProblem, solution: SASolution,
                 distribution: EventDistribution, *, seed: int = 0,
                 num_events: int = 400, shards: int = 2,
                 epoch_batch: int = 128) -> OracleReport:
    """Sharded dissemination vs single-process: sha256-identical.

    The sharded runner replicates the engine's control plane per shard
    and partitions only the delivery accounting, so ``--shards N`` must
    reproduce the ``--shards 1`` payload bit-for-bit.  Both runs share
    the seed, epoch batching, and — when the tree has more than one
    node — a mid-run crash/recover on node 1 so the merge is exercised
    under failover migrations, not just in the fault-free steady state.
    """
    from ..shard import run_dissemination  # lazy: shard imports runtime

    interval = 1.0
    plan = None
    if problem.tree.num_nodes > 1:
        plan = FaultPlan(outages=(BrokerOutage(
            1, interval * num_events * 0.25, interval * num_events * 0.75),))

    def run(num_shards: int) -> dict[str, Any]:
        shard_run = run_dissemination(
            problem, distribution, np.random.default_rng(seed), num_events,
            config=RuntimeConfig(publish_interval=interval,
                                 epoch_batch=epoch_batch),
            shards=num_shards, workers=1, filters=solution.filters,
            assignment=solution.assignment, fault_plan=plan)
        return shard_run.result.to_dict()

    single_sha = _sha256(run(1))
    sharded_sha = _sha256(run(shards))
    agree = single_sha == sharded_sha
    detail = (f"{num_events} events, seed {seed}, {shards} shards, "
              f"epoch batch {epoch_batch}, "
              f"{'crash/recover barrier; ' if plan else ''}"
              + (f"sha256 {single_sha[:12]} identical" if agree
                 else f"sha256 differ: single {single_sha[:12]} vs "
                      f"sharded {sharded_sha[:12]}"))
    return OracleReport(name="runtime-shard", agree=agree, detail=detail,
                        max_error=float(not agree), tolerance=0.0)


def solution_oracles(problem: SAProblem, solution: SASolution,
                     domain: Rect, *, seed: int = 0,
                     match_events: int = 256, num_events: int = 400,
                     mc_samples: int = 200_000) -> list[OracleReport]:
    """Run every applicable differential oracle against one solution.

    The matcher oracle runs over the problem's subscription set, the
    volume oracle over the union of all filter rectangles (the quantity
    the bandwidth objective integrates), and the runtime, batch-simulator,
    and epoch-runtime oracles over the solution itself.
    """
    rng = np.random.default_rng(seed)
    distribution = UniformEvents(domain)
    reports = [matcher_oracle(problem.subscriptions, domain,
                              distribution.sample(rng, match_events))]

    filter_rects = RectSet.empty(problem.event_dim)
    for _node, filt in sorted(solution.filters.items()):
        if not filt.is_empty():
            filter_rects = filter_rects.concat(filt.rects)
    if len(filter_rects):
        reports.append(volume_oracle(filter_rects, rng, samples=mc_samples))

    reports.append(runtime_oracle(problem, solution, distribution,
                                  seed=seed, num_events=num_events))
    reports.append(simulator_batch_oracle(problem, solution, distribution,
                                          seed=seed, num_events=num_events))
    reports.append(epoch_runtime_oracle(problem, solution, distribution,
                                        seed=seed, num_events=num_events))
    reports.append(shard_oracle(problem, solution, distribution,
                                seed=seed, num_events=num_events))
    return reports
