"""Differential oracles: cross-check independent implementations.

Three families of redundancy exist in the library, and each pair must
agree for the fast path to be trustworthy:

* **Matching** — :class:`BruteForceMatcher` is the exact oracle;
  :class:`GridMatcher` and :class:`RTreeMatcher` must reproduce its
  match matrix bit-for-bit on any shared event stream.
* **Measure** — :func:`union_volume` (exact coordinate compression) and
  :func:`union_volume_monte_carlo` (sampling) estimate the same
  quantity; they must agree within the estimator's statistical error.
* **Dissemination** — the discrete-event :mod:`repro.runtime` engine
  must reproduce the batch :func:`simulate_dissemination` counts
  exactly on a fault-free shared seed.

Each harness returns an :class:`OracleReport`; ``repro verify`` and the
differential test suite treat any disagreement as a failure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import SAProblem, SASolution
from ..geometry import Rect, RectSet, union_volume, union_volume_monte_carlo
from ..pubsub.events import EventDistribution, UniformEvents
from ..pubsub.matching import BruteForceMatcher, GridMatcher
from ..pubsub.rtree import RTreeMatcher
from ..pubsub.simulator import simulate_dissemination
from ..runtime import DisseminationEngine, RuntimeConfig

__all__ = ["OracleReport", "matcher_oracle", "volume_oracle",
           "runtime_oracle", "solution_oracles"]


@dataclass(frozen=True)
class OracleReport:
    """Verdict of one differential comparison."""

    name: str
    agree: bool
    detail: str
    max_error: float | None = None   #: worst numeric deviation, when numeric
    tolerance: float | None = None   #: bound the deviation was held to

    def __str__(self) -> str:
        verdict = "agree" if self.agree else "DISAGREE"
        return f"[{self.name}] {verdict}: {self.detail}"


def matcher_oracle(subscriptions: RectSet, domain: Rect,
                   events: np.ndarray, *,
                   grid_resolution: int = 16) -> OracleReport:
    """All three matching indexes must produce identical match matrices."""
    events = np.asarray(events, dtype=float)
    expected = BruteForceMatcher(subscriptions).match_points(events)
    mismatches = []
    for name, matcher in (
            ("grid", GridMatcher(subscriptions, domain,
                                 resolution=grid_resolution)),
            ("rtree", RTreeMatcher(subscriptions))):
        got = matcher.match_points(events)
        wrong = int(np.sum(got != expected))
        if wrong:
            mismatches.append(f"{name}: {wrong} cells differ")
    detail = (f"{len(subscriptions)} subscriptions x {events.shape[0]} "
              f"events; " + ("; ".join(mismatches) if mismatches
                             else "grid and rtree match brute force exactly"))
    return OracleReport(name="matcher", agree=not mismatches, detail=detail,
                        max_error=float(len(mismatches)), tolerance=0.0)


def volume_oracle(rects: RectSet, rng: np.random.Generator, *,
                  samples: int = 200_000,
                  sigmas: float = 5.0) -> OracleReport:
    """Exact union volume vs Monte Carlo, within ``sigmas`` standard errors.

    The MC estimator samples inside the set's MEB; its standard error is
    ``V_meb * sqrt(p (1 - p) / samples)`` for covered fraction ``p``, so
    the tolerance is statistical, not an arbitrary epsilon.
    """
    exact = union_volume(rects)
    estimate = union_volume_monte_carlo(rects, rng, samples=samples)
    if len(rects) == 0 or rects.meb().volume() == 0.0:
        agree = estimate == exact == 0.0
        return OracleReport(name="volume", agree=agree,
                            detail=f"degenerate set: exact={exact}, "
                                   f"mc={estimate}",
                            max_error=abs(estimate - exact), tolerance=0.0)
    meb_volume = rects.meb().volume()
    p = min(max(exact / meb_volume, 0.0), 1.0)
    stderr = meb_volume * float(np.sqrt(p * (1.0 - p) / samples))
    tolerance = sigmas * stderr + 1e-12 * meb_volume
    error = abs(estimate - exact)
    return OracleReport(
        name="volume", agree=error <= tolerance,
        detail=f"exact={exact:.6g}, mc={estimate:.6g} "
               f"({samples} samples, {sigmas} sigma tolerance)",
        max_error=error, tolerance=tolerance)


def runtime_oracle(problem: SAProblem, solution: SASolution,
                   distribution: EventDistribution, *, seed: int = 0,
                   num_events: int = 400) -> OracleReport:
    """Fault-free engine run vs the batch simulator on a shared seed.

    Both consume the event stream through the same chunked sampler, so
    per-node entries, per-subscriber deliveries, and misses must be
    *identical*, not merely close.
    """
    batch = simulate_dissemination(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, distribution, np.random.default_rng(seed),
        num_events=num_events, subscriber_points=problem.subscriber_points)
    engine = DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, config=RuntimeConfig(),
        subscriber_points=problem.subscriber_points)
    live = engine.run(distribution, np.random.default_rng(seed), num_events)

    differences = []
    if not np.array_equal(live.node_entries, batch.node_entries):
        differences.append("node entries")
    if not np.array_equal(live.deliveries, batch.deliveries):
        differences.append("deliveries")
    if not np.array_equal(live.missed, batch.missed):
        differences.append("missed")
    detail = (f"{num_events} events, seed {seed}; "
              + (", ".join(differences) + " differ" if differences
                 else "entries, deliveries, and misses identical"))
    return OracleReport(name="runtime", agree=not differences, detail=detail,
                        max_error=float(len(differences)), tolerance=0.0)


def solution_oracles(problem: SAProblem, solution: SASolution,
                     domain: Rect, *, seed: int = 0,
                     match_events: int = 256, num_events: int = 400,
                     mc_samples: int = 200_000) -> list[OracleReport]:
    """Run every applicable differential oracle against one solution.

    The matcher oracle runs over the problem's subscription set, the
    volume oracle over the union of all filter rectangles (the quantity
    the bandwidth objective integrates), and the runtime oracle over the
    solution itself.
    """
    rng = np.random.default_rng(seed)
    distribution = UniformEvents(domain)
    reports = [matcher_oracle(problem.subscriptions, domain,
                              distribution.sample(rng, match_events))]

    filter_rects = RectSet.empty(problem.event_dim)
    for _node, filt in sorted(solution.filters.items()):
        if not filt.is_empty():
            filter_rects = filter_rects.concat(filt.rects)
    if len(filter_rects):
        reports.append(volume_oracle(filter_rects, rng, samples=mc_samples))

    reports.append(runtime_oracle(problem, solution, distribution,
                                  seed=seed, num_events=num_events))
    return reports
