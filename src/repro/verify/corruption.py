"""Deliberately corrupted solutions, for testing the checker itself.

A verifier that never fires is worse than none; these helpers produce
solutions that are wrong in one precisely known way, so tests and the
``repro verify --corrupt`` CLI can assert the checker detects them:

* :func:`corrupt_nesting` — shrink one leaf filter until it no longer
  covers an assigned subscription (breaks the nesting condition);
* :func:`corrupt_latency` — reassign one subscriber to a leaf whose
  path latency exceeds its budget ``(1 + D) * Delta_j``.

The aggregation pipeline (:mod:`repro.core.slp.aggregate`) has its own
checker, :func:`~repro.core.slp.aggregate.verify_aggregation`, and its
own planted corruptions:

* :func:`corrupt_aggregation_split` — recompute one super-subscription
  rectangle from only part of its members (a wrong split), so the
  rectangle no longer encloses the member union;
* :func:`corrupt_aggregation_drop` — drop one member from a group's
  member list, so expansion would silently lose a subscriber.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import SAProblem, SASolution
from ..core.slp.aggregate import Aggregation
from ..core.slp.view import SLPView
from ..geometry import RectSet
from ..pubsub.filters import Filter

__all__ = ["corrupt_nesting", "corrupt_latency",
           "corrupt_aggregation_split", "corrupt_aggregation_drop"]


def _shrunk(filt: Filter, factor: float) -> Filter:
    """Every rectangle pulled toward its center by ``factor``."""
    rects = filt.rects
    centers = rects.centers()
    half = rects.widths() / 2.0 * factor
    return Filter(RectSet(centers - half, centers + half, validate=False))


def corrupt_nesting(problem: SAProblem, solution: SASolution) -> SASolution:
    """Shrink one leaf filter so an assigned subscription is uncovered.

    Leaves are tried in id order with progressively harsher shrink
    factors; the first shrink that uncovers a subscription while keeping
    the parent-nesting direction intact (a shrunk filter is a subset of
    the original, so its parent still covers it) is returned.
    """
    assignment = np.asarray(solution.assignment, dtype=int)
    for leaf in sorted(int(v) for v in problem.tree.leaves):
        members = np.flatnonzero(assignment == leaf)
        original = solution.filters.get(leaf)
        if len(members) == 0 or original is None or original.is_empty():
            continue
        for factor in (0.5, 0.1, 0.0):
            candidate = _shrunk(original, factor)
            uncovered = any(
                not candidate.contains_subscription(
                    problem.subscriptions.rect(int(j)))
                for j in members)
            if uncovered:
                filters = dict(solution.filters)
                filters[leaf] = candidate
                return SASolution(
                    problem=problem, assignment=assignment.copy(),
                    filters=filters,
                    info={**solution.info, "corruption": "nesting",
                          "corrupted_node": leaf})
    raise ValueError("no leaf filter could be shrunk to break nesting "
                     "(no covered subscriptions to uncover)")


def corrupt_latency(problem: SAProblem, solution: SASolution) -> SASolution:
    """Reassign one subscriber to a latency-infeasible leaf.

    Picks the subscriber/leaf pair with the largest budget excess, so
    the violation is unambiguous rather than a borderline rounding case.
    """
    excess = problem.leaf_latency - problem.latency_budgets[None, :]
    row, j = np.unravel_index(int(excess.argmax()), excess.shape)
    if excess[row, j] <= problem.latency_budgets[j] * 1e-6:
        raise ValueError("every leaf satisfies every budget; no latency "
                         "corruption is possible on this instance")
    assignment = np.asarray(solution.assignment, dtype=int).copy()
    assignment[j] = int(problem.tree.leaves[row])
    return SASolution(
        problem=problem, assignment=assignment,
        filters=dict(solution.filters),
        info={**solution.info, "corruption": "latency",
              "corrupted_subscriber": int(j)})


def _aggregation_copy(aggregation: Aggregation,
                      super_subs: RectSet | None = None) -> Aggregation:
    return Aggregation(
        labels=aggregation.labels.copy(),
        members=[members.copy() for members in aggregation.members],
        super_subs=super_subs if super_subs is not None else RectSet(
            aggregation.super_subs.lo.copy(),
            aggregation.super_subs.hi.copy(), validate=False),
        network_points=aggregation.network_points.copy(),
        weights=aggregation.weights.copy(),
        feasible=aggregation.feasible.copy(),
        is_identity=aggregation.is_identity,
    )


def corrupt_aggregation_split(view: SLPView,
                              aggregation: Aggregation) -> Aggregation:
    """Recompute one super-subscription rect from only half its members.

    Simulates an aggregator bug where a group was split but its
    rectangle kept pointing at only one fragment: the stored rect is no
    longer the member-union MEB, so members fall outside their own
    super-subscription and downstream nesting would silently break.
    Prefers a multi-member group whose half-MEB genuinely differs; on
    fully degenerate geometry it falls back to shifting the first
    group's lower corner, which equally breaks MEB exactness.
    """
    if not aggregation.members:
        raise ValueError("aggregation has no groups to corrupt")
    new_lo = aggregation.super_subs.lo.copy()
    new_hi = aggregation.super_subs.hi.copy()
    for row, members in enumerate(aggregation.members):
        if len(members) < 2:
            continue
        half = members[len(members) // 2:]
        lo = view.subscriptions.lo[half].min(axis=0)
        hi = view.subscriptions.hi[half].max(axis=0)
        if (np.array_equal(lo, new_lo[row])
                and np.array_equal(hi, new_hi[row])):
            continue
        new_lo[row] = lo
        new_hi[row] = hi
        return _aggregation_copy(
            aggregation, RectSet(new_lo, new_hi, validate=False))
    # Degenerate geometry: every half shares the full MEB.  Shifting the
    # corner still breaks "rect == exact member-union MEB".
    new_lo[0] = new_lo[0] - 1.0
    return _aggregation_copy(
        aggregation, RectSet(new_lo, new_hi, validate=False))


def corrupt_aggregation_drop(view: SLPView,
                             aggregation: Aggregation) -> Aggregation:
    """Remove one member from a group's member list.

    Simulates lossy expansion: the weights/labels still claim the
    subscriber, but the member list — the thing expansion trusts — has
    lost it, so the groups no longer partition the subscription set.
    """
    del view  # symmetry with corrupt_aggregation_split; unused
    if not aggregation.members:
        raise ValueError("aggregation has no groups to corrupt")
    corrupted = _aggregation_copy(aggregation)
    for row, members in enumerate(aggregation.members):
        if len(members) >= 2:
            corrupted.members[row] = members[:-1].copy()
            return corrupted
    corrupted.members[0] = corrupted.members[0][:0]
    return corrupted
