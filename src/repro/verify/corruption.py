"""Deliberately corrupted solutions, for testing the checker itself.

A verifier that never fires is worse than none; these helpers produce
solutions that are wrong in one precisely known way, so tests and the
``repro verify --corrupt`` CLI can assert the checker detects them:

* :func:`corrupt_nesting` — shrink one leaf filter until it no longer
  covers an assigned subscription (breaks the nesting condition);
* :func:`corrupt_latency` — reassign one subscriber to a leaf whose
  path latency exceeds its budget ``(1 + D) * Delta_j``.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import SAProblem, SASolution
from ..geometry import RectSet
from ..pubsub.filters import Filter

__all__ = ["corrupt_nesting", "corrupt_latency"]


def _shrunk(filt: Filter, factor: float) -> Filter:
    """Every rectangle pulled toward its center by ``factor``."""
    rects = filt.rects
    centers = rects.centers()
    half = rects.widths() / 2.0 * factor
    return Filter(RectSet(centers - half, centers + half, validate=False))


def corrupt_nesting(problem: SAProblem, solution: SASolution) -> SASolution:
    """Shrink one leaf filter so an assigned subscription is uncovered.

    Leaves are tried in id order with progressively harsher shrink
    factors; the first shrink that uncovers a subscription while keeping
    the parent-nesting direction intact (a shrunk filter is a subset of
    the original, so its parent still covers it) is returned.
    """
    assignment = np.asarray(solution.assignment, dtype=int)
    for leaf in sorted(int(v) for v in problem.tree.leaves):
        members = np.flatnonzero(assignment == leaf)
        original = solution.filters.get(leaf)
        if len(members) == 0 or original is None or original.is_empty():
            continue
        for factor in (0.5, 0.1, 0.0):
            candidate = _shrunk(original, factor)
            uncovered = any(
                not candidate.contains_subscription(
                    problem.subscriptions.rect(int(j)))
                for j in members)
            if uncovered:
                filters = dict(solution.filters)
                filters[leaf] = candidate
                return SASolution(
                    problem=problem, assignment=assignment.copy(),
                    filters=filters,
                    info={**solution.info, "corruption": "nesting",
                          "corrupted_node": leaf})
    raise ValueError("no leaf filter could be shrunk to break nesting "
                     "(no covered subscriptions to uncover)")


def corrupt_latency(problem: SAProblem, solution: SASolution) -> SASolution:
    """Reassign one subscriber to a latency-infeasible leaf.

    Picks the subscriber/leaf pair with the largest budget excess, so
    the violation is unambiguous rather than a borderline rounding case.
    """
    excess = problem.leaf_latency - problem.latency_budgets[None, :]
    row, j = np.unravel_index(int(excess.argmax()), excess.shape)
    if excess[row, j] <= problem.latency_budgets[j] * 1e-6:
        raise ValueError("every leaf satisfies every budget; no latency "
                         "corruption is possible on this instance")
    assignment = np.asarray(solution.assignment, dtype=int).copy()
    assignment[j] = int(problem.tree.leaves[row])
    return SASolution(
        problem=problem, assignment=assignment,
        filters=dict(solution.filters),
        info={**solution.info, "corruption": "latency",
              "corrupted_subscriber": int(j)})
