"""Invariant checking, differential oracles, and property strategies.

The correctness backstop of the library: :func:`verify_solution` checks
any :class:`~repro.core.problem.SASolution` against the paper's
guarantees with per-violation diagnostics, :mod:`repro.verify.oracles`
cross-checks redundant implementations (matchers, volume estimators,
the runtime engine vs the batch simulator), and
:mod:`repro.verify.strategies` generates seeded random problems for the
property suite.  ``python -m repro verify`` drives all of it from the
command line and exits nonzero on any violation.
"""

from .corruption import (
    corrupt_aggregation_drop,
    corrupt_aggregation_split,
    corrupt_latency,
    corrupt_nesting,
)
from .invariants import (
    ALL_CHECKS,
    CHECK_ASSIGNMENT,
    CHECK_COMPLEXITY,
    CHECK_LATENCY,
    CHECK_LOAD,
    CHECK_NESTING,
    VerificationReport,
    Violation,
    guaranteed_checks,
    verify_solution,
)
from .oracles import (
    OracleReport,
    epoch_runtime_oracle,
    matcher_oracle,
    runtime_oracle,
    shard_oracle,
    simulator_batch_oracle,
    solution_oracles,
    volume_oracle,
)
from .strategies import (
    EVENT_DOMAIN,
    STRATEGY_NAMES,
    RandomInstance,
    problem_cases,
    random_problem,
)

__all__ = [
    "ALL_CHECKS",
    "CHECK_ASSIGNMENT",
    "CHECK_COMPLEXITY",
    "CHECK_LATENCY",
    "CHECK_LOAD",
    "CHECK_NESTING",
    "Violation",
    "VerificationReport",
    "verify_solution",
    "guaranteed_checks",
    "OracleReport",
    "matcher_oracle",
    "volume_oracle",
    "runtime_oracle",
    "simulator_batch_oracle",
    "epoch_runtime_oracle",
    "shard_oracle",
    "solution_oracles",
    "EVENT_DOMAIN",
    "STRATEGY_NAMES",
    "RandomInstance",
    "random_problem",
    "problem_cases",
    "corrupt_nesting",
    "corrupt_latency",
    "corrupt_aggregation_split",
    "corrupt_aggregation_drop",
]
