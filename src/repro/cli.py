"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``
    Generate a workload, run one or more algorithms, print the paper's
    headline metrics per algorithm (and the LP fractional bound when an
    SLP variant runs).

``simulate``
    Solve an instance, then publish sampled events through the broker
    tree and report empirical traffic versus the analytic bandwidth.

``dynamic``
    Play a churn trace with online greedy arrivals and periodic SLP1
    re-optimization; print the bandwidth trajectory.

``runtime``
    Solve an instance, then run the discrete-event dissemination runtime
    over it: queued brokers, optional crash/recover fault injection with
    greedy failover, optional mid-run churn, and telemetry (exportable
    as JSON with ``--telemetry-json``).

``verify``
    Solve an instance with each requested algorithm and check the
    result against the paper's invariants (nesting, latency budgets,
    load balance, filter complexity) plus the differential oracles
    (matchers, volume estimators, runtime vs batch simulator).  Exits
    2 on any violation; ``--corrupt`` deliberately breaks the solution
    first to prove the checker fires.

``profile``
    Solve an instance under the stage profiler and print/export the
    per-stage wall-clock breakdown; with ``--check-against BASELINE``
    compare the calibrated timings against a committed profile payload
    and exit 3 when a stage regressed beyond the tolerance (the CI
    perf-smoke gate).

``serve``
    Run the live asyncio pub/sub broker daemon: a JSON-over-TCP gateway
    (``subscribe`` / ``unsubscribe`` / ``publish`` / ``stats``) in front
    of the online greedy assigner, with a background churn-triggered
    re-optimizer whose every re-assignment is invariant-verified before
    being swapped in.

``loadgen``
    Drive a running ``serve`` daemon with N concurrent subscriber
    connections plus publishers, and report end-to-end delivery-latency
    percentiles and delivery rate (optionally as a ``BENCH_serve_*``
    JSON payload).

``analyze``
    Run the determinism / async-safety / contract static analysis over
    the source tree (see :mod:`repro.analyze`).  Prints the violation
    table and exits 2 on any violation; with ``--check-against
    analyze_baseline.json`` enforces the ratchet instead (counts may
    only decrease), and ``--write-baseline`` freezes the current counts.

``algorithms``
    List the registered algorithm names.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from collections.abc import Sequence

import numpy as np

from .analyze import (
    check_ratchet,
    default_rules,
    load_baseline,
    run_analysis,
    write_baseline,
)
from .bench.harness import run_metadata
from .bench.tables import format_table
from .core.registry import algorithm_names, get_algorithm
from .core.slp import AggregationConfig
from .dynamic import DynamicPubSub, generate_churn_trace
from .metrics import evaluate_solution, runtime_report_rows, total_bandwidth
from .perf.cache import geometry_cache
from .perf.profiler import profiled
from .perf.regression import calibrate, check_regression
from .pubsub import UniformEvents
from .runtime import (
    BrokerOutage,
    FaultPlan,
    ReplayConfig,
    RuntimeConfig,
)
from .serve import (
    LoadGenConfig,
    ServeConfig,
    ServeDaemon,
    run_loadgen,
    write_loadgen_json,
)
from .shard import run_dissemination, simulate_sharded
from .verify import (
    ALL_CHECKS,
    corrupt_latency,
    corrupt_nesting,
    guaranteed_checks,
    solution_oracles,
    verify_solution,
)
from .workloads import (
    GoogleGroupsConfig,
    GridConfig,
    RssConfig,
    generate_google_groups,
    generate_grid,
    generate_rss,
    multilevel_problem,
    one_level_problem,
)

__all__ = ["main"]


def _build_workload(args: argparse.Namespace):
    if args.workload == "googlegroups":
        config = GoogleGroupsConfig(
            num_subscribers=args.subscribers, num_brokers=args.brokers,
            interest_skew=args.interest_skew,
            broad_interests=args.broad_interests)
        return generate_google_groups(args.seed, config)
    if args.workload == "rss":
        config = RssConfig(num_subscribers=args.subscribers,
                           num_brokers=args.brokers)
        return generate_rss(args.seed, config)
    config = GridConfig(num_subscribers=args.subscribers,
                        num_brokers=args.brokers)
    return generate_grid(args.seed, config)


def _build_problem(args: argparse.Namespace):
    workload = _build_workload(args)
    overrides = {"alpha": args.alpha, "max_delay": args.max_delay}
    if args.beta is not None:
        overrides["beta"] = args.beta
    if args.beta_max is not None:
        overrides["beta_max"] = args.beta_max
    if args.multilevel:
        return workload, multilevel_problem(
            workload, max_out_degree=args.max_out_degree,
            seed=args.seed, **overrides)
    return workload, one_level_problem(workload, **overrides)


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=["googlegroups", "rss", "grid"],
                        default="googlegroups")
    parser.add_argument("--subscribers", type=int, default=1000)
    parser.add_argument("--brokers", type=int, default=12)
    parser.add_argument("--interest-skew", choices=["L", "H"], default="H")
    parser.add_argument("--broad-interests", choices=["L", "H"], default="L")
    parser.add_argument("--alpha", type=int, default=3)
    parser.add_argument("--max-delay", type=float, default=0.3)
    parser.add_argument("--beta", type=float, default=None,
                        help="desired lbf (default: the workload set's)")
    parser.add_argument("--beta-max", type=float, default=None)
    parser.add_argument("--multilevel", action="store_true")
    parser.add_argument("--max-out-degree", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--aggregate", type=int, default=None, metavar="N",
                        help="SLP variants: aggregate subscriptions into "
                             "super-subscriptions of at most N members "
                             "before the LP (0/1 disables; the scaling "
                             "mode for large m)")
    parser.add_argument("--lp-workers", type=int, default=None, metavar="W",
                        help="SLP variants: processes for decomposed LP "
                             "blocks (default: serial)")


def _algorithm_kwargs(args: argparse.Namespace, name: str) -> dict:
    """Keyword arguments for one registered algorithm.

    Only the SLP variants are seeded/configurable; ``--aggregate`` and
    ``--lp-workers`` are silently ignored for the greedy baselines, which
    have no LP to aggregate or decompose.
    """
    if name not in ("SLP1", "SLP"):
        return {}
    kwargs: dict = {"seed": args.seed}
    aggregate = getattr(args, "aggregate", None)
    if aggregate is not None:
        kwargs["aggregation"] = AggregationConfig(max_group_size=aggregate)
    lp_workers = getattr(args, "lp_workers", None)
    if lp_workers is not None:
        kwargs["lp_workers"] = lp_workers
    return kwargs


def _command_run(args: argparse.Namespace) -> int:
    _workload, problem = _build_problem(args)
    print(problem)
    rows = []
    for name in args.algorithms:
        fn = get_algorithm(name)
        solution = fn(problem, **_algorithm_kwargs(args, name))
        report = evaluate_solution(name, solution)
        rows.append([name, report.bandwidth,
                     solution.fractional_bandwidth, report.rms_delay,
                     report.lbf, report.feasible])
    print(format_table(
        ["algorithm", "bandwidth", "fractional", "rms_delay", "lbf",
         "feasible"], rows))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    workload, problem = _build_problem(args)
    fn = get_algorithm(args.algorithm)
    solution = fn(problem, **_algorithm_kwargs(args, args.algorithm))

    events = UniformEvents(workload.event_domain)
    rng = np.random.default_rng(args.seed)
    if args.chunk_size < 1:
        print("error: --chunk-size must be at least 1", file=sys.stderr)
        return 2
    try:
        result, _plan = simulate_sharded(
            problem, solution.filters, solution.assignment, events, rng,
            args.events, shards=args.shards, workers=args.shard_workers,
            chunk_size=args.chunk_size)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    analytic = total_bandwidth(solution.filters)
    empirical = result.empirical_bandwidth(workload.event_domain.volume())
    print(format_table(
        ["metric", "value"],
        [["events published", result.num_events],
         ["broker entries", result.total_broker_entries],
         ["deliveries", int(result.deliveries.sum())],
         ["missed deliveries", int(result.missed.sum())],
         ["analytic Q(T)", analytic],
         ["empirical Q(T)", empirical],
         ["empirical / analytic", empirical / analytic if analytic else 0]]))
    if args.result_json:
        result.dump(args.result_json,
                    params={"algorithm": args.algorithm, "seed": args.seed,
                            "chunk_size": args.chunk_size,
                            "shards": args.shards})
        print(f"result written to {args.result_json}")
    return 1 if result.missed.sum() else 0


def _command_dynamic(args: argparse.Namespace) -> int:
    _workload, problem = _build_problem(args)
    trace = generate_churn_trace(
        problem.num_subscribers, args.horizon,
        np.random.default_rng(args.seed),
        initial_active_fraction=args.initial_fraction,
        arrival_rate=args.churn_rate, departure_rate=args.churn_rate)
    system = DynamicPubSub(problem, seed=args.seed)
    for j in np.flatnonzero(trace.initially_active):
        system.arrive(int(j))

    rows = []

    def record(tag: str) -> None:
        snap = system.snapshot()
        rows.append([snap.step, tag, snap.active_count, snap.bandwidth,
                     snap.lbf, snap.total_migrations])

    record("initial")
    for step in trace.steps:
        system.apply(step)
        if (step.step + 1) % args.reopt_every == 0:
            record("drifted")
            system.reoptimize("SLP1", seed=args.seed)
            record("re-optimized")
    record("final")
    print(format_table(
        ["step", "phase", "active", "bandwidth", "lbf", "migrations"],
        rows))
    return 0


def _parse_outage(spec: str) -> BrokerOutage:
    """Parse ``NODE:START[:END]`` into a :class:`BrokerOutage`."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"bad --crash spec {spec!r}; expected NODE:START[:END]")
    try:
        node = int(parts[0])
        start = float(parts[1])
        end = float(parts[2]) if len(parts) == 3 else None
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"bad --crash spec {spec!r}: {exc}") from None
    try:
        return BrokerOutage(node=node, start=start, end=end)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _command_runtime(args: argparse.Namespace) -> int:
    if args.max_events is not None and args.events > args.max_events:
        print(f"error: --events {args.events} exceeds the --max-events "
              f"guard ({args.max_events}); refusing an unbounded replay",
              file=sys.stderr)
        return 2

    workload, problem = _build_problem(args)
    fn = get_algorithm(args.algorithm)
    solution = fn(problem, **_algorithm_kwargs(args, args.algorithm))

    events = UniformEvents(workload.event_domain)
    rng = np.random.default_rng(args.seed)
    try:
        config = RuntimeConfig(
            publish_interval=args.publish_interval,
            service_time=args.service_time,
            queue_capacity=args.queue_capacity,
            link_loss=args.link_loss,
            fault_seed=args.seed,
            trace_events=args.trace_events,
            max_duration=args.duration,
            epoch_batch=args.epoch_batch)
        plan = (FaultPlan(outages=tuple(args.crash),
                          failover_delay=args.failover_delay)
                if args.crash or args.link_loss else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        trace = None
        replay_config = None
        if args.churn_horizon > 0:
            trace = generate_churn_trace(
                problem.num_subscribers, args.churn_horizon,
                np.random.default_rng(args.seed),
                initial_active_fraction=args.initial_fraction,
                arrival_rate=args.churn_rate, departure_rate=args.churn_rate)
            replay_config = ReplayConfig(reopt_every=args.reopt_every,
                                         reopt_algorithm=args.algorithm,
                                         reopt_seed=args.seed)
        run = run_dissemination(
            problem, events, rng, args.events, config=config,
            shards=args.shards, workers=args.shard_workers,
            filters=None if trace is not None else solution.filters,
            assignment=None if trace is not None else solution.assignment,
            fault_plan=plan, failover=not args.no_failover,
            trace=trace, replay_config=replay_config,
            manager_seed=args.seed)
        result = run.result
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = runtime_report_rows(result,
                               domain_measure=workload.event_domain.volume())
    if run.plan is not None:
        rows.append(["shards", run.plan.num_shards])
        rows.append(["shard workers", run.workers])
    print(format_table(["metric", "value"], rows))
    if args.telemetry_json:
        result.telemetry.dump(args.telemetry_json)
        print(f"telemetry written to {args.telemetry_json}")
    if args.result_json:
        result.dump(args.result_json,
                    params={"algorithm": args.algorithm, "seed": args.seed,
                            "epoch_batch": args.epoch_batch,
                            "shards": args.shards})
        print(f"result written to {args.result_json}")
    if result.aborted:
        print(f"error: run aborted at simulated time {result.duration:.6g} "
              f"— the --duration guard ({args.duration:.6g}) fired before "
              f"the replay drained (malformed or runaway churn trace?)",
              file=sys.stderr)
        return 2
    fault_free = plan is None and args.churn_horizon == 0
    return 1 if (fault_free and result.total_missed) else 0


def _command_verify(args: argparse.Namespace) -> int:
    workload, problem = _build_problem(args)
    print(problem)
    failed = False
    rows = []
    for name in args.algorithms:
        fn = get_algorithm(name)
        solution = fn(problem, **_algorithm_kwargs(args, name))

        if args.corrupt:
            try:
                corrupter = (corrupt_nesting if args.corrupt == "nesting"
                             else corrupt_latency)
                solution = corrupter(problem, solution)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        # A corrupted solution must be checked against everything, or the
        # planted violation could hide behind a relaxed guarantee.
        checks = (ALL_CHECKS if args.checks == "all" or args.corrupt
                  else guaranteed_checks(name, solution))
        report = verify_solution(problem, solution, checks)
        failed = failed or not report.ok
        counts = report.by_check()
        rows.append([name, "+".join(sorted(checks)),
                     sum(counts.values()), round(report.lbf, 3),
                     "OK" if report.ok else "FAILED"])
        if not report.ok:
            print(f"--- {name}\n{report.summary()}", file=sys.stderr)

        if not args.skip_oracles:
            for oracle in solution_oracles(
                    problem, solution, workload.event_domain,
                    seed=args.seed, num_events=args.events,
                    mc_samples=args.mc_samples):
                rows.append([name, f"oracle:{oracle.name}", "-", "-",
                             "OK" if oracle.agree else "FAILED"])
                if not oracle.agree:
                    failed = True
                    print(f"--- {name}: {oracle}", file=sys.stderr)

    print(format_table(["algorithm", "checks", "violations", "lbf",
                        "verdict"], rows))
    return 2 if failed else 0


def _command_profile(args: argparse.Namespace) -> int:
    _workload, problem = _build_problem(args)
    fn = get_algorithm(args.algorithm)
    kwargs = _algorithm_kwargs(args, args.algorithm)

    calibration = calibrate()
    best_elapsed = None
    best_profiler = None
    best_solution = None
    for _ in range(max(args.repeats, 1)):
        with profiled() as profiler, geometry_cache():
            started = time.perf_counter()
            solution = fn(problem, **kwargs)
            elapsed = time.perf_counter() - started
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed, best_profiler = elapsed, profiler
            best_solution = solution

    report = evaluate_solution(args.algorithm, best_solution,
                               runtime_seconds=best_elapsed)
    stages = sorted(best_profiler.stats().values(),
                    key=lambda s: -s.seconds)
    payload = {
        "benchmark": "profile",
        "workload": args.workload,
        "algorithm": args.algorithm,
        "subscribers": args.subscribers,
        "brokers": args.brokers,
        "multilevel": bool(args.multilevel),
        "seed": args.seed,
        "aggregate": args.aggregate,
        "lp_workers": args.lp_workers,
        "repeats": args.repeats,
        "total_seconds": best_elapsed,
        "calibration_seconds": calibration,
        "stages": [stage.as_dict() for stage in stages],
        "metrics": {
            "bandwidth": report.bandwidth,
            "rms_delay": report.rms_delay,
            "lbf": report.lbf,
            "feasible": report.feasible,
        },
        "metadata": run_metadata(),
    }

    accounted = sum(stage.seconds for stage in stages)
    rows = [[stage.name, stage.calls, round(stage.seconds, 4),
             round(stage.seconds / best_elapsed, 3)] for stage in stages]
    rows.append(["(unattributed)", "-",
                 round(max(best_elapsed - accounted, 0.0), 4),
                 round(max(best_elapsed - accounted, 0.0) / best_elapsed, 3)])
    rows.append(["total", "-", round(best_elapsed, 4), 1.0])
    print(f"{args.algorithm} on {args.workload} "
          f"(m={args.subscribers}, |B|={args.brokers}, "
          f"best of {args.repeats}; calibration {calibration:.4f}s)")
    print(format_table(["stage", "calls", "seconds", "share"], rows))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"profile written to {args.json}")

    if args.check_against:
        with open(args.check_against, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regression = check_regression(payload, baseline,
                                      tolerance=args.tolerance)
        print(format_table(
            ["stage", "baseline(norm)", "current(norm)", "ratio", "verdict"],
            [comparison.as_row() for comparison in regression.comparisons]))
        if not regression.ok:
            print("perf regression: "
                  + ", ".join(regression.regressed_stages), file=sys.stderr)
            return 3
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    _workload, problem = _build_problem(args)
    config = ServeConfig(
        host=args.host, port=args.port,
        queue_capacity=args.queue_capacity or 1024,
        seed=args.seed,
        reopt_threshold=args.reopt_threshold,
        reopt_poll_interval=args.reopt_poll,
        reopt_algorithm=args.reopt_algorithm,
        shards=args.shards)
    daemon = ServeDaemon(problem, config)

    async def _serve() -> None:
        await daemon.start()
        print(f"serving {problem} on {config.host}:{daemon.port} "
              f"(reopt threshold {config.reopt_threshold}, "
              f"queue capacity {config.queue_capacity})", flush=True)
        await daemon.run(run_for=args.run_for)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    stats = daemon.stats()
    print(format_table(["metric", "value"],
                       [[k, v] for k, v in sorted(stats.items())]))
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    if args.active > args.subscribers:
        print(f"error: --active {args.active} exceeds the population "
              f"(--subscribers {args.subscribers})", file=sys.stderr)
        return 2
    workload, _problem = _build_problem(args)
    try:
        config = LoadGenConfig(
            host=args.host, port=args.port,
            subscribers=args.active,
            publishers=args.publishers,
            events=args.events,
            rate=args.rate,
            duration=args.duration,
            churn_interval=args.churn_interval,
            seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    distribution = UniformEvents(workload.event_domain)
    try:
        report = asyncio.run(run_loadgen(distribution, config))
    except (ConnectionRefusedError, OSError) as exc:
        print(f"error: cannot reach the daemon at "
              f"{config.host}:{config.port}: {exc}", file=sys.stderr)
        return 2

    print(format_table(["metric", "value"], [
        ["subscriber connections", report.subscribers],
        ["events published", report.events_published],
        ["events received (wire)", report.events_received],
        ["delivery rate", report.delivery_rate],
        ["dropped (backpressure)", report.dropped_backpressure],
        ["latency p50 (s)", report.latency_p50],
        ["latency p95 (s)", report.latency_p95],
        ["latency p99 (s)", report.latency_p99],
        ["latency max (s)", report.latency_max],
        ["re-optimizations", report.reoptimizations],
        ["reopt rejected", report.reopt_rejected],
        ["reopt migrations", report.reopt_migrations],
        ["churn flaps", report.churn_flaps],
        ["achieved rate (ev/s)", report.achieved_rate],
        ["wall seconds", report.wall_seconds]]))
    if args.json:
        path = write_loadgen_json(args.json, report, config)
        print(f"payload written to {path}")

    if report.delivery_rate < args.min_delivery_rate:
        print(f"error: delivery rate {report.delivery_rate:.4f} below the "
              f"--min-delivery-rate gate ({args.min_delivery_rate})",
              file=sys.stderr)
        return 1
    if report.reoptimizations < args.min_reopts:
        print(f"error: {report.reoptimizations} re-optimizations, below "
              f"the --min-reopts gate ({args.min_reopts})", file=sys.stderr)
        return 1
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    try:
        rules = default_rules(args.rules)
        report = run_analysis(args.root, rules)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    counts = report.by_rule()
    catalog_rows = [[rule.rule_id, rule.title,
                     ("all" if rule.packages is None
                      else "+".join(sorted(rule.packages))),
                     counts.get(rule.rule_id, 0)] for rule in rules]
    print(f"analyzed {report.files_scanned} files under {report.root}")
    print(format_table(["rule", "title", "scope", "violations"],
                       catalog_rows))
    for violation in sorted(report.violations,
                            key=lambda v: (v.path, v.line, v.rule)):
        print(violation, file=sys.stderr)
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    if report.allowlisted:
        print(f"{len(report.allowlisted)} finding(s) waived by inline "
              f"'analyze: allow' pragmas")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.as_payload(rules), fh, indent=2)
            fh.write("\n")
        print(f"report written to {args.json}")

    if args.write_baseline:
        payload = write_baseline(args.write_baseline, report)
        print(f"baseline with {payload['total']} violation(s) written to "
              f"{args.write_baseline}")
        return 0

    if report.parse_errors:
        return 2
    if args.check_against:
        try:
            baseline = load_baseline(args.check_against)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        ratchet = check_ratchet(report, baseline)
        print(ratchet.summary())
        return 0 if ratchet.ok else 2
    return 2 if report.violations else 0


def _command_algorithms(_args: argparse.Namespace) -> int:
    for name in algorithm_names():
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Subscriber assignment for wide-area content-based "
                    "publish/subscribe (ICDE 2011 reproduction)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run algorithms on a workload")
    _add_instance_arguments(run)
    run.add_argument("--algorithms", nargs="+", default=["SLP1", "Gr*"],
                     choices=algorithm_names())
    run.set_defaults(handler=_command_run)

    simulate = subparsers.add_parser(
        "simulate", help="solve, then publish events through the tree")
    _add_instance_arguments(simulate)
    simulate.add_argument("--algorithm", default="Gr*",
                          choices=algorithm_names())
    simulate.add_argument("--events", type=int, default=4000)
    simulate.add_argument("--chunk-size", type=int, default=512,
                          help="events per vectorized chunk (1 = scalar "
                               "stepping; results are identical)")
    simulate.add_argument("--shards", type=int, default=1,
                          help="partition subscribers into N subgroups and "
                               "simulate them in parallel (bit-identical "
                               "to --shards 1)")
    simulate.add_argument("--shard-workers", type=int, default=None,
                          metavar="W", help="worker processes for sharded "
                          "runs (default: min(shards, cores))")
    simulate.add_argument("--result-json", default=None, metavar="PATH",
                          help="export the simulation result as JSON")
    simulate.set_defaults(handler=_command_simulate)

    dynamic = subparsers.add_parser(
        "dynamic", help="churn + periodic re-optimization")
    _add_instance_arguments(dynamic)
    dynamic.add_argument("--horizon", type=int, default=30)
    dynamic.add_argument("--churn-rate", type=float, default=10.0)
    dynamic.add_argument("--initial-fraction", type=float, default=0.4)
    dynamic.add_argument("--reopt-every", type=int, default=15)
    dynamic.set_defaults(handler=_command_dynamic)

    runtime = subparsers.add_parser(
        "runtime",
        help="discrete-event dissemination runtime with fault injection")
    _add_instance_arguments(runtime)
    runtime.add_argument("--algorithm", default="Gr*",
                         choices=algorithm_names())
    runtime.add_argument("--events", type=int, default=2000)
    runtime.add_argument("--epoch-batch", type=int, default=0,
                         help="publish events per vectorized epoch "
                              "(0 = scalar heap stepping; results are "
                              "bit-identical)")
    runtime.add_argument("--publish-interval", type=float, default=1.0)
    runtime.add_argument("--service-time", type=float, default=0.0)
    runtime.add_argument("--queue-capacity", type=int, default=None)
    runtime.add_argument("--link-loss", type=float, default=0.0,
                         help="per-hop message loss probability")
    runtime.add_argument("--crash", type=_parse_outage, action="append",
                         default=[], metavar="NODE:START[:END]",
                         help="crash broker NODE at START, recover at END "
                              "(repeatable)")
    runtime.add_argument("--failover-delay", type=float, default=0.0,
                         help="failure-detection lag before re-assignment")
    runtime.add_argument("--no-failover", action="store_true",
                         help="leave orphaned subscribers unrepaired")
    runtime.add_argument("--churn-horizon", type=int, default=0,
                         help="churn steps to replay mid-run (0 = frozen)")
    runtime.add_argument("--churn-rate", type=float, default=10.0)
    runtime.add_argument("--initial-fraction", type=float, default=0.5)
    runtime.add_argument("--reopt-every", type=int, default=0)
    runtime.add_argument("--shards", type=int, default=1,
                         help="partition subscribers into N subgroups, one "
                              "full engine replica each, merged "
                              "deterministically (bit-identical to "
                              "--shards 1; incompatible with "
                              "--trace-events)")
    runtime.add_argument("--shard-workers", type=int, default=None,
                         metavar="W", help="worker processes for sharded "
                         "runs (default: min(shards, cores))")
    runtime.add_argument("--trace-events", type=int, default=0,
                         help="record trace spans for the first N events")
    runtime.add_argument("--telemetry-json", default=None, metavar="PATH",
                         help="export the run's telemetry as JSON")
    runtime.add_argument("--result-json", default=None, metavar="PATH",
                         help="export the runtime result as JSON")
    runtime.add_argument("--duration", type=float, default=None,
                         help="abort (exit 2) past this simulated time — "
                              "guards replays against runaway churn traces")
    runtime.add_argument("--max-events", type=int, default=None,
                         help="refuse (exit 2) when --events exceeds this")
    runtime.set_defaults(handler=_command_runtime)

    verify = subparsers.add_parser(
        "verify",
        help="check solutions against the paper invariants + oracles")
    _add_instance_arguments(verify)
    verify.add_argument("--algorithms", nargs="+", default=["SLP1", "Gr*"],
                        choices=algorithm_names())
    verify.add_argument("--checks", choices=["guaranteed", "all"],
                        default="guaranteed",
                        help="hold each algorithm to its own contract "
                             "(default) or to every invariant")
    verify.add_argument("--corrupt", choices=["nesting", "latency"],
                        default=None,
                        help="deliberately break the solution first; the "
                             "run must then exit 2")
    verify.add_argument("--skip-oracles", action="store_true",
                        help="run only the invariant checks")
    verify.add_argument("--events", type=int, default=400,
                        help="events for the runtime differential oracle")
    verify.add_argument("--mc-samples", type=int, default=200_000,
                        help="samples for the volume differential oracle")
    verify.set_defaults(handler=_command_verify)

    profile = subparsers.add_parser(
        "profile",
        help="per-stage wall-clock breakdown (+ perf-regression gate)")
    _add_instance_arguments(profile)
    profile.add_argument("--algorithm", default="SLP1",
                         choices=algorithm_names())
    profile.add_argument("--repeats", type=int, default=3,
                         help="profiled runs; the fastest is reported")
    profile.add_argument("--json", default=None, metavar="PATH",
                         help="export the profile payload as JSON")
    profile.add_argument("--check-against", default=None, metavar="BASELINE",
                         help="compare against a committed profile payload; "
                              "exit 3 on regression")
    profile.add_argument("--tolerance", type=float, default=0.30,
                         help="allowed normalized growth per gated stage")
    profile.set_defaults(handler=_command_profile)

    serve = subparsers.add_parser(
        "serve", help="run the live asyncio pub/sub broker daemon")
    _add_instance_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="TCP port (0 = ephemeral, printed on startup)")
    serve.add_argument("--queue-capacity", type=int, default=1024,
                       help="per-subscriber delivery queue depth")
    serve.add_argument("--reopt-threshold", type=int, default=64,
                       help="churn events triggering a re-optimization")
    serve.add_argument("--reopt-poll", type=float, default=0.25,
                       help="seconds between churn checks")
    serve.add_argument("--reopt-algorithm", default="SLP1",
                       choices=algorithm_names())
    serve.add_argument("--shards", type=int, default=1,
                       help="shard the broker's matcher into N subscription "
                            "subgroups with cover-filter routing")
    serve.add_argument("--run-for", type=float, default=None,
                       help="shut down cleanly after N seconds "
                            "(default: run until interrupted)")
    serve.set_defaults(handler=_command_serve)

    loadgen = subparsers.add_parser(
        "loadgen", help="drive a serve daemon and measure latency")
    _add_instance_arguments(loadgen)
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=7411)
    loadgen.add_argument("--active", type=int, default=100,
                         help="concurrent subscriber connections")
    loadgen.add_argument("--publishers", type=int, default=4)
    loadgen.add_argument("--events", type=int, default=2000,
                         help="events to publish (pre-sampled, seeded)")
    loadgen.add_argument("--rate", type=float, default=500.0,
                         help="aggregate publish rate, events/second")
    loadgen.add_argument("--duration", type=float, default=None,
                         help="wall-clock cap on the publish phase")
    loadgen.add_argument("--churn-interval", type=float, default=0.0,
                         help="seconds between subscriber flaps (0 = off)")
    loadgen.add_argument("--min-delivery-rate", type=float, default=0.0,
                         help="exit 1 when the delivery rate ends lower")
    loadgen.add_argument("--min-reopts", type=int, default=0,
                         help="exit 1 with fewer live re-optimizations")
    loadgen.add_argument("--json", default=None, metavar="PATH",
                         help="write the BENCH_serve payload here")
    loadgen.set_defaults(handler=_command_loadgen)

    analyze = subparsers.add_parser(
        "analyze",
        help="determinism / async-safety / contract static analysis")
    analyze.add_argument("--root", default=None, metavar="DIR",
                         help="source root to scan (default: the installed "
                              "repro package)")
    analyze.add_argument("--rules", nargs="+", default=None,
                         metavar="RULE",
                         help="rule ids or families to run, e.g. DET ASY "
                              "CON001 (default: all)")
    analyze.add_argument("--json", default=None, metavar="PATH",
                         help="write the full report payload as JSON")
    analyze.add_argument("--check-against", default=None, metavar="BASELINE",
                         help="ratchet gate: exit 2 when any file::rule "
                              "count exceeds this committed baseline")
    analyze.add_argument("--write-baseline", default=None, metavar="PATH",
                         help="freeze the current counts as the baseline")
    analyze.set_defaults(handler=_command_analyze)

    algorithms = subparsers.add_parser("algorithms",
                                       help="list algorithm names")
    algorithms.set_defaults(handler=_command_algorithms)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
