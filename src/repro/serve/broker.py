"""Live broker core: routing table, delivery queues, publication path.

This is the in-process heart of the service — everything the TCP
gateway does funnels into a :class:`LiveBroker`.  The broker owns:

* a :class:`~repro.dynamic.manager.DynamicPubSub` manager placing
  arrivals with the online greedy rule (filters grow-only between
  re-optimizations, exactly the paper's deployment story);
* an immutable :class:`RoutingTable` snapshot (assignment + broker
  filters) that ``publish`` reads and a re-optimization swaps
  *atomically* — one reference assignment, never a half-updated tree;
* one bounded FIFO :class:`DeliveryQueue` per active subscriber with
  drop accounting: when a subscriber's client cannot drain fast enough,
  the broker sheds its events instead of stalling the publish path
  (backpressure).

Delivery semantics mirror the batch simulator and the discrete-event
runtime exactly: an event reaches a leaf iff every filter on the
publisher-to-leaf path contains it, and is delivered to each active
assigned subscriber whose subscription contains it (matched via the
:mod:`repro.pubsub.matching` machinery).  That equivalence is what the
serve-vs-runtime differential oracle asserts.
"""

from __future__ import annotations

import asyncio
from typing import Any

import numpy as np

from ..core.problem import SAProblem
from ..dynamic.manager import DynamicPubSub
from ..network.tree import PUBLISHER, BrokerTree
from ..pubsub.filters import Filter
from ..pubsub.matching import best_matcher
from ..shard import ShardedMatcher, ShardPlan, plan_shards, replan_shards

__all__ = ["DeliveryQueue", "RoutingTable", "LiveBroker"]

#: Sentinel closing a delivery queue's consumer loop.
_CLOSE = object()


class DeliveryQueue:
    """A bounded per-subscriber FIFO with backpressure drop accounting."""

    def __init__(self, subscriber: int, capacity: int):
        if capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        self.subscriber = subscriber
        self.capacity = capacity
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize=capacity + 1)
        self.enqueued = 0
        self.dropped = 0
        self.peak = 0
        self.closed = False

    def __len__(self) -> int:
        return self._queue.qsize()

    def offer(self, item: Any) -> bool:
        """Enqueue without blocking; ``False`` (and a drop) when full."""
        if self.closed or self._queue.qsize() >= self.capacity:
            self.dropped += 1
            return False
        self._queue.put_nowait(item)
        self.enqueued += 1
        self.peak = max(self.peak, self._queue.qsize())
        return True

    async def get(self) -> Any:
        """Next item, or the module's close sentinel once closed."""
        if self.closed and self._queue.empty():
            return _CLOSE
        return await self._queue.get()

    def get_nowait(self) -> Any:
        """Next already-queued item (for micro-batched draining).

        Raises :class:`asyncio.QueueEmpty` when nothing is pending; may
        return the close sentinel (check :meth:`is_close`).
        """
        if self.closed and self._queue.empty():
            return _CLOSE
        return self._queue.get_nowait()

    @staticmethod
    def is_close(item: Any) -> bool:
        return item is _CLOSE

    def close(self) -> None:
        """Wake the consumer; pending items after the sentinel are shed."""
        if self.closed:
            return
        self.closed = True
        # Reserved headroom (maxsize = capacity + 1) guarantees room.
        self._queue.put_nowait(_CLOSE)


class RoutingTable:
    """An immutable snapshot of the dissemination state.

    ``publish`` only ever reads one table object, and the reoptimizer
    replaces the broker's reference wholesale, so routing is atomic with
    respect to re-assignment without any locking on the hot path.
    """

    __slots__ = ("version", "tree", "filters", "assignment")

    def __init__(self, version: int, tree: BrokerTree,
                 filters: dict[int, Filter], assignment: np.ndarray):
        self.version = version
        self.tree = tree
        self.filters = dict(filters)
        assignment = np.asarray(assignment, dtype=int).copy()
        assignment.setflags(write=False)
        self.assignment = assignment

    def route(self, point: np.ndarray) -> tuple[list[int], set[int]]:
        """Walk the tree; return (entered broker nodes, reached leaves)."""
        entered: list[int] = []
        reached: set[int] = set()
        stack = [PUBLISHER]
        while stack:
            node = stack.pop()
            for child in self.tree.children(node):
                if not self.filters[child].contains_point(point):
                    continue
                entered.append(child)
                if self.tree.is_leaf(child):
                    reached.add(child)
                else:
                    stack.append(child)
        return entered, reached

    def route_batch(self, points: np.ndarray
                    ) -> tuple[dict[int, np.ndarray], dict[int, np.ndarray]]:
        """Batched :meth:`route`: walk the tree once with surviving masks.

        Returns ``(entered, reached)`` — each a mapping from node id to
        a boolean column over the event batch.  Equivalent to calling
        :meth:`route` per point, but each edge costs one vectorized
        filter containment over the surviving events.
        """
        pts = np.asarray(points, dtype=float)
        entered: dict[int, np.ndarray] = {}
        reached: dict[int, np.ndarray] = {}
        stack: list[tuple[int, np.ndarray]] = [
            (PUBLISHER, np.ones(pts.shape[0], dtype=bool))]
        while stack:
            node, mask = stack.pop()
            for child in self.tree.children(node):
                sub = mask & self.filters[child].contains_points(pts)
                if not sub.any():
                    continue
                entered[child] = sub
                if self.tree.is_leaf(child):
                    reached[child] = sub
                else:
                    stack.append((child, sub))
        return entered, reached


class LiveBroker:
    """The live service state machine behind the gateway.

    All mutating entry points run on the event loop (or behind the
    gateway's churn lock for the thread-offloaded re-optimization), so
    plain attribute updates are safe; ``publish`` never awaits between
    reading the routing table and accounting the event, making each
    publication atomic from the loop's point of view.
    """

    def __init__(self, problem: SAProblem, *, queue_capacity: int = 1024,
                 seed: int = 0, shards: int = 1):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self._problem = problem
        self._manager = DynamicPubSub(problem, seed=seed)
        # The population is fixed (subscribers churn by activation, not
        # by changing boxes), so the index can be chosen once up front.
        # With --shards N the index is decomposed into cover-guarded
        # subgroup matchers (exact; see repro.shard.matcher) that the
        # batch route path probes shard-by-shard.
        self._shard_plan: ShardPlan | None = None
        self.shard_migrations = 0
        if shards > 1:
            # Group by feasibility signature: the assignment evolves
            # under churn, the latency-feasible leaf sets do not.
            self._shard_plan = plan_shards(problem.subscriptions, shards,
                                           feasible=problem.feasible_leaf)
            self._matcher: Any = ShardedMatcher(problem.subscriptions,
                                                self._shard_plan)
        else:
            self._matcher = best_matcher(problem.subscriptions)
        self._queue_capacity = queue_capacity
        self._queues: dict[int, DeliveryQueue] = {}

        m = problem.num_subscribers
        self.deliveries = np.zeros(m, dtype=np.int64)   #: enqueued per sub
        self.drops = np.zeros(m, dtype=np.int64)        #: shed per sub
        self.node_entries = np.zeros(problem.tree.num_nodes, dtype=np.int64)
        self.published = 0
        self.matched = 0
        self.missed = 0          #: matched but leaf unreachable via filters
        self.subscribes = 0
        self.unsubscribes = 0
        self.churn_since_reopt = 0
        self._routing = self._build_routing(version=0)

    # -- snapshots -----------------------------------------------------------

    @property
    def problem(self) -> SAProblem:
        return self._problem

    @property
    def manager(self) -> DynamicPubSub:
        return self._manager

    @property
    def routing(self) -> RoutingTable:
        return self._routing

    @property
    def active_count(self) -> int:
        return self._manager.active_count

    def queue(self, subscriber: int) -> DeliveryQueue:
        return self._queues[subscriber]

    def _build_routing(self, version: int) -> RoutingTable:
        return RoutingTable(version, self._problem.tree,
                            self._manager.current_filters(),
                            self._manager.assignment)

    def _swap_routing(self) -> None:
        self._routing = self._build_routing(self._routing.version + 1)

    # -- membership ----------------------------------------------------------

    def _validate_subscriber(self, subscriber: Any) -> int:
        if isinstance(subscriber, bool) or not isinstance(subscriber, int):
            raise ValueError("subscriber must be an integer population index")
        if not (0 <= subscriber < self._problem.num_subscribers):
            raise ValueError(
                f"subscriber {subscriber} outside the population "
                f"[0, {self._problem.num_subscribers})")
        return subscriber

    def subscribe(self, subscriber: Any) -> int:
        """Activate a population member; returns its assigned leaf node."""
        j = self._validate_subscriber(subscriber)
        if j in self._queues:
            raise ValueError(f"subscriber {j} is already subscribed")
        leaf = self._manager.arrive(j)
        self._queues[j] = DeliveryQueue(j, self._queue_capacity)
        self.subscribes += 1
        self.churn_since_reopt += 1
        self._swap_routing()
        return leaf

    def unsubscribe(self, subscriber: Any) -> None:
        """Deactivate a subscriber; its queued events are shed."""
        j = self._validate_subscriber(subscriber)
        if j not in self._queues:
            raise ValueError(f"subscriber {j} is not subscribed")
        self._manager.depart(j)
        self._queues.pop(j).close()
        self.unsubscribes += 1
        self.churn_since_reopt += 1
        self._swap_routing()

    # -- publication ---------------------------------------------------------

    def publish(self, point: Any, *, sent_at: float | None = None,
                event_id: Any = None) -> dict[str, int]:
        """Route one event through the current table; returns the counts."""
        pt = np.asarray(point, dtype=float)
        if pt.shape != (self._problem.event_dim,):
            raise ValueError(f"event point must have {self._problem.event_dim}"
                             f" coordinates, got shape {pt.shape}")
        if not np.all(np.isfinite(pt)):
            raise ValueError("event point coordinates must be finite")

        table = self._routing
        entered, reached = table.route(pt)
        self.node_entries[PUBLISHER] += 1
        for node in entered:
            self.node_entries[node] += 1
        self.published += 1

        matched = self._matcher.match_point(pt)
        assignment = table.assignment
        matched = matched[assignment[matched] >= 0]
        delivered = 0
        dropped = 0
        for j in matched:
            j = int(j)
            if assignment[j] not in reached:
                self.missed += 1
                continue
            queue = self._queues.get(j)
            if queue is None:  # unsubscribed after the snapshot was taken
                self.missed += 1
                continue
            if queue.offer((pt, sent_at, event_id)):
                self.deliveries[j] += 1
                delivered += 1
            else:
                self.drops[j] += 1
                dropped += 1
        self.matched += int(len(matched))
        return {"matched": int(len(matched)), "delivered": delivered,
                "dropped": dropped,
                "missed": int(len(matched)) - delivered - dropped}

    def publish_batch(self, points: Any, *, sent_at: float | None = None,
                      event_ids: list[Any] | None = None) -> dict[str, int]:
        """Route a batch of events through one routing-table snapshot.

        Counts are exactly the sum of per-event :meth:`publish` calls,
        but the whole batch pays one batched tree walk
        (:meth:`RoutingTable.route_batch`) and one ``match_points``
        matrix instead of a Python loop per event.  Being synchronous,
        the batch is atomic with respect to churn from the event loop's
        point of view — it reads a single table snapshot.
        """
        pts = np.asarray(points, dtype=float)
        if pts.size == 0:
            pts = pts.reshape(0, self._problem.event_dim)
        if pts.ndim != 2 or pts.shape[1] != self._problem.event_dim:
            raise ValueError(f"event points must have shape (n, "
                             f"{self._problem.event_dim}), got {pts.shape}")
        if not np.all(np.isfinite(pts)):
            raise ValueError("event point coordinates must be finite")
        if event_ids is not None and len(event_ids) != pts.shape[0]:
            raise ValueError("need one event id per point")

        table = self._routing
        num_events = pts.shape[0]
        entered, reached = table.route_batch(pts)
        self.node_entries[PUBLISHER] += num_events
        for node, mask in entered.items():
            self.node_entries[node] += int(mask.sum())
        self.published += num_events

        match = self._matcher.match_points(pts)  # (m, num_events)
        assignment = table.assignment
        match &= (assignment >= 0)[:, None]
        matched_total = int(match.sum())
        delivered = 0
        dropped = 0
        for i in range(num_events):
            event_id = event_ids[i] if event_ids is not None else None
            for j in np.flatnonzero(match[:, i]):
                j = int(j)
                leaf_mask = reached.get(int(assignment[j]))
                if leaf_mask is None or not leaf_mask[i]:
                    self.missed += 1
                    continue
                queue = self._queues.get(j)
                if queue is None:  # unsubscribed after the snapshot
                    self.missed += 1
                    continue
                if queue.offer((pts[i], sent_at, event_id)):
                    self.deliveries[j] += 1
                    delivered += 1
                else:
                    self.drops[j] += 1
                    dropped += 1
        self.matched += matched_total
        return {"matched": matched_total, "delivered": delivered,
                "dropped": dropped,
                "missed": matched_total - delivered - dropped,
                "events": num_events}

    # -- re-optimization -----------------------------------------------------

    def reoptimize(self, algorithm: str = "SLP1", *,
                   precommit=None, **kwargs: Any) -> dict[str, Any]:
        """Full re-assignment of the active set, atomically swapped in.

        ``precommit`` (see :meth:`DynamicPubSub.reoptimize`) may veto the
        new solution — the invariant gate — in which case the manager
        state and the routing table are left untouched.
        """
        info = self._manager.reoptimize(algorithm, precommit=precommit,
                                        **kwargs)
        if info.get("committed", True):
            self.churn_since_reopt = 0
            self._swap_routing()
            if self._shard_plan is not None:
                # Re-shard along the committed assignment, migrating as
                # few subscribers as the max-flow rebalance allows, and
                # rebuild the subgroup indexes around the new plan.
                self._shard_plan, moved = replan_shards(
                    self._problem.subscriptions, self._shard_plan,
                    assignment=self._manager.assignment)
                self.shard_migrations += moved
                self._matcher = ShardedMatcher(self._problem.subscriptions,
                                               self._shard_plan)
                info = dict(info)
                info["shard_migrations"] = moved
        return info

    # -- stats ---------------------------------------------------------------

    @property
    def delivery_rate(self) -> float:
        """Enqueued fraction of matched events (1.0 when none matched)."""
        if self.matched == 0:
            return 1.0
        return float(self.deliveries.sum()) / self.matched

    def stats(self) -> dict[str, Any]:
        queues = self._queues.values()
        return {
            "active_subscribers": self.active_count,
            "published": self.published,
            "matched": self.matched,
            "delivered": int(self.deliveries.sum()),
            "dropped_backpressure": int(self.drops.sum()),
            "missed": self.missed,
            "delivery_rate": self.delivery_rate,
            "broker_entries": int(self.node_entries[1:].sum()),
            "subscribes": self.subscribes,
            "unsubscribes": self.unsubscribes,
            "churn_since_reopt": self.churn_since_reopt,
            "routing_version": self._routing.version,
            "queue_depth_peak": max((q.peak for q in queues), default=0),
            "shards": (self._shard_plan.num_shards
                       if self._shard_plan is not None else 1),
            "shard_migrations": self.shard_migrations,
        }
