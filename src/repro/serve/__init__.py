"""repro.serve — the live asyncio pub/sub broker service.

Promotes the library from a batch optimizer into a long-running daemon:
a JSON-over-TCP gateway (:mod:`~repro.serve.gateway`) fronting a live
broker (:mod:`~repro.serve.broker`) that routes events through the
current assignment's filter tree into per-subscriber bounded delivery
queues, while a background re-optimizer (:mod:`~repro.serve.reoptimizer`)
watches churn and swaps invariant-verified re-assignments in atomically.
:mod:`~repro.serve.client` and :mod:`~repro.serve.loadgen` drive it and
measure end-to-end delivery latency.

The discrete-event :mod:`repro.runtime` is this service's differential
oracle: the same seeded workload through both yields identical
per-subscriber delivery counts (``tests/test_serve_oracle.py``).
"""

from .broker import DeliveryQueue, LiveBroker, RoutingTable
from .client import ServeClient, ServeError
from .gateway import ServeConfig, ServeDaemon
from .loadgen import LoadGenConfig, LoadGenReport, run_loadgen, \
    write_loadgen_json
from .reoptimizer import Reoptimizer, ReoptimizerConfig

__all__ = [
    "DeliveryQueue",
    "LiveBroker",
    "RoutingTable",
    "ServeClient",
    "ServeError",
    "ServeConfig",
    "ServeDaemon",
    "Reoptimizer",
    "ReoptimizerConfig",
    "LoadGenConfig",
    "LoadGenReport",
    "run_loadgen",
    "write_loadgen_json",
]
