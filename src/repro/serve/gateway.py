"""The JSON-over-TCP gateway: asyncio streams front-end of the broker.

``ServeDaemon`` binds a listening socket and speaks the newline-delimited
JSON protocol of :mod:`repro.serve.protocol`.  Each connection may issue
any mix of ops; a connection that subscribes becomes the delivery
channel for those subscribers — a per-subscriber *pump* task drains the
broker's bounded delivery queue into the connection's writer, so one
slow client sheds its own events (queue drops) without stalling anyone
else.

Mutating requests honour idempotency keys: the first response for a key
is cached and replayed verbatim for duplicates, so retries cannot
double-subscribe or double-publish.  Validation failures (bad JSON,
unknown op, missing fields) get an error reply and the connection
lives on.  A disconnecting client's subscribers are auto-unsubscribed —
dropped connections are churn, which is exactly what feeds the
background :class:`~repro.serve.reoptimizer.Reoptimizer`.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from ..core.problem import SAProblem
from . import protocol
from .broker import DeliveryQueue, LiveBroker
from .reoptimizer import Reoptimizer, ReoptimizerConfig

__all__ = ["ServeConfig", "ServeDaemon"]

#: Idempotency responses remembered per daemon before the oldest expire.
_IDEMPOTENCY_CACHE_SIZE = 65536

#: Events a pump drains per write: after awaiting one delivery, up to
#: this many already-queued events ride the same lock acquisition and
#: socket flush, so a bursty queue costs one syscall per batch instead
#: of one per event.
_PUMP_BATCH = 64


@dataclass(frozen=True)
class ServeConfig:
    """Network and behaviour knobs of the daemon."""

    host: str = "127.0.0.1"
    port: int = 0                    #: 0 = ephemeral; see ``ServeDaemon.port``
    queue_capacity: int = 1024       #: per-subscriber delivery queue depth
    seed: int = 0                    #: online-greedy manager seed
    reopt_threshold: int = 64        #: churn events triggering re-optimization
    reopt_poll_interval: float = 0.25
    reopt_algorithm: str = "SLP1"
    shards: int = 1                  #: subscription subgroups for routing

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")


class _Connection:
    """Per-connection state: owned subscribers and their pump tasks."""

    __slots__ = ("writer", "write_lock", "subscribers", "pumps", "conn_id")

    def __init__(self, writer: asyncio.StreamWriter, conn_id: int):
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.subscribers: set[int] = set()
        self.pumps: dict[int, asyncio.Task] = {}
        #: Namespaces this connection's idempotency keys: two clients
        #: reusing the same key string must never see each other's
        #: cached responses.
        self.conn_id = conn_id


class ServeDaemon:
    """A live pub/sub broker daemon over one SA problem instance."""

    def __init__(self, problem: SAProblem,
                 config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.broker = LiveBroker(problem,
                                 queue_capacity=self.config.queue_capacity,
                                 seed=self.config.seed,
                                 shards=self.config.shards)
        #: Serializes churn (subscribe/unsubscribe) against the
        #: thread-offloaded re-optimization.
        self.churn_lock = asyncio.Lock()
        self.reoptimizer = Reoptimizer(
            self.broker,
            ReoptimizerConfig(churn_threshold=self.config.reopt_threshold,
                              poll_interval=self.config.reopt_poll_interval,
                              algorithm=self.config.reopt_algorithm,
                              seed=self.config.seed),
            churn_lock=self.churn_lock)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        #: Keyed by ``(conn_id, key)``: idempotency replay is scoped to
        #: the connection that issued the key, so one client's key can
        #: never replay another client's cached response (and a
        #: reconnect starts a fresh namespace).
        self._idempotency: OrderedDict[tuple[int, str],
                                       dict[str, Any]] = OrderedDict()
        self._next_conn_id = 0
        self.requests = 0
        self.request_errors = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the ephemeral choice)."""
        if self._server is None:
            raise RuntimeError("daemon is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=protocol.MAX_FRAME_BYTES)
        self.reoptimizer.start()

    async def stop(self) -> None:
        """Stop accepting, drop live connections, cancel the reoptimizer."""
        await self.reoptimizer.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._connections):
            conn.writer.close()

    async def run(self, run_for: float | None = None) -> None:
        """Serve until cancelled (or for ``run_for`` seconds), then stop."""
        assert self._server is not None, "call start() first"
        try:
            if run_for is None:
                await self._server.serve_forever()
            else:
                await asyncio.sleep(run_for)
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer, self._next_conn_id)
        self._next_conn_id += 1
        self._connections.add(conn)
        try:
            while True:
                try:
                    request = await protocol.read_frame(reader)
                except protocol.ProtocolError as exc:
                    self.request_errors += 1
                    await self._send(conn, protocol.error_reply(
                        {}, exc.code, str(exc)))
                    continue
                except (asyncio.LimitOverrunError, ValueError):
                    break  # oversized frame: framing is lost, drop the link
                if request is None:
                    break
                response = await self._dispatch(request, conn)
                await self._send(conn, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(conn)
            await self._teardown(conn)

    async def _send(self, conn: _Connection, message: dict[str, Any]) -> None:
        async with conn.write_lock:
            await protocol.write_frame(conn.writer, message)

    async def _teardown(self, conn: _Connection) -> None:
        """Auto-unsubscribe a closing connection's subscribers (churn)."""
        for pump in conn.pumps.values():
            pump.cancel()
        if conn.subscribers:
            async with self.churn_lock:
                for j in list(conn.subscribers):
                    try:
                        self.broker.unsubscribe(j)
                    except ValueError:
                        pass  # already gone via an explicit unsubscribe race
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, request: dict[str, Any],
                        conn: _Connection) -> dict[str, Any]:
        self.requests += 1
        op = request.get("op")
        if not isinstance(op, str) or op not in protocol.ALL_OPS:
            self.request_errors += 1
            return protocol.error_reply(
                request, protocol.ERR_UNKNOWN_OP,
                f"unknown op {op!r}; expected one of "
                f"{sorted(protocol.ALL_OPS)}")

        key = request.get("key")
        if key is not None and op in protocol.MUTATING_OPS:
            if not isinstance(key, str):
                self.request_errors += 1
                return protocol.error_reply(
                    request, protocol.ERR_INVALID,
                    "idempotency key must be a string")
            cached = self._idempotency.get((conn.conn_id, key))
            if cached is not None:
                response = dict(cached)
                response["idempotent_replay"] = True
                if "id" in request:
                    response["id"] = request["id"]
                else:
                    response.pop("id", None)
                return response

        try:
            response = await self._apply(op, request, conn)
        except (ValueError, protocol.ProtocolError) as exc:
            self.request_errors += 1
            code = getattr(exc, "code", protocol.ERR_INVALID)
            response = protocol.error_reply(request, code, str(exc))

        if key is not None and op in protocol.MUTATING_OPS \
                and response.get("ok"):
            self._idempotency[(conn.conn_id, key)] = response
            while len(self._idempotency) > _IDEMPOTENCY_CACHE_SIZE:
                self._idempotency.popitem(last=False)
        return response

    async def _apply(self, op: str, request: dict[str, Any],
                     conn: _Connection) -> dict[str, Any]:
        if op == "ping":
            return protocol.reply(request, pong=True,
                                  protocol=protocol.PROTOCOL_VERSION)
        if op == "stats":
            return protocol.reply(request, stats=self.stats())
        if op == "subscribe":
            j = _field(request, "subscriber")
            # The connection bookkeeping must be atomic with the broker
            # mutation: releasing the lock first would open a window where
            # a concurrent teardown misses the new subscriber and leaks it.
            async with self.churn_lock:
                leaf = self.broker.subscribe(j)
                conn.subscribers.add(j)
                conn.pumps[j] = asyncio.get_running_loop().create_task(
                    self._pump(self.broker.queue(j), conn, j))
            return protocol.reply(request, subscriber=j, leaf=leaf,
                                  routing_version=self.broker.routing.version)
        if op == "unsubscribe":
            j = _field(request, "subscriber")
            async with self.churn_lock:
                self.broker.unsubscribe(j)
                conn.subscribers.discard(j)
                pump = conn.pumps.pop(j, None)
            if pump is not None:
                pump.cancel()
            return protocol.reply(request, subscriber=j)
        sent_at = request.get("sentAt")
        if sent_at is not None and not isinstance(sent_at, (int, float)):
            raise protocol.ProtocolError(
                protocol.ERR_INVALID, "sentAt must be a number")
        if op == "publish_batch":
            points = _field(request, "points")
            if not isinstance(points, (list, tuple)) or not all(
                    isinstance(p, (list, tuple)) for p in points):
                raise protocol.ProtocolError(
                    protocol.ERR_INVALID,
                    "publish_batch points must be a list of number lists")
            event_ids = request.get("eventIds")
            if event_ids is not None and (
                    not isinstance(event_ids, (list, tuple))
                    or len(event_ids) != len(points)):
                raise protocol.ProtocolError(
                    protocol.ERR_INVALID,
                    "eventIds must be a list with one entry per point")
            summary = self.broker.publish_batch(
                points, sent_at=sent_at,
                event_ids=list(event_ids) if event_ids is not None else None)
            return protocol.reply(request, **summary)
        # publish
        point = _field(request, "point")
        if not isinstance(point, (list, tuple)):
            raise protocol.ProtocolError(
                protocol.ERR_INVALID, "publish point must be a number list")
        summary = self.broker.publish(point, sent_at=sent_at,
                                      event_id=request.get("eventId"))
        return protocol.reply(request, **summary)

    async def _pump(self, queue: DeliveryQueue, conn: _Connection,
                    subscriber: int) -> None:
        """Drain one delivery queue into the owning connection.

        Micro-batched: after awaiting the first delivery, everything
        already queued (up to ``_PUMP_BATCH``) is drained and written
        under one lock acquisition with a single flush, so bursty
        traffic (an epoch block, a ``publish_batch``) costs one syscall
        per batch instead of one per event.
        """
        seq = 0
        try:
            while True:
                item = await queue.get()
                closing = DeliveryQueue.is_close(item)
                batch = [] if closing else [item]
                while not closing and len(batch) < _PUMP_BATCH:
                    try:
                        extra = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if DeliveryQueue.is_close(extra):
                        closing = True
                        break
                    batch.append(extra)
                if batch:
                    messages = []
                    for point, sent_at, event_id in batch:
                        messages.append(protocol.event_message(
                            subscriber, seq, [float(x) for x in point],
                            sent_at, event_id))
                        seq += 1
                    async with conn.write_lock:
                        await protocol.write_frames(conn.writer, messages)
                if closing:
                    return
        except (asyncio.CancelledError, ConnectionResetError,
                BrokenPipeError):
            pass

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        payload = dict(self.broker.stats())
        payload.update(self.reoptimizer.stats())
        payload["connections"] = len(self._connections)
        payload["requests"] = self.requests
        payload["request_errors"] = self.request_errors
        return payload


def _field(request: dict[str, Any], name: str) -> Any:
    try:
        return request[name]
    except KeyError:
        raise protocol.ProtocolError(
            protocol.ERR_INVALID,
            f"op {request.get('op')!r} requires field {name!r}") from None
