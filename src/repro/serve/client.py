"""Asyncio client for the live pub/sub gateway.

A :class:`ServeClient` owns one TCP connection.  A background reader
demultiplexes the stream: replies are matched to in-flight requests by
correlation id, pushed event frames land in :attr:`events` (an asyncio
queue) for the subscriber side to drain.  Every mutating request is
stamped with a unique idempotency key automatically, so the transport
layer may be retried safely.
"""

from __future__ import annotations

import asyncio
import itertools
import os
from typing import Any

from . import protocol

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A gateway error reply, surfaced with its protocol error code."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code


class ServeClient:
    """One connection to a :class:`~repro.serve.gateway.ServeDaemon`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._tag = os.urandom(6).hex()
        self._seq = itertools.count()
        self._pending: dict[int, asyncio.Future] = {}
        self.events: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES)
        return cls(reader, writer)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *_exc: Any) -> None:
        await self.close()

    # -- plumbing ------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                message = await protocol.read_frame(self._reader)
                if message is None:
                    break
                if message.get("type") == "event":
                    self.events.put_nowait(message)
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (protocol.ProtocolError, ConnectionResetError,
                asyncio.IncompleteReadError):
            pass
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionResetError("connection closed"))
            self._pending.clear()

    async def request(self, op: str, *, timeout: float = 30.0,
                      **fields: Any) -> dict[str, Any]:
        """Send one request and await its reply; raises on error replies."""
        req_id = next(self._seq)
        message: dict[str, Any] = {"op": op, "id": req_id, **fields}
        if op in protocol.MUTATING_OPS and "key" not in message:
            message["key"] = f"{self._tag}-{req_id}"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = future
        await protocol.write_frame(self._writer, message)
        response = await asyncio.wait_for(future, timeout)
        if not response.get("ok"):
            raise ServeError(response.get("error", "error"),
                             response.get("message", "request failed"))
        return response

    # -- convenience ops -----------------------------------------------------

    async def ping(self) -> dict[str, Any]:
        return await self.request("ping")

    async def stats(self) -> dict[str, Any]:
        return (await self.request("stats"))["stats"]

    async def subscribe(self, subscriber: int) -> dict[str, Any]:
        return await self.request("subscribe", subscriber=subscriber)

    async def unsubscribe(self, subscriber: int) -> dict[str, Any]:
        return await self.request("unsubscribe", subscriber=subscriber)

    async def publish(self, point: Any, *, sent_at: float | None = None,
                      event_id: Any = None) -> dict[str, Any]:
        fields: dict[str, Any] = {"point": [float(x) for x in point]}
        if sent_at is not None:
            fields["sentAt"] = sent_at
        if event_id is not None:
            fields["eventId"] = event_id
        return await self.request("publish", **fields)

    async def publish_batch(self, points: Any, *,
                            sent_at: float | None = None,
                            event_ids: list[Any] | None = None
                            ) -> dict[str, Any]:
        """Publish an event column in one frame (batched matching)."""
        fields: dict[str, Any] = {
            "points": [[float(x) for x in point] for point in points]}
        if sent_at is not None:
            fields["sentAt"] = sent_at
        if event_ids is not None:
            fields["eventIds"] = list(event_ids)
        return await self.request("publish_batch", **fields)
