"""Wire protocol of the live pub/sub service: newline-delimited JSON.

Every message — request, reply, or server-pushed event — is one JSON
object per line, UTF-8 encoded.  Requests carry an ``op`` plus its
fields; mutating ops (``subscribe`` / ``unsubscribe`` / ``publish``)
may carry an idempotency ``key``: the gateway caches the first response
per key and replays it verbatim for duplicates, so a client retrying
over a flaky connection cannot double-apply a mutation.  Replies echo
the request's correlation ``id`` so one connection can pipeline
requests; pushed events are distinguished by ``"type": "event"``.

The protocol is intentionally tiny: six ops, two error shapes, one
frame format.  Validation failures never kill the connection — the
gateway answers with an error reply and keeps reading, because the
newline framing stays in sync even after a garbage line.

``publish_batch`` is the batched twin of ``publish``: one frame carries
an event *column* (a list of points) that the broker routes and matches
with one matrix step, returning the aggregate counts.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "MUTATING_OPS",
    "ALL_OPS",
    "ERR_BAD_JSON",
    "ERR_UNKNOWN_OP",
    "ERR_INVALID",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "write_frames",
    "reply",
    "error_reply",
    "event_message",
]

PROTOCOL_VERSION = 1

#: Hard cap on one frame's length; a line beyond this kills the
#: connection (the stream reader's ``limit`` enforces it).
MAX_FRAME_BYTES = 1 << 20

#: Ops that change broker state and therefore honour idempotency keys.
MUTATING_OPS = frozenset({"subscribe", "unsubscribe", "publish",
                          "publish_batch"})

#: Every op the gateway understands.
ALL_OPS = MUTATING_OPS | {"stats", "ping"}

ERR_BAD_JSON = "bad-json"          #: the line was not a JSON object
ERR_UNKNOWN_OP = "unknown-op"      #: ``op`` is not one of ALL_OPS
ERR_INVALID = "invalid-request"    #: a field is missing or mistyped


class ProtocolError(ValueError):
    """A malformed frame or request, tagged with its error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (compact JSON + newline)."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` (``bad-json``) when the line is not
    valid JSON or not a JSON object.
    """
    try:
        payload = json.loads(line.decode("utf-8", errors="strict"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_JSON, f"undecodable frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(ERR_BAD_JSON, "frame must be a JSON object")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one message; ``None`` on a clean EOF.

    Propagates :class:`ProtocolError` on garbage (the caller answers
    with an error reply and keeps the connection).
    """
    line = await reader.readline()
    if not line:
        return None
    return decode_frame(line)


async def write_frame(writer: asyncio.StreamWriter,
                      payload: dict[str, Any]) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


async def write_frames(writer: asyncio.StreamWriter,
                       payloads: list[dict[str, Any]]) -> None:
    """Write a run of frames with a single flush (micro-batched pumps)."""
    for payload in payloads:
        writer.write(encode_frame(payload))
    await writer.drain()


def reply(request: dict[str, Any], **fields: Any) -> dict[str, Any]:
    """A success reply echoing the request's correlation id."""
    message: dict[str, Any] = {"type": "reply", "ok": True}
    if "id" in request:
        message["id"] = request["id"]
    message.update(fields)
    return message


def error_reply(request: dict[str, Any], code: str,
                message: str) -> dict[str, Any]:
    """An error reply echoing the request's correlation id."""
    out: dict[str, Any] = {"type": "reply", "ok": False,
                           "error": code, "message": message}
    if isinstance(request, dict) and "id" in request:
        out["id"] = request["id"]
    return out


def event_message(subscriber: int, seq: int, point: list[float],
                  sent_at: float | None,
                  event_id: Any = None) -> dict[str, Any]:
    """A server-pushed delivery frame for one subscriber."""
    message: dict[str, Any] = {"type": "event", "subscriber": subscriber,
                               "seq": seq, "point": point}
    if sent_at is not None:
        message["sentAt"] = sent_at
    if event_id is not None:
        message["eventId"] = event_id
    return message
