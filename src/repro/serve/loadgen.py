"""Load generator: drive the daemon and measure end-to-end latency.

Opens one connection per subscriber (thousands are fine — asyncio
multiplexes them on one loop), a handful of publisher connections, and
an optional churn connection that unsubscribes/resubscribes members to
trigger the daemon's background re-optimization mid-bench.

Publishers stamp each event with ``sentAt`` (monotonic clock);
subscriber consumers stamp receipt, so every delivered event yields one
end-to-end latency sample: gateway parse -> broker routing -> delivery
queue -> pump -> TCP -> client.  The report carries p50/p95/p99/max
latency, the server-side delivery rate (enqueued / matched), and the
daemon's re-optimization counters — the numbers behind
``BENCH_serve_*.json``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

from ..pubsub.events import EventDistribution
from ..pubsub.simulator import sample_event_stream
from .client import ServeClient, ServeError

__all__ = ["LoadGenConfig", "LoadGenReport", "run_loadgen",
           "write_loadgen_json"]

#: Schema of the loadgen JSON payload (bumped on breaking changes).
LOADGEN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one load-generation run."""

    host: str = "127.0.0.1"
    port: int = 7411
    subscribers: int = 100        #: concurrent subscriber connections
    publishers: int = 4           #: concurrent publisher connections
    events: int = 2000            #: total events to publish (pre-sampled)
    rate: float = 500.0           #: aggregate publish rate (events/second)
    duration: float | None = None  #: wall-clock cap on the publish phase
    churn_interval: float = 0.0   #: seconds between churn flaps (0 = off)
    seed: int = 7                 #: event-stream seed
    connect_concurrency: int = 64  #: simultaneous connection attempts
    drain_timeout: float = 10.0   #: wait for in-flight deliveries at the end

    def __post_init__(self) -> None:
        if self.subscribers < 1:
            raise ValueError("need at least one subscriber")
        if self.publishers < 1:
            raise ValueError("need at least one publisher")
        if self.events < 1:
            raise ValueError("need at least one event")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.churn_interval < 0:
            raise ValueError("churn_interval must be non-negative")


@dataclass
class LoadGenReport:
    """The measured outcome of one run."""

    subscribers: int
    events_published: int
    events_received: int          #: client-side, summed over subscribers
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    latency_mean: float
    delivery_rate: float          #: server-side enqueued / matched
    dropped_backpressure: int
    reoptimizations: int
    reopt_rejected: int
    reopt_migrations: int
    churn_flaps: int
    wall_seconds: float
    achieved_rate: float
    server_stats: dict[str, Any]

    def as_payload(self, config: LoadGenConfig) -> dict[str, Any]:
        payload = {"benchmark": "serve_latency",
                   "schema_version": LOADGEN_SCHEMA_VERSION,
                   "config": asdict(config)}
        payload.update(asdict(self))
        return payload


async def run_loadgen(distribution: EventDistribution,
                      config: LoadGenConfig) -> LoadGenReport:
    """Run the full load generation against a live daemon."""
    rng = np.random.default_rng(config.seed)
    points = sample_event_stream(distribution, rng, config.events)

    subscribers = list(range(config.subscribers))
    gate = asyncio.Semaphore(config.connect_concurrency)

    async def connect_subscriber(j: int) -> ServeClient:
        async with gate:
            client = await ServeClient.connect(config.host, config.port)
            await client.subscribe(j)
            return client

    clients: list[ServeClient] = list(await asyncio.gather(
        *(connect_subscriber(j) for j in subscribers)))

    latencies: list[float] = []
    received = np.zeros(config.subscribers, dtype=np.int64)
    stop_consuming = asyncio.Event()

    async def consume(j: int, client: ServeClient) -> None:
        while True:
            get = asyncio.ensure_future(client.events.get())
            stopped = asyncio.ensure_future(stop_consuming.wait())
            done, _ = await asyncio.wait(
                {get, stopped}, return_when=asyncio.FIRST_COMPLETED)
            if get not in done:
                get.cancel()
                return
            stopped.cancel()
            message = get.result()
            received[j] += 1
            sent_at = message.get("sentAt")
            if sent_at is not None:
                latencies.append(time.monotonic() - float(sent_at))

    consumers = [asyncio.ensure_future(consume(j, c))
                 for j, c in zip(subscribers, clients)]

    churn_flaps = 0
    churning = asyncio.Event()

    async def churn() -> None:
        nonlocal churn_flaps
        cursor = 0
        while not churning.is_set():
            await asyncio.sleep(config.churn_interval)
            if churning.is_set():
                return
            j = subscribers[cursor % len(subscribers)]
            cursor += 1
            client = clients[j]
            try:
                await client.unsubscribe(j)
                await client.subscribe(j)
                churn_flaps += 1
            except (ServeError, ConnectionResetError):
                return

    started = time.monotonic()
    deadline = (started + config.duration
                if config.duration is not None else None)
    per_publisher = config.publishers / config.rate
    published = 0

    async def publish(worker: int, client: ServeClient) -> None:
        nonlocal published
        next_at = time.monotonic() + worker * (1.0 / config.rate)
        for k in range(worker, len(points), config.publishers):
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                return
            if next_at > now:
                await asyncio.sleep(next_at - now)
            next_at += per_publisher
            await client.publish(points[k], sent_at=time.monotonic(),
                                 event_id=k)
            published += 1

    publishers = [await ServeClient.connect(config.host, config.port)
                  for _ in range(config.publishers)]
    churn_task = (asyncio.ensure_future(churn())
                  if config.churn_interval > 0 else None)
    try:
        await asyncio.gather(*(publish(w, c)
                               for w, c in enumerate(publishers)))
        stats = await _drain(publishers[0], config.drain_timeout)
    finally:
        churning.set()
        if churn_task is not None:
            churn_task.cancel()
        stop_consuming.set()
        await asyncio.gather(*consumers, return_exceptions=True)
        for client in clients + publishers:
            await client.close()
    wall = time.monotonic() - started

    samples = np.asarray(latencies, dtype=float)
    quantile = (lambda q: float(np.percentile(samples, q))
                if samples.size else 0.0)
    return LoadGenReport(
        subscribers=config.subscribers,
        events_published=published,
        events_received=int(received.sum()),
        latency_p50=quantile(50) if samples.size else 0.0,
        latency_p95=quantile(95) if samples.size else 0.0,
        latency_p99=quantile(99) if samples.size else 0.0,
        latency_max=float(samples.max()) if samples.size else 0.0,
        latency_mean=float(samples.mean()) if samples.size else 0.0,
        delivery_rate=float(stats.get("delivery_rate", 0.0)),
        dropped_backpressure=int(stats.get("dropped_backpressure", 0)),
        reoptimizations=int(stats.get("reoptimizations", 0)),
        reopt_rejected=int(stats.get("reopt_rejected", 0)),
        reopt_migrations=int(stats.get("reopt_migrations", 0)),
        churn_flaps=churn_flaps,
        wall_seconds=wall,
        achieved_rate=published / wall if wall > 0 else 0.0,
        server_stats=stats)


async def _drain(client: ServeClient, timeout: float) -> dict[str, Any]:
    """Poll stats until the delivered count stops moving (or timeout)."""
    deadline = time.monotonic() + timeout
    stats = await client.stats()
    while time.monotonic() < deadline:
        await asyncio.sleep(0.1)
        fresh = await client.stats()
        if fresh["delivered"] == stats["delivered"]:
            return fresh
        stats = fresh
    return stats


def write_loadgen_json(path: str, report: LoadGenReport,
                       config: LoadGenConfig) -> str:
    """Write the ``BENCH_serve_*``-style payload (with provenance)."""
    from ..bench.harness import run_metadata
    payload = report.as_payload(config)
    payload["metadata"] = run_metadata()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
