"""Background re-optimization loop for the live service.

Watches churn (subscribe/unsubscribe counts since the last successful
re-optimization) and, past a threshold, re-runs a full assignment
algorithm over the live subscription set.  The heavy solve is offloaded
to a worker thread; the gateway's churn lock is held for the duration so
the active set the solver sees is the active set that gets committed.

Every candidate solution passes through :func:`repro.verify.verify_solution`
*before* it is swapped in (the ``precommit`` hook of
:meth:`~repro.dynamic.manager.DynamicPubSub.reoptimize`): a violation is
logged, counted, and the old routing table is kept — the service never
routes through an assignment that breaks the paper's invariants.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Any

from ..verify import guaranteed_checks, verify_solution
from .broker import LiveBroker

__all__ = ["ReoptimizerConfig", "Reoptimizer"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ReoptimizerConfig:
    """When and how the background loop re-optimizes."""

    churn_threshold: int = 64     #: churn events before a re-optimization
    poll_interval: float = 0.25   #: seconds between churn checks
    algorithm: str = "SLP1"       #: registered algorithm to re-run
    seed: int = 0                 #: seed for seeded algorithms
    min_active: int = 2           #: skip when fewer subscribers are active

    def __post_init__(self) -> None:
        if self.churn_threshold < 1:
            raise ValueError("churn_threshold must be at least 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.min_active < 1:
            raise ValueError("min_active must be at least 1")


class Reoptimizer:
    """The background task driving churn-triggered re-assignment."""

    def __init__(self, broker: LiveBroker, config: ReoptimizerConfig, *,
                 churn_lock: asyncio.Lock, validator: Any = None):
        self._broker = broker
        self._config = config
        self._lock = churn_lock
        self._validator = (validator if validator is not None
                           else self._invariant_validator)
        self._task: asyncio.Task | None = None
        self.runs = 0             #: committed re-optimizations
        self.rejected = 0         #: solutions vetoed by the validator
        self.migrations = 0       #: total subscribers moved by commits
        self.last_report: str | None = None  #: last violation summary

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self._config.poll_interval)
            if self.due():
                await self.reoptimize_now()

    def due(self) -> bool:
        return (self._broker.churn_since_reopt
                >= self._config.churn_threshold
                and self._broker.active_count >= self._config.min_active)

    # -- one re-optimization -------------------------------------------------

    def _invariant_validator(self, sub_problem, solution) -> bool:
        """Default gate: hold the solution to its algorithm's contract."""
        checks = guaranteed_checks(self._config.algorithm, solution)
        report = verify_solution(sub_problem, solution, checks)
        if not report.ok:
            self.last_report = report.summary()
        return report.ok

    async def reoptimize_now(self) -> dict[str, Any]:
        """Run one verified re-optimization under the churn lock."""
        config = self._config
        kwargs = ({"seed": config.seed}
                  if config.algorithm in ("SLP1", "SLP") else {})
        async with self._lock:
            info = await asyncio.to_thread(
                self._broker.reoptimize, config.algorithm,
                precommit=self._validator, **kwargs)
        if info.get("committed"):
            self.runs += 1
            self.migrations += int(info.get("migrations", 0))
            logger.info("re-optimization #%d: %d active, %d migrations",
                        self.runs, info.get("active", 0),
                        info.get("migrations", 0))
        elif info.get("active"):
            self.rejected += 1
            # Wait for fresh churn before retrying rather than re-solving
            # (and re-rejecting) the same instance every poll tick.
            self._broker.churn_since_reopt = 0
            logger.warning(
                "re-optimization rejected by invariant verification "
                "(keeping routing table v%d): %s",
                self._broker.routing.version, self.last_report or "vetoed")
        return info

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "reoptimizations": self.runs,
            "reopt_rejected": self.rejected,
            "reopt_migrations": self.migrations,
            "churn_threshold": self._config.churn_threshold,
            "algorithm": self._config.algorithm,
        }
