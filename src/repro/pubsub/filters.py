"""Broker filters: unions of at most ``alpha`` rectangles.

A filter summarizes everything beneath a broker in the dissemination tree.
An event is forwarded from a broker's parent iff the event lies inside the
filter, so the *measure* of the filter is the broker's expected inbound
bandwidth (paper Section II).

Key operations:

* point / subscription containment (subscription coverage means the
  subscription box lies inside **one** of the filter's rectangles — this is
  the paper's "cover" notion from Section IV-A.1);
* union containment (`covers_rect`) for verifying the *nesting condition*
  between a parent and child filter, which is containment of point sets,
  not per-rectangle containment;
* exact measure under the event distribution.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..geometry import Rect, RectSet, union_volume

__all__ = ["Filter", "EMPTY_FILTER_DIM_ERROR"]

EMPTY_FILTER_DIM_ERROR = "an empty filter needs an explicit dimension"


class Filter:
    """An immutable union of rectangles acting as a broker's filter."""

    __slots__ = ("_rects",)

    def __init__(self, rects: RectSet):
        self._rects = rects

    @classmethod
    def empty(cls, dim: int) -> "Filter":
        """The filter matching nothing (a broker serving no subscribers)."""
        return cls(RectSet.empty(dim))

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "Filter":
        rect_list = list(rects)
        if not rect_list:
            raise ValueError(EMPTY_FILTER_DIM_ERROR)
        return cls(RectSet.from_rects(rect_list))

    @property
    def rects(self) -> RectSet:
        return self._rects

    @property
    def complexity(self) -> int:
        """Number of rectangles (the paper's filter complexity)."""
        return len(self._rects)

    @property
    def dim(self) -> int:
        return self._rects.dim

    def is_empty(self) -> bool:
        return len(self._rects) == 0

    def contains_point(self, point: np.ndarray) -> bool:
        if self.is_empty():
            return False
        return bool(self._rects.contains_points(
            np.asarray(point, dtype=float)[None, :]).any())

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Mask over event points matched by the filter (vectorized)."""
        pts = np.asarray(points, dtype=float)
        if self.is_empty():
            return np.zeros(pts.shape[0], dtype=bool)
        return self._rects.contains_points(pts).any(axis=0)

    def contains_subscription(self, subscription: Rect) -> bool:
        """Paper 'cover': the subscription lies inside one rectangle."""
        if self.is_empty():
            return False
        return bool(self._rects.contains_rect(subscription).any())

    def covering_mask(self, subscriptions: RectSet) -> np.ndarray:
        """Mask over subscriptions covered by the filter (single-rect containment)."""
        if self.is_empty():
            return np.zeros(len(subscriptions), dtype=bool)
        return self._rects.containment_matrix(subscriptions).any(axis=0)

    def covers_rect(self, rect: Rect) -> bool:
        """Union containment: is every point of ``rect`` inside the filter?

        Exact, by coordinate compression restricted to ``rect``: clip the
        filter's rectangles to ``rect`` and check the clipped union volume
        equals the volume of ``rect``.  Degenerate boxes are handled by
        comparing against the (possibly zero) target volume with a
        per-axis compressed check.
        """
        if self.is_empty():
            return False
        # Quick accept: one rectangle alone contains it.
        if bool(self._rects.contains_rect(rect).any()):
            return True
        clipped_lo = np.maximum(self._rects.lo, rect.lo)
        clipped_hi = np.minimum(self._rects.hi, rect.hi)
        keep = np.all(clipped_lo <= clipped_hi, axis=1)
        if not keep.any():
            return False
        clipped = RectSet(clipped_lo[keep], clipped_hi[keep], validate=False)
        target = rect.volume()
        if target == 0.0:
            # Degenerate target: project out the flat axes (the clipped
            # boxes already span the flat coordinates) and compare union
            # volumes in the remaining subspace — exact in any dimension.
            full_axes = np.flatnonzero(rect.hi > rect.lo)
            if len(full_axes) == 0:
                return True  # a point; some clipped box contains it
            projected = RectSet(clipped.lo[:, full_axes],
                                clipped.hi[:, full_axes], validate=False)
            sub_target = float(np.prod(rect.hi[full_axes] - rect.lo[full_axes]))
            return union_volume(projected) >= sub_target * (1.0 - 1e-12)
        return union_volume(clipped) >= target * (1.0 - 1e-12)

    def covers_filter(self, other: "Filter") -> bool:
        """Nesting check: does this filter contain ``other`` as a point set?"""
        return all(self.covers_rect(rect) for rect in other.rects)

    def measure(self) -> float:
        """Uniform-event measure: exact Lebesgue volume of the union."""
        if self.is_empty():
            return 0.0
        return union_volume(self._rects)

    def expand(self, eps: float) -> "Filter":
        """The paper's epsilon-expansion ``(1 + eps) phi`` of the filter."""
        return Filter(self._rects.expand(eps))

    def merged_with(self, rect: Rect) -> "Filter":
        """A new filter with one more rectangle (no complexity enforcement)."""
        addition = RectSet(rect.lo[None, :], rect.hi[None, :], validate=False)
        if self.is_empty():
            return Filter(addition)
        return Filter(self._rects.concat(addition))

    def __repr__(self) -> str:
        return f"Filter(complexity={self.complexity}, dim={self._rects.dim})"
