"""End-to-end dissemination simulation.

The analytic bandwidth metric assumes ``Q(B_i) = measure(f_i)``; this
module *verifies* that story by actually pushing sampled events through
the broker tree:

1. an event enters a broker iff it lies inside the broker's filter and
   entered the broker's parent (the root's children receive everything the
   publisher emits that matches their filter);
2. a leaf broker delivers the event to each assigned subscriber whose
   subscription contains it.

The result reports empirical per-broker inbound traffic, per-subscriber
deliveries, and — crucially — *missed deliveries*: events a subscriber
should have received but whose path was blocked by a filter.  A correct
solution (nesting condition satisfied) has zero misses; the test suite
asserts this invariant for every algorithm.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..geometry import RectSet
from ..network.tree import PUBLISHER, BrokerTree
from .events import EventDistribution
from .filters import Filter
from .matching import Matcher, best_matcher

__all__ = ["SimulationResult", "sample_event_stream", "simulate_dissemination",
           "root_first_order", "SIMULATION_SCHEMA_VERSION"]

#: Schema version stamped into JSON exports (matches the runtime's), so
#: serve/runtime/bench outputs are uniformly parseable.
SIMULATION_SCHEMA_VERSION = 1


def sample_event_stream(distribution: EventDistribution,
                        rng: np.random.Generator,
                        num_events: int,
                        chunk_size: int = 512) -> np.ndarray:
    """Sample ``num_events`` event points with the simulator's chunking.

    Drawing in ``chunk_size`` batches is how :func:`simulate_dissemination`
    consumes the RNG; sampling through this helper with the same generator
    state therefore yields the *identical* point sequence, which is what
    lets the discrete-event runtime (:mod:`repro.runtime`) reproduce the
    batch simulation exactly on a shared seed.
    """
    if num_events < 0:
        raise ValueError("num_events must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    if num_events == 0:
        # Delegate the empty draw to the distribution so the dtype (and
        # the untouched generator state) match the chunked path exactly;
        # a bare np.empty would pin float64 even for distributions that
        # sample another dtype.
        return distribution.sample(rng, 0)
    chunks = []
    remaining = num_events
    while remaining > 0:
        batch = min(chunk_size, remaining)
        remaining -= batch
        chunks.append(distribution.sample(rng, batch))
    return np.concatenate(chunks, axis=0)


@dataclass(frozen=True)
class SimulationResult:
    """What happened when ``num_events`` sampled events were published."""

    num_events: int
    #: events that entered each tree node (index = node id; publisher sees all)
    node_entries: np.ndarray
    #: deliveries per subscriber
    deliveries: np.ndarray
    #: events each subscriber matched but did not receive (0 iff nesting holds)
    missed: np.ndarray
    #: per-delivery path latency sum and count, for mean delivery latency
    total_delivery_latency: float

    @property
    def total_broker_entries(self) -> int:
        """Total inbound broker traffic (excludes the publisher itself)."""
        return int(self.node_entries[1:].sum())

    def empirical_bandwidth(self, domain_measure: float) -> float:
        """Estimate of ``Q(T)``: traffic fraction scaled to the domain measure.

        Comparable to the analytic ``sum_i measure(f_i)`` because each
        broker's entry fraction estimates ``measure(f_i) / measure(E)``.
        """
        if self.num_events == 0:
            return 0.0
        return self.total_broker_entries / self.num_events * domain_measure

    @property
    def mean_delivery_latency(self) -> float:
        delivered = self.deliveries.sum()
        if delivered == 0:
            return 0.0
        return self.total_delivery_latency / float(delivered)

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of matched events (1.0 when nothing matched).

        Guarded against the empty cases: zero events, zero subscribers,
        or zero matching events all report a perfect rate rather than
        dividing by zero.
        """
        expected = int(self.deliveries.sum()) + int(self.missed.sum())
        if expected == 0:
            return 1.0
        return float(self.deliveries.sum()) / expected

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export sharing the bench payloads' schema fields."""
        return {
            "schema_version": SIMULATION_SCHEMA_VERSION,
            "kind": "simulation_result",
            "num_events": self.num_events,
            "node_entries": self.node_entries.tolist(),
            "deliveries": self.deliveries.tolist(),
            "missed": self.missed.tolist(),
            "total_delivery_latency": self.total_delivery_latency,
            "total_broker_entries": self.total_broker_entries,
            "delivery_rate": self.delivery_rate,
        }

    def dump(self, path: str, *,
             params: dict[str, Any] | None = None) -> None:
        """Write :meth:`to_dict` plus the git/host provenance block.

        ``params`` (e.g. the CLI's ``--chunk-size``) is stamped into the
        payload so the provenance records how the run was produced.
        """
        from ..bench.harness import run_metadata  # lazy: avoids cycles
        payload = self.to_dict()
        if params:
            payload["params"] = dict(params)
        payload["metadata"] = run_metadata()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


def simulate_dissemination(tree: BrokerTree,
                           filters: dict[int, Filter],
                           assignment: np.ndarray,
                           subscriptions: RectSet,
                           distribution: EventDistribution,
                           rng: np.random.Generator,
                           num_events: int = 2000,
                           chunk_size: int = 512,
                           subscriber_points: np.ndarray | None = None,
                           matcher: Matcher | None = None) -> SimulationResult:
    """Publish sampled events and measure traffic, deliveries, and misses.

    The hot path is fully batched: each chunk's per-node entry masks come
    from one stacked ``RectSet.contains_points`` call over every filter
    rectangle (a segmented ``logical_or`` recovers per-filter masks), and
    per-subscriber deliveries come from one ``matcher.match_points``
    matrix instead of a brute-force scan per leaf.  Results are
    bit-identical for any matcher that agrees with the brute-force
    oracle and for any ``chunk_size`` (given a chunk-stable event
    distribution): all counts are integer sums over the same boolean
    matrices, and the latency total is computed once from the final
    delivery counts.

    Parameters
    ----------
    filters:
        Filter per broker node id (every non-publisher node must appear).
    assignment:
        ``assignment[j]`` = leaf *node id* serving subscriber ``j``.
    subscriber_points:
        Optional network positions of subscribers; when given, delivery
        latency includes the last hop from the leaf to the subscriber.
    matcher:
        Matching index used for delivery checks; defaults to
        :func:`~repro.pubsub.matching.best_matcher` over the event
        domain.
    """
    num_nodes = tree.num_nodes
    for node in range(1, num_nodes):
        if node not in filters:
            raise ValueError(f"missing filter for broker node {node}")

    num_subscribers = len(subscriptions)
    assignment = np.asarray(assignment, dtype=int)
    if assignment.shape != (num_subscribers,):
        raise ValueError("assignment must map every subscriber to a leaf node")

    # Group subscribers by their leaf for delivery checks.
    subs_by_leaf: dict[int, np.ndarray] = {}
    for leaf in tree.leaves:
        members = np.flatnonzero(assignment == leaf)
        if len(members):
            subs_by_leaf[int(leaf)] = members

    # Per-subscriber full path latency (publisher -> leaf -> subscriber) is
    # fixed by the assignment; computed once.
    node_entries = np.zeros(num_nodes, dtype=np.int64)
    deliveries = np.zeros(num_subscribers, dtype=np.int64)
    missed = np.zeros(num_subscribers, dtype=np.int64)
    total_latency = 0.0

    order = root_first_order(tree)
    if subs_by_leaf and matcher is None:
        matcher = best_matcher(subscriptions, distribution.domain)

    # Stack every (non-empty) filter's rectangles into one RectSet so a
    # chunk's containment against *all* filters is a single matrix op; a
    # segmented logical_or then recovers each filter's any-rect mask.
    stack_nodes = [node for node in order[1:] if not filters[node].is_empty()]
    stacked: RectSet | None = None
    if stack_nodes:
        stacked = RectSet(
            np.concatenate([filters[n].rects.lo for n in stack_nodes]),
            np.concatenate([filters[n].rects.hi for n in stack_nodes]),
            validate=False)
        starts = np.cumsum([0] + [len(filters[n].rects)
                                  for n in stack_nodes])[:-1]
        stack_row = {node: i for i, node in enumerate(stack_nodes)}

    remaining = num_events
    while remaining > 0:
        batch = min(chunk_size, remaining)
        remaining -= batch
        events = distribution.sample(rng, batch)

        entered = np.zeros((num_nodes, batch), dtype=bool)
        entered[PUBLISHER] = True
        if stacked is not None:
            in_filter = np.logical_or.reduceat(
                stacked.contains_points(events), starts, axis=0)
            for node in order[1:]:
                row = stack_row.get(node)
                if row is None:
                    continue  # empty filter: the node never enters
                parent = int(tree.parents[node])
                entered[node] = entered[parent] & in_filter[row]
        node_entries += entered.sum(axis=1)

        if subs_by_leaf:
            match = matcher.match_points(events)  # (num_subscribers, batch)
            for leaf, members in subs_by_leaf.items():
                matches = match[members]
                delivered = matches & entered[leaf][None, :]
                deliveries[members] += delivered.sum(axis=1)
                missed[members] += (matches
                                    & ~entered[leaf][None, :]).sum(axis=1)
        # Matching events assigned to leaves their event never reached are
        # counted above; subscribers of *unassigned* leaves can't miss.

    # Delivery latency: every delivered event takes the fixed assigned path
    # publisher -> leaf (-> subscriber, when positions are known).
    if num_subscribers:
        path_latency = tree.down_latency[assignment].astype(float)
        if subscriber_points is not None:
            pts = np.asarray(subscriber_points, dtype=float)
            last_hop = np.linalg.norm(tree.positions[assignment] - pts, axis=1)
            path_latency = path_latency + last_hop
        total_latency = float((deliveries * path_latency).sum())

    return SimulationResult(num_events=num_events,
                            node_entries=node_entries,
                            deliveries=deliveries,
                            missed=missed,
                            total_delivery_latency=total_latency)


def root_first_order(tree: BrokerTree) -> list[int]:
    """Node ids in a parent-before-child order (publisher first)."""
    order = [PUBLISHER]
    stack = [PUBLISHER]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            order.append(child)
            stack.append(child)
    return order
