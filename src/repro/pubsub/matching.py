"""Event-to-subscription matching.

Leaf brokers must find, for each incoming event, the assigned subscribers
whose subscription boxes contain the event point.  Two matchers:

* :class:`BruteForceMatcher` — vectorized scan of every subscription;
  the oracle used in tests.
* :class:`GridMatcher` — a uniform grid over the event domain; each cell
  stores the subscriptions intersecting it, so a lookup only scans one
  cell's list.  This is the standard content-based matching index for
  rectangle subscriptions and keeps the dissemination simulator fast.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet

__all__ = ["BruteForceMatcher", "GridMatcher"]


class BruteForceMatcher:
    """Match by scanning all subscriptions (exact, O(n) per event)."""

    def __init__(self, subscriptions: RectSet):
        self._subs = subscriptions

    def match_point(self, point: np.ndarray) -> np.ndarray:
        """Ids of subscriptions containing the event point."""
        mask = self._subs.contains_points(
            np.asarray(point, dtype=float)[None, :])[:, 0]
        return np.flatnonzero(mask)

    def match_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(num_subscriptions, num_events)``."""
        return self._subs.contains_points(points)


class GridMatcher:
    """Match via a uniform grid index over the event domain.

    Parameters
    ----------
    subscriptions:
        The subscription boxes to index.
    domain:
        The event domain; events outside it still match correctly (they
        fall into clamped border cells).
    resolution:
        Number of grid cells per axis.
    """

    def __init__(self, subscriptions: RectSet, domain: Rect, resolution: int = 16):
        if resolution < 1:
            raise ValueError("resolution must be at least 1")
        self._subs = subscriptions
        self._domain = domain
        self._resolution = resolution
        self._dim = domain.dim
        widths = domain.widths
        if np.any(widths <= 0):
            raise ValueError("domain must have positive extent on every axis")
        self._cell_size = widths / resolution
        # Row-major strides so batched lookups can flatten cell coords
        # with one matrix product (matches _flatten's digit order).
        self._strides = resolution ** np.arange(self._dim - 1, -1, -1)

        # cells[flat_index] -> array of subscription ids intersecting the cell
        buckets: dict[int, list[int]] = {}
        lo_cells = self._cell_coords(subscriptions.lo)
        hi_cells = self._cell_coords(subscriptions.hi)
        for sub_id in range(len(subscriptions)):
            ranges = [range(lo_cells[sub_id, axis], hi_cells[sub_id, axis] + 1)
                      for axis in range(self._dim)]
            for cell in np.ndindex(*[len(r) for r in ranges]):
                coords = tuple(ranges[axis][cell[axis]] for axis in range(self._dim))
                flat = self._flatten(coords)
                buckets.setdefault(flat, []).append(sub_id)
        self._buckets = {k: np.array(v, dtype=int) for k, v in buckets.items()}

    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        rel = (np.asarray(points, dtype=float) - self._domain.lo) / self._cell_size
        return np.clip(rel.astype(int), 0, self._resolution - 1)

    def _flatten(self, coords: tuple[int, ...]) -> int:
        flat = 0
        for c in coords:
            flat = flat * self._resolution + int(c)
        return flat

    def match_point(self, point: np.ndarray) -> np.ndarray:
        cell = self._cell_coords(np.asarray(point, dtype=float)[None, :])[0]
        bucket = self._buckets.get(self._flatten(tuple(cell)))
        if bucket is None:
            return np.empty(0, dtype=int)
        candidates = self._subs.take(bucket)
        mask = candidates.contains_points(
            np.asarray(point, dtype=float)[None, :])[:, 0]
        return bucket[mask]

    def match_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(num_subscriptions, num_events)``.

        Events are grouped by grid cell, so each occupied cell costs one
        batched containment check over its bucket instead of a Python
        loop over individual events.
        """
        pts = np.asarray(points, dtype=float)
        out = np.zeros((len(self._subs), pts.shape[0]), dtype=bool)
        if pts.shape[0] == 0 or len(self._subs) == 0:
            return out
        flat = self._cell_coords(pts) @ self._strides
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_flat[1:] != sorted_flat[:-1]])
        for start, stop in zip(boundaries,
                               np.r_[boundaries[1:], len(sorted_flat)]):
            bucket = self._buckets.get(int(sorted_flat[start]))
            if bucket is None:
                continue
            cell_events = order[start:stop]
            mask = self._subs.take(bucket).contains_points(pts[cell_events])
            out[np.ix_(bucket, cell_events)] = mask
        return out
