"""Event-to-subscription matching.

Leaf brokers must find, for each incoming event, the assigned subscribers
whose subscription boxes contain the event point.  Three matchers share
the :class:`Matcher` protocol (``match_point`` for one event,
``match_points`` for a batched event column):

* :class:`BruteForceMatcher` — vectorized scan of every subscription;
  the oracle used in tests.
* :class:`GridMatcher` — a uniform grid over the event domain; each cell
  stores the subscriptions intersecting it, so a lookup only scans one
  cell's list.  This is the standard content-based matching index for
  rectangle subscriptions and keeps the dissemination simulator fast.
* :class:`~repro.pubsub.rtree.RTreeMatcher` — an STR-packed R-tree that
  stays balanced under skewed subscription populations.

:func:`best_matcher` picks among them with a deterministic heuristic, so
the batch event plane (simulator, runtime epoch mode, serve broker) can
ask for "the right index" instead of hard-coding one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from ..geometry import Rect, RectSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .rtree import RTreeMatcher  # noqa: F401

__all__ = ["Matcher", "BruteForceMatcher", "GridMatcher", "best_matcher"]


@runtime_checkable
class Matcher(Protocol):
    """The matching-index contract shared by all event-plane consumers.

    Implementations must agree with :class:`BruteForceMatcher` exactly
    (the differential oracle in :mod:`repro.verify.oracles` enforces
    this), including on boundary-touching points, empty subscription
    sets, and zero-event batches.
    """

    def match_point(self, point: np.ndarray) -> np.ndarray:
        """Ids of subscriptions containing the event point (sorted)."""
        ...

    def match_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(num_subscriptions, num_events)``."""
        ...


class BruteForceMatcher:
    """Match by scanning all subscriptions (exact, O(n) per event)."""

    def __init__(self, subscriptions: RectSet):
        self._subs = subscriptions

    def match_point(self, point: np.ndarray) -> np.ndarray:
        """Ids of subscriptions containing the event point."""
        mask = self._subs.contains_points(
            np.asarray(point, dtype=float)[None, :])[:, 0]
        return np.flatnonzero(mask)

    def match_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(num_subscriptions, num_events)``."""
        return self._subs.contains_points(points)


class GridMatcher:
    """Match via a uniform grid index over the event domain.

    Parameters
    ----------
    subscriptions:
        The subscription boxes to index.
    domain:
        The event domain; events outside it still match correctly (they
        fall into clamped border cells).
    resolution:
        Number of grid cells per axis.
    """

    def __init__(self, subscriptions: RectSet, domain: Rect, resolution: int = 16):
        if resolution < 1:
            raise ValueError("resolution must be at least 1")
        self._subs = subscriptions
        self._domain = domain
        self._resolution = resolution
        self._dim = domain.dim
        widths = domain.widths
        if np.any(widths <= 0):
            raise ValueError("domain must have positive extent on every axis")
        self._cell_size = widths / resolution
        # Row-major strides so batched lookups can flatten cell coords
        # with one matrix product (matches _flatten's digit order).
        self._strides = resolution ** np.arange(self._dim - 1, -1, -1)

        # cells[flat_index] -> array of subscription ids intersecting the cell
        buckets: dict[int, list[int]] = {}
        lo_cells = self._cell_coords(subscriptions.lo)
        hi_cells = self._cell_coords(subscriptions.hi)
        for sub_id in range(len(subscriptions)):
            ranges = [range(lo_cells[sub_id, axis], hi_cells[sub_id, axis] + 1)
                      for axis in range(self._dim)]
            for cell in np.ndindex(*[len(r) for r in ranges]):
                coords = tuple(ranges[axis][cell[axis]] for axis in range(self._dim))
                flat = self._flatten(coords)
                buckets.setdefault(flat, []).append(sub_id)
        self._buckets = {k: np.array(v, dtype=int) for k, v in buckets.items()}

    def _cell_coords(self, points: np.ndarray) -> np.ndarray:
        rel = (np.asarray(points, dtype=float) - self._domain.lo) / self._cell_size
        return np.clip(rel.astype(int), 0, self._resolution - 1)

    def _flatten(self, coords: tuple[int, ...]) -> int:
        flat = 0
        for c in coords:
            flat = flat * self._resolution + int(c)
        return flat

    def match_point(self, point: np.ndarray) -> np.ndarray:
        cell = self._cell_coords(np.asarray(point, dtype=float)[None, :])[0]
        bucket = self._buckets.get(self._flatten(tuple(cell)))
        if bucket is None:
            return np.empty(0, dtype=int)
        candidates = self._subs.take(bucket)
        mask = candidates.contains_points(
            np.asarray(point, dtype=float)[None, :])[:, 0]
        return bucket[mask]

    def match_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(num_subscriptions, num_events)``.

        Events are grouped by grid cell, so each occupied cell costs one
        batched containment check over its bucket instead of a Python
        loop over individual events.
        """
        pts = np.asarray(points, dtype=float)
        out = np.zeros((len(self._subs), pts.shape[0]), dtype=bool)
        if pts.shape[0] == 0 or len(self._subs) == 0:
            return out
        flat = self._cell_coords(pts) @ self._strides
        order = np.argsort(flat, kind="stable")
        sorted_flat = flat[order]
        boundaries = np.flatnonzero(
            np.r_[True, sorted_flat[1:] != sorted_flat[:-1]])
        for start, stop in zip(boundaries,
                               np.r_[boundaries[1:], len(sorted_flat)]):
            bucket = self._buckets.get(int(sorted_flat[start]))
            if bucket is None:
                continue
            cell_events = order[start:stop]
            mask = self._subs.take(bucket).contains_points(pts[cell_events])
            out[np.ix_(bucket, cell_events)] = mask
        return out


def best_matcher(subscriptions: RectSet, domain: Rect | None = None, *,
                 resolution: int = 16, brute_force_max: int = 64,
                 grid_cell_budget: float = 8.0,
                 skew_cap: float = 0.25) -> Matcher:
    """Pick the cheapest matching index for a subscription population.

    The heuristic is deterministic and needs only O(n) vectorized work:

    1. tiny populations (``n <= brute_force_max``) — a brute-force scan
       beats any index once build cost is counted;
    2. no usable event domain (``domain`` missing and the subscriptions'
       minimum enclosing box is degenerate on some axis) — the grid
       cannot be built, fall back to the R-tree;
    3. fat subscriptions (average grid-cell span above
       ``grid_cell_budget`` cells) — every bucket would hold nearly the
       whole population, so the grid degenerates to brute force with
       extra memory; use the R-tree;
    4. hot-spot skew (more than ``skew_cap`` of all subscription centers
       in one cell) — one bucket dominates; STR leaves stay balanced;
    5. otherwise the uniform grid wins (its cell-grouped
       ``match_points`` is the fastest batched probe we have).
    """
    from .rtree import RTreeMatcher  # local: avoids an import cycle

    if resolution < 1:
        raise ValueError("resolution must be at least 1")
    n = len(subscriptions)
    if n <= brute_force_max:
        return BruteForceMatcher(subscriptions)
    if domain is None:
        meb = subscriptions.meb()
        domain = meb if np.all(meb.widths > 0) else None
    elif np.any(domain.widths <= 0):
        domain = None
    if domain is None:
        return RTreeMatcher(subscriptions)

    cell = domain.widths / resolution
    spans = (subscriptions.hi - subscriptions.lo) / cell
    cells_per_sub = np.prod(np.minimum(np.floor(spans) + 2, resolution),
                            axis=1)
    if float(cells_per_sub.mean()) > grid_cell_budget:
        return RTreeMatcher(subscriptions)

    rel = (subscriptions.centers() - domain.lo) / cell
    coords = np.clip(rel.astype(int), 0, resolution - 1)
    strides = resolution ** np.arange(domain.dim - 1, -1, -1)
    _, counts = np.unique(coords @ strides, return_counts=True)
    if int(counts.max()) > skew_cap * n:
        return RTreeMatcher(subscriptions)
    return GridMatcher(subscriptions, domain, resolution=resolution)
