"""Event distributions over the event space ``E``.

The paper's bandwidth objective is ``Q(B_i) = integral over f_i of pi(e)``
for event density ``pi``; uniform events give ``Q(B_i) = Vol(f_i)``
(Section II).  Two distributions are provided:

* :class:`UniformEvents` — uniform over a domain box; filter measure is
  plain volume (the paper's default).
* :class:`PiecewiseUniformEvents` — a product-form density that is
  piecewise-constant per axis, used to exercise the paper's "extended to a
  non-uniform event distribution" remark (hot spots in event space).

Both expose ``sample`` (for the dissemination simulator) and
``filter_measure`` (for the analytic bandwidth metric).  Measures are
*unnormalized* for the uniform case — matching the paper, which reports
raw volumes — and normalized probability masses scaled by the domain
volume for the non-uniform case, so numbers stay comparable.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet, union_measure, union_volume

__all__ = ["EventDistribution", "UniformEvents", "PiecewiseUniformEvents"]


class EventDistribution:
    """Interface: something events can be drawn from and filters measured under."""

    @property
    def domain(self) -> Rect:
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` event points, shape ``(count, d)``."""
        raise NotImplementedError

    def filter_measure(self, rects: RectSet) -> float:
        """Expected inbound bandwidth of a filter made of these rectangles."""
        raise NotImplementedError


class UniformEvents(EventDistribution):
    """Events uniform over a domain box; measure = union volume."""

    def __init__(self, domain: Rect):
        if domain.volume() <= 0:
            raise ValueError("event domain must have positive volume")
        self._domain = domain

    @property
    def domain(self) -> Rect:
        return self._domain

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self._domain.lo, self._domain.hi,
                           size=(count, self._domain.dim))

    def filter_measure(self, rects: RectSet) -> float:
        if len(rects) == 0:
            return 0.0
        return union_volume(rects)


class PiecewiseUniformEvents(EventDistribution):
    """A product density, piecewise-constant along each axis.

    Parameters
    ----------
    breakpoints:
        Per axis, an increasing array of ``k+1`` coordinates delimiting
        ``k`` pieces; the first/last entries bound the domain.
    weights:
        Per axis, ``k`` non-negative relative weights; normalized to a
        density internally.
    """

    def __init__(self, breakpoints: list[np.ndarray], weights: list[np.ndarray]):
        if len(breakpoints) != len(weights) or not breakpoints:
            raise ValueError("need aligned, non-empty breakpoints and weights")
        self._breaks: list[np.ndarray] = []
        self._cdf: list[np.ndarray] = []
        for axis, (bp, w) in enumerate(zip(breakpoints, weights)):
            bp_arr = np.asarray(bp, dtype=float)
            w_arr = np.asarray(w, dtype=float)
            if bp_arr.ndim != 1 or len(bp_arr) < 2 or np.any(np.diff(bp_arr) <= 0):
                raise ValueError(f"axis {axis}: breakpoints must strictly increase")
            if w_arr.shape != (len(bp_arr) - 1,) or np.any(w_arr < 0) or w_arr.sum() <= 0:
                raise ValueError(f"axis {axis}: bad weights")
            mass = w_arr * np.diff(bp_arr)
            cdf = np.concatenate([[0.0], np.cumsum(mass / mass.sum())])
            cdf[-1] = 1.0
            self._breaks.append(bp_arr)
            self._cdf.append(cdf)
        lo = np.array([b[0] for b in self._breaks])
        hi = np.array([b[-1] for b in self._breaks])
        self._domain = Rect(lo, hi)
        self._domain_volume = self._domain.volume()

    @property
    def domain(self) -> Rect:
        return self._domain

    def _axis_mass(self, axis: int, a: float, b: float) -> float:
        """Probability mass of [a, b] along one axis (clipped to the domain)."""
        cdf = self._cdf[axis]
        breaks = self._breaks[axis]

        def cdf_at(x: float) -> float:
            x = min(max(x, breaks[0]), breaks[-1])
            k = int(np.searchsorted(breaks, x, side="right")) - 1
            k = min(k, len(breaks) - 2)
            span = breaks[k + 1] - breaks[k]
            frac = (x - breaks[k]) / span if span > 0 else 0.0
            return float(cdf[k] + frac * (cdf[k + 1] - cdf[k]))

        return max(cdf_at(b) - cdf_at(a), 0.0)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        points = np.empty((count, self._domain.dim))
        for axis in range(self._domain.dim):
            u = rng.random(count)
            cdf = self._cdf[axis]
            breaks = self._breaks[axis]
            piece = np.clip(np.searchsorted(cdf, u, side="right") - 1,
                            0, len(breaks) - 2)
            gap = cdf[piece + 1] - cdf[piece]
            frac = np.where(gap > 0, (u - cdf[piece]) / np.where(gap > 0, gap, 1.0), 0.0)
            points[:, axis] = breaks[piece] + frac * (breaks[piece + 1] - breaks[piece])
        return points

    def filter_measure(self, rects: RectSet) -> float:
        """Probability mass of the union, scaled by the domain volume.

        The scaling keeps non-uniform bandwidths on the same footing as the
        uniform case (where a filter covering the whole domain would report
        the domain volume).
        """
        if len(rects) == 0:
            return 0.0
        mass = union_measure(rects, self._axis_mass)
        return mass * self._domain_volume
