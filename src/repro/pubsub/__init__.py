"""Pub/sub substrate: filters, event distributions, matching, simulation."""

from .events import EventDistribution, PiecewiseUniformEvents, UniformEvents
from .filters import Filter
from .matching import BruteForceMatcher, GridMatcher
from .rtree import RTreeMatcher
from .simulator import (SimulationResult, sample_event_stream,
                        simulate_dissemination)

__all__ = [
    "Filter",
    "EventDistribution",
    "UniformEvents",
    "PiecewiseUniformEvents",
    "BruteForceMatcher",
    "GridMatcher",
    "RTreeMatcher",
    "SimulationResult",
    "sample_event_stream",
    "simulate_dissemination",
]
