"""Pub/sub substrate: filters, event distributions, matching, simulation."""

from .events import EventDistribution, PiecewiseUniformEvents, UniformEvents
from .filters import Filter
from .matching import BruteForceMatcher, GridMatcher, Matcher, best_matcher
from .rtree import RTreeMatcher
from .simulator import (SimulationResult, root_first_order,
                        sample_event_stream, simulate_dissemination)

__all__ = [
    "Filter",
    "EventDistribution",
    "UniformEvents",
    "PiecewiseUniformEvents",
    "Matcher",
    "BruteForceMatcher",
    "GridMatcher",
    "RTreeMatcher",
    "best_matcher",
    "SimulationResult",
    "root_first_order",
    "sample_event_stream",
    "simulate_dissemination",
]
