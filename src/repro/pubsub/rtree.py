"""An STR-packed R-tree over subscription rectangles.

The paper leans on R-tree machinery throughout — greedy assignment uses
R-tree insertion costs, and with filter complexity alpha = 1 the filter
hierarchy *is* a bounding-box hierarchy "like an R-tree" (Section II).
This module provides the real data structure as a matching index: a
static R-tree bulk-loaded with the Sort-Tile-Recursive (STR) algorithm,
answering point (event) and box (overlap) queries.

Compared with :class:`~repro.pubsub.matching.GridMatcher`, the R-tree
adapts to skew: hot-spot workloads with tiny subscriptions in a few grid
cells degrade a uniform grid, while STR leaves stay balanced (each holds
about ``leaf_capacity`` rectangles).
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import RectSet

__all__ = ["RTreeMatcher"]


class _Node:
    __slots__ = ("lo", "hi", "children", "entries")

    def __init__(self, lo: np.ndarray, hi: np.ndarray,
                 children: list["_Node"] | None,
                 entries: np.ndarray | None):
        self.lo = lo
        self.hi = hi
        self.children = children   # internal nodes
        self.entries = entries     # leaf nodes: subscription ids


def _str_tile(ids: np.ndarray, centers: np.ndarray, capacity: int,
              axis: int, dim: int) -> list[np.ndarray]:
    """Recursively sort-tile ``ids`` into groups of ~``capacity``."""
    if len(ids) <= capacity:
        return [ids]
    order = ids[np.argsort(centers[ids, axis], kind="stable")]
    num_groups = math.ceil(len(ids) / capacity)
    # Number of slabs along this axis (STR: the d-th root of group count).
    slabs = max(1, math.ceil(num_groups ** (1.0 / (dim - axis))))
    slab_size = math.ceil(len(ids) / slabs)
    groups: list[np.ndarray] = []
    for start in range(0, len(order), slab_size):
        slab = order[start:start + slab_size]
        if axis + 1 < dim:
            groups.extend(_str_tile(slab, centers, capacity, axis + 1, dim))
        else:
            for inner in range(0, len(slab), capacity):
                groups.append(slab[inner:inner + capacity])
    return groups


class RTreeMatcher:
    """A static R-tree index over subscription boxes (STR bulk load)."""

    def __init__(self, subscriptions: RectSet, *, leaf_capacity: int = 16,
                 fanout: int = 8):
        if leaf_capacity < 1 or fanout < 2:
            raise ValueError("need leaf_capacity >= 1 and fanout >= 2")
        self._subs = subscriptions
        self._leaf_capacity = leaf_capacity
        self._fanout = fanout
        n = len(subscriptions)
        if n == 0:
            self._root = None
            return

        centers = subscriptions.centers()
        dim = subscriptions.dim
        groups = _str_tile(np.arange(n), centers, leaf_capacity, 0, dim)
        level: list[_Node] = []
        for group in groups:
            level.append(_Node(subscriptions.lo[group].min(axis=0),
                               subscriptions.hi[group].max(axis=0),
                               None, group))
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), fanout):
                children = level[start:start + fanout]
                lo = np.min([c.lo for c in children], axis=0)
                hi = np.max([c.hi for c in children], axis=0)
                parents.append(_Node(lo, hi, children, None))
            level = parents
        self._root = level[0]

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        height, node = 0, self._root
        while node is not None:
            height += 1
            node = node.children[0] if node.children else None
        return height

    def match_point(self, point: np.ndarray) -> np.ndarray:
        """Ids of subscriptions containing the event point (sorted)."""
        p = np.asarray(point, dtype=float)
        if self._root is None:
            return np.empty(0, dtype=int)
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if np.any(p < node.lo) or np.any(p > node.hi):
                continue
            if node.children is not None:
                stack.extend(node.children)
            else:
                candidates = self._subs.take(node.entries)
                mask = candidates.contains_points(p[None, :])[:, 0]
                hits.extend(int(i) for i in node.entries[mask])
        return np.array(sorted(hits), dtype=int)

    def match_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean matrix ``(num_subscriptions, num_events)``.

        Level-synchronous batched traversal: the frontier holds
        ``(node, surviving event indices)`` pairs and each step prunes
        the whole surviving column against a node's bounding box in one
        vectorized comparison, instead of descending the tree once per
        event.  Leaf buckets are then checked with one batched
        ``contains_points`` over their surviving events.  Agrees with
        :meth:`match_point` (and hence the brute-force oracle) exactly,
        including on the empty tree, zero-event input, and
        boundary-touching points (node boxes and subscriptions are both
        closed intervals).
        """
        pts = np.asarray(points, dtype=float)
        out = np.zeros((len(self._subs), pts.shape[0]), dtype=bool)
        if self._root is None or pts.shape[0] == 0:
            return out
        frontier: list[tuple[_Node, np.ndarray]] = [
            (self._root, np.arange(pts.shape[0]))]
        while frontier:
            next_frontier: list[tuple[_Node, np.ndarray]] = []
            for node, candidates in frontier:
                sel = pts[candidates]
                inside = (np.all(sel >= node.lo, axis=1)
                          & np.all(sel <= node.hi, axis=1))
                surviving = candidates[inside]
                if surviving.size == 0:
                    continue
                if node.children is not None:
                    next_frontier.extend(
                        (child, surviving) for child in node.children)
                else:
                    mask = self._subs.take(node.entries).contains_points(
                        pts[surviving])
                    # STR leaves partition the id space, so plain
                    # assignment (no |=) is safe.
                    out[np.ix_(node.entries, surviving)] = mask
            frontier = next_frontier
        return out

    def query_box(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Ids of subscriptions intersecting the query box (sorted)."""
        q_lo = np.asarray(lo, dtype=float)
        q_hi = np.asarray(hi, dtype=float)
        if self._root is None:
            return np.empty(0, dtype=int)
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if np.any(q_lo > node.hi) or np.any(q_hi < node.lo):
                continue
            if node.children is not None:
                stack.extend(node.children)
            else:
                for i in node.entries:
                    if (np.all(self._subs.lo[i] <= q_hi)
                            and np.all(q_lo <= self._subs.hi[i])):
                        hits.append(int(i))
        return np.array(sorted(hits), dtype=int)
