"""Lightweight per-stage profiling spans for the SLP pipeline.

The paper reports SLP runtime as a first-class result (Figure 11), so the
reproduction needs to know *where* the time goes, not just the total.
This module provides named wall-clock spans with call counts, cheap
enough to leave compiled into the hot paths permanently:

* when no profiler is installed, :func:`span` returns a shared no-op
  context manager — one module-global read per call site;
* ``with profiled() as profiler:`` installs a :class:`Profiler` for the
  duration; nested ``profiled()`` blocks reuse the active profiler so a
  benchmark wrapping :func:`repro.core.slp.slp1` aggregates the stages
  of every nested helper into one flat breakdown.

The resulting payload (:meth:`Profiler.as_payload`) is JSON-ready and is
exported by ``python -m repro profile`` next to the existing runtime
telemetry, giving ``BENCH_*.json`` files a per-stage breakdown.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

__all__ = ["Profiler", "StageStat", "active_profiler", "profiled", "span"]


@dataclass
class StageStat:
    """Aggregate wall-clock and call count of one named stage."""

    name: str
    calls: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "calls": self.calls,
                "seconds": self.seconds}


class Profiler:
    """Flat per-stage wall-clock accumulator.

    Stages are identified by name only; a stage entered from several call
    sites (e.g. ``assign`` from both FilterAssign's acceptance check and
    the final SLP1 assignment) aggregates into one row, which is what the
    per-stage breakdown wants.
    """

    def __init__(self) -> None:
        self._stats: dict[str, StageStat] = {}
        self._started = time.perf_counter()

    def record(self, name: str, seconds: float) -> None:
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = StageStat(name)
        stat.calls += 1
        stat.seconds += seconds

    def stats(self) -> dict[str, StageStat]:
        return dict(self._stats)

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock since this profiler was created."""
        return time.perf_counter() - self._started

    def as_payload(self) -> dict[str, Any]:
        """JSON-ready per-stage breakdown, hottest stage first."""
        stages = sorted(self._stats.values(),
                        key=lambda s: s.seconds, reverse=True)
        return {
            "stages": [stat.as_dict() for stat in stages],
            "elapsed_seconds": self.elapsed_seconds,
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_payload(), fh, indent=2)
            fh.write("\n")

    def __repr__(self) -> str:
        return f"Profiler(stages={len(self._stats)})"


#: The installed profiler; ``None`` keeps every span a no-op.
_ACTIVE: Profiler | None = None


class _Span:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: Profiler, name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *_exc: object) -> bool:
        self._profiler.record(self._name, time.perf_counter() - self._t0)
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str) -> _Span | _NullSpan:
    """A context manager timing one stage; free when no profiler is active."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_SPAN
    return _Span(profiler, name)


def active_profiler() -> Profiler | None:
    return _ACTIVE


@contextmanager
def profiled(profiler: Profiler | None = None):
    """Install a profiler for the duration of the block.

    Nested calls (without an explicit ``profiler``) reuse the active one,
    so instrumented code can be composed freely without double-booking.
    """
    global _ACTIVE
    if profiler is None and _ACTIVE is not None:
        yield _ACTIVE
        return
    previous = _ACTIVE
    _ACTIVE = profiler or Profiler()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
