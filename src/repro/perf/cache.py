"""Memoizing geometry cache for containment matrices and volumes.

One SLP1 run recomputes the same geometry repeatedly: FilterGen builds a
containment matrix to shrink candidates, LPRelax rebuilds one over the
same sample, the coverage check, the redundancy prune, and the flow
assignment each recompute per-filter containment against the full
subscription set, and SLP1's final assignment repeats the assignment
pass verbatim.  Following the subscription-aggregation observation of
Shi et al. (arXiv:1811.07088) — containment structure is worth caching —
this module memoizes :meth:`RectSet.containment_matrix` and
:meth:`RectSet.volumes` keyed on content hashes of the operand sets.

The cache is installed scoped, not globally::

    with geometry_cache() as cache:
        solution = slp1(problem, seed=1)
    print(cache.stats())

Inside the block every ``RectSet`` geometry call is transparently
memoized (see the hook in :mod:`repro.geometry.rectangle`); nested
activations reuse the outer cache, so a benchmark harness wrapping both
the solver and ``evaluate_solution`` shares one cache across them.
Results are exact: cache hits return the identical (read-only) array the
first computation produced.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

import numpy as np

from ..geometry import rectangle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..geometry.rectangle import RectSet

__all__ = ["GeometryCache", "geometry_cache", "active_geometry_cache"]

#: Default bound on entries per table; FIFO eviction beyond it.  SLP runs
#: touch a few dozen distinct RectSets per level, so this is generous.
DEFAULT_MAX_ENTRIES = 1024


class GeometryCache:
    """Content-addressed memo tables for RectSet geometry.

    Keys are :meth:`RectSet.content_key` digests, so two distinct objects
    with equal coordinates share entries (filters rebuilt from the same
    assignment hit the cache even though they are fresh objects).
    """

    __slots__ = ("_containment", "_volumes", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._containment: dict[tuple[bytes, bytes], np.ndarray] = {}
        self._volumes: dict[bytes, np.ndarray] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def containment_matrix(self, outer: "RectSet",
                           inner: "RectSet") -> np.ndarray:
        key = (outer.content_key(), inner.content_key())
        matrix = self._containment.get(key)
        if matrix is None:
            self.misses += 1
            matrix = rectangle.RectSet._compute_containment_matrix(
                outer, inner)
            matrix.setflags(write=False)
            self._remember(self._containment, key, matrix)
        else:
            self.hits += 1
        return matrix

    def volumes(self, rects: "RectSet") -> np.ndarray:
        key = rects.content_key()
        volumes = self._volumes.get(key)
        if volumes is None:
            self.misses += 1
            volumes = rectangle.RectSet._compute_volumes(rects)
            volumes.setflags(write=False)
            self._remember(self._volumes, key, volumes)
        else:
            self.hits += 1
        return volumes

    def _remember(self, table: dict, key: Any, value: np.ndarray) -> None:
        if len(table) >= self.max_entries:
            table.pop(next(iter(table)))  # FIFO: dicts preserve insertion
        table[key] = value

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "containment_entries": len(self._containment),
            "volume_entries": len(self._volumes),
        }

    def clear(self) -> None:
        self._containment.clear()
        self._volumes.clear()

    def __repr__(self) -> str:
        return (f"GeometryCache(hits={self.hits}, misses={self.misses}, "
                f"entries={len(self._containment) + len(self._volumes)})")


def active_geometry_cache() -> GeometryCache | None:
    """The cache currently installed into the geometry layer, if any."""
    return rectangle._GEOMETRY_CACHE


@contextmanager
def geometry_cache(max_entries: int = DEFAULT_MAX_ENTRIES):
    """Install a :class:`GeometryCache` for the duration of the block.

    Nested activations reuse the already-active cache (and leave its
    lifetime to the outermost block), so library code can wrap its own
    hot section unconditionally.
    """
    existing = rectangle._GEOMETRY_CACHE
    if existing is not None:
        yield existing
        return
    cache = GeometryCache(max_entries)
    rectangle._GEOMETRY_CACHE = cache
    try:
        yield cache
    finally:
        rectangle._GEOMETRY_CACHE = None
