"""Thin fast path to HiGHS for the LPRelax relaxation.

``scipy.optimize.linprog`` spends a measurable slice of each call in
input cleaning (densify/validate/convert) before handing the model to
HiGHS.  LPRelax calls it dozens of times per SLP run with inputs that
are already in the exact shape scipy would produce, so
:func:`solve_bounded_lp` rebuilds only the pieces of the pipeline that
matter — the same CSC conversion, the same HiGHS options dictionary,
the same status/result checks — and invokes scipy's own
``_highs_wrapper`` directly.  Every array handed to the wrapper is
constructed the way ``_linprog_highs`` constructs it, so the solve is
bit-identical to ``linprog(c, A_ub=a, b_ub=b, bounds=(0, 1),
method="highs")``; the differential oracles in ``repro.verify``
confirm this empirically.

The private scipy entry points are an implementation detail of the
installed scipy; when any of them is missing the module transparently
falls back to public ``linprog``.

On top of the cold solver this module provides :class:`LPWorkspace`, a
persistent solver context for the many LPs one SLP run produces:

* **block decomposition** — the LPRelax matrix is block-diagonal
  whenever latency feasibility splits the brokers into groups serving
  disjoint subscriber sets (multi-level sub-problems do this
  routinely).  The workspace finds the connected components of the
  constraint pattern and solves each block independently — exact in
  the objective, and much cheaper because LP cost is superlinear in
  model size.  Blocks can fan out across ``perf.parallel`` workers;
* **solution memoization** — solves are content-addressed (digest of
  cost, matrix pattern/values, and rhs), so an identical model returns
  the identical result without touching HiGHS;
* **warm starts** — when the ``highspy`` bindings are installed the
  workspace keeps a persistent ``Highs`` instance per model structure
  and reuses the previous basis (simplex restarts from the old vertex
  instead of from scratch).  The container this repo targets ships
  scipy's embedded HiGHS only, so ``HIGHSPY_AVAILABLE`` is typically
  False and the workspace falls back to the bit-identical direct path;
  everything above still applies.

Install it scoped, like the geometry cache::

    with lp_workspace() as ws:
        solution = slp1(problem, seed=1)
    print(ws.stats())
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np
from scipy.optimize import OptimizeResult, linprog
from scipy.sparse import csc_array, csr_matrix
from scipy.sparse.csgraph import connected_components

from .profiler import span

__all__ = ["solve_bounded_lp", "FAST_PATH_AVAILABLE", "HIGHSPY_AVAILABLE",
           "LPWorkspace", "lp_workspace", "active_lp_workspace"]

try:  # scipy >= 1.15 layout; fall back to public linprog otherwise
    from scipy.optimize import _linprog_highs as _lh
    from scipy.optimize._linprog_util import _check_result

    _highs_wrapper = _lh._highs_wrapper
    _replace_inf = _lh._replace_inf
    _to_scipy_status = _lh._highs_to_scipy_status_message
    _HighsModelStatus = _lh.HighsModelStatus
    # Same effective options dict ``_linprog_highs`` builds for
    # ``method="highs"`` with default solver options (None values are
    # skipped by the wrapper, as are 'sense' and 'solver'=None).
    _OPTIONS = {
        "presolve": True,
        "sense": _lh.ObjSense.kMinimize,
        "solver": None,
        "time_limit": None,
        "highs_debug_level": _lh.HighsDebugLevel.kHighsDebugLevelNone,
        "dual_feasibility_tolerance": None,
        "ipm_optimality_tolerance": None,
        "log_to_console": False,
        "mip_max_nodes": None,
        "output_flag": False,
        "primal_feasibility_tolerance": None,
        "simplex_dual_edge_weight_strategy": None,
        "simplex_strategy":
            _lh.s_c.SimplexStrategy.kSimplexStrategyDual,
        "ipm_iteration_limit": None,
        "simplex_iteration_limit": None,
        "mip_rel_gap": None,
    }
    FAST_PATH_AVAILABLE = True
except (ImportError, AttributeError):  # pragma: no cover - scipy drift
    FAST_PATH_AVAILABLE = False

try:  # standalone HiGHS bindings enable true basis-reuse warm starts
    import highspy  # noqa: F401

    HIGHSPY_AVAILABLE = True
except ImportError:
    HIGHSPY_AVAILABLE = False


def solve_bounded_lp(cost: np.ndarray, a_ub, b_ub: np.ndarray) -> OptimizeResult:
    """``linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=(0, 1), method="highs")``.

    ``a_ub`` must be a scipy sparse matrix; ``cost`` and ``b_ub`` dense
    float vectors.  Returns an :class:`OptimizeResult` exposing the
    fields LPRelax reads (``success``, ``status``, ``message``, ``x``,
    ``fun``).
    """
    if not FAST_PATH_AVAILABLE:  # pragma: no cover - scipy drift
        return linprog(cost, A_ub=a_ub, b_ub=b_ub,
                       bounds=(0.0, 1.0), method="highs")

    c = np.ascontiguousarray(cost, dtype=np.float64)
    n = c.shape[0]
    rhs = np.ascontiguousarray(b_ub, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        lhs = -np.ones_like(rhs) * np.inf
    lb = np.zeros(n)
    ub = np.ones(n)
    A = csc_array(a_ub)

    rhs = _replace_inf(rhs)
    lhs = _replace_inf(lhs)
    lb = _replace_inf(lb)
    ub = _replace_inf(ub)
    integrality = np.empty(0).astype(np.uint8)

    res = _highs_wrapper(c, A.indptr, A.indices, A.data, lhs, rhs,
                         lb, ub, integrality, dict(_OPTIONS))

    x = res["x"]
    fun = res.get("fun")
    slack = None
    if "slack" in res:
        slack = np.array(res["slack"])
    status, message = _to_scipy_status(res.get("status", None),
                                       res.get("message", None))
    # Same post-check linprog applies (bounds here is the (n, 2) array
    # _clean_inputs derives from ``(0.0, 1.0)``; equality residuals are
    # an empty vector since the model has no A_eq rows).
    bounds = np.broadcast_to([0.0, 1.0], (n, 2))
    con = np.empty(0) if x is not None else None
    status, message = _check_result(x, fun, status, slack, con,
                                    bounds, 1e-9, message, None)
    return OptimizeResult({
        "x": None if x is None else np.asarray(x, dtype=np.float64),
        "fun": fun,
        "slack": slack,
        "status": status,
        "message": message,
        "success": status == 0,
        "nit": res.get("simplex_nit", 0) or res.get("ipm_nit", 0),
    })


def _model_digest(cost: np.ndarray, a_ub: csr_matrix,
                  b_ub: np.ndarray) -> bytes:
    """Content digest of one bounded LP (cost, constraint matrix, rhs)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.asarray(a_ub.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(cost, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(b_ub, dtype=np.float64).tobytes())
    h.update(np.ascontiguousarray(a_ub.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(a_ub.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(a_ub.data, dtype=np.float64).tobytes())
    return h.digest()


def split_lp_blocks(a_ub: csr_matrix) -> tuple[int, np.ndarray, np.ndarray]:
    """Connected components of the constraint pattern.

    Rows and columns belong to the same block when they share a nonzero;
    independent blocks are independent LPs.  Returns ``(num_blocks,
    row_labels, col_labels)``.  A zero column (variable in no
    constraint) and an empty row (constraint over no variable) each
    form their own singleton block.
    """
    num_rows, num_cols = a_ub.shape
    coo = a_ub.tocoo()
    size = num_rows + num_cols
    # Bipartite adjacency over rows + columns (columns shifted past the
    # rows); ``directed=False`` makes the one-sided edges symmetric.
    from scipy.sparse import coo_matrix

    graph = coo_matrix(
        (np.ones(coo.nnz, dtype=np.int8), (coo.row, coo.col + num_rows)),
        shape=(size, size)).tocsr()
    num_blocks, labels = connected_components(graph, directed=False)
    return num_blocks, labels[:num_rows], labels[num_rows:]


class _WarmModel:
    """Persistent highspy model with basis reuse (one per LP structure).

    Only constructed when :data:`HIGHSPY_AVAILABLE`; the scipy-embedded
    HiGHS that ships in this repo's target container exposes no basis
    API, so the workspace normally never instantiates this class and
    uses the bit-identical direct path instead.
    """

    def __init__(self) -> None:  # pragma: no cover - needs highspy
        import highspy

        self.highs = highspy.Highs()
        self.highs.setOptionValue("output_flag", False)
        self.loaded = False

    def solve(self, cost: np.ndarray, a_ub: csr_matrix,
              b_ub: np.ndarray) -> OptimizeResult:  # pragma: no cover
        import highspy

        n = cost.shape[0]
        num_rows = a_ub.shape[0]
        lp = highspy.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = num_rows
        lp.col_cost_ = np.ascontiguousarray(cost, dtype=np.float64)
        lp.col_lower_ = np.zeros(n)
        lp.col_upper_ = np.ones(n)
        lp.row_lower_ = np.full(num_rows, -highspy.kHighsInf)
        lp.row_upper_ = np.ascontiguousarray(b_ub, dtype=np.float64)
        csc = csc_array(a_ub)
        lp.a_matrix_.start_ = csc.indptr
        lp.a_matrix_.index_ = csc.indices
        lp.a_matrix_.value_ = csc.data
        if self.loaded:
            basis = self.highs.getBasis()   # previous vertex, reused
            self.highs.passModel(lp)
            self.highs.setBasis(basis)
        else:
            self.highs.passModel(lp)
            self.loaded = True
        self.highs.run()
        status = self.highs.getModelStatus()
        solution = self.highs.getSolution()
        optimal = status == highspy.HighsModelStatus.kOptimal
        x = np.asarray(solution.col_value, dtype=np.float64) \
            if optimal else None
        fun = float(self.highs.getObjectiveValue()) if optimal else None
        return OptimizeResult({
            "x": x, "fun": fun, "slack": None,
            "status": 0 if optimal else 2,
            "message": str(status), "success": optimal, "nit": 0,
        })


class LPWorkspace:
    """Persistent context for the LP solves of one SLP run.

    ``decompose`` toggles block decomposition; ``workers`` > 1 fans
    independent blocks across a process pool (serial by default — on a
    single-core host pickling costs more than it saves).  ``memoize``
    toggles the content-addressed solution memo.
    """

    #: Below this many columns a model is solved directly.  HiGHS dual
    #: simplex clears LPRelax-shaped models of ~1000 columns in tens of
    #: milliseconds, where each extra block's fixed setup outweighs the
    #: superlinear savings (measured: a balanced 3-way split of a
    #: 931x1329 model solves 25% *slower* than the whole model); the
    #: crossover sits well past 10^3 columns.
    MIN_DECOMPOSE_COLS = 2048

    def __init__(self, *, decompose: bool = True, memoize: bool = True,
                 workers: int | None = None,
                 max_memo_entries: int = 256) -> None:
        self.decompose = decompose
        self.memoize = memoize
        self.workers = workers
        self.max_memo_entries = max_memo_entries
        self._memo: dict[bytes, OptimizeResult] = {}
        self._warm_models: dict[tuple[int, int, int], _WarmModel] = {}
        self.stats_counters: dict[str, int] = {
            "solves": 0,
            "memo_hits": 0,
            "decomposed_solves": 0,
            "blocks_solved": 0,
            "warm_solves": 0,
        }

    # -- public API -----------------------------------------------------

    def solve(self, cost: np.ndarray, a_ub, b_ub: np.ndarray) -> OptimizeResult:
        """``solve_bounded_lp`` with memoization and block decomposition."""
        self.stats_counters["solves"] += 1
        a_csr = csr_matrix(a_ub)
        key: bytes | None = None
        if self.memoize:
            key = _model_digest(cost, a_csr, b_ub)
            hit = self._memo.get(key)
            if hit is not None:
                self.stats_counters["memo_hits"] += 1
                return hit
        result = self._solve_uncached(cost, a_csr, b_ub)
        if key is not None:
            if len(self._memo) >= self.max_memo_entries:
                self._memo.pop(next(iter(self._memo)))  # FIFO
            self._memo[key] = result
        return result

    def stats(self) -> dict[str, int]:
        return dict(self.stats_counters)

    # -- internals ------------------------------------------------------

    def _solve_uncached(self, cost: np.ndarray, a_csr: csr_matrix,
                        b_ub: np.ndarray) -> OptimizeResult:
        if not self.decompose or a_csr.shape[1] < self.MIN_DECOMPOSE_COLS:
            return self._solve_block(cost, a_csr, b_ub)
        with span("lp_decompose"):
            num_blocks, row_labels, col_labels = split_lp_blocks(a_csr)
        if num_blocks <= 1:
            return self._solve_block(cost, a_csr, b_ub)
        # Decomposing only pays when the split genuinely shrinks the
        # dominant solve: LP cost is superlinear in model size, but each
        # block also pays HiGHS's fixed setup.  An imbalanced split (one
        # block keeping most columns) saves almost nothing and adds that
        # overhead per fragment, so it is solved whole.
        largest = int(np.bincount(col_labels, minlength=num_blocks).max())
        if largest > a_csr.shape[1] // 2:
            return self._solve_block(cost, a_csr, b_ub)
        return self._solve_decomposed(cost, a_csr, b_ub, num_blocks,
                                      row_labels, col_labels)

    def _solve_block(self, cost: np.ndarray, a_csr: csr_matrix,
                     b_ub: np.ndarray) -> OptimizeResult:
        if HIGHSPY_AVAILABLE:  # pragma: no cover - needs highspy
            structure = (a_csr.shape[0], a_csr.shape[1], int(a_csr.nnz))
            model = self._warm_models.get(structure)
            if model is None:
                model = self._warm_models[structure] = _WarmModel()
            self.stats_counters["warm_solves"] += 1
            return model.solve(cost, a_csr, b_ub)
        return solve_bounded_lp(cost, a_csr, b_ub)

    def _solve_decomposed(self, cost: np.ndarray, a_csr: csr_matrix,
                          b_ub: np.ndarray, num_blocks: int,
                          row_labels: np.ndarray,
                          col_labels: np.ndarray) -> OptimizeResult:
        self.stats_counters["decomposed_solves"] += 1
        num_cols = a_csr.shape[1]
        x = np.zeros(num_cols)
        slack = np.zeros(a_csr.shape[0])
        fun_parts: list[float] = []
        nit = 0

        # Singleton column blocks: a variable in no constraint sits at
        # whichever bound minimizes its cost term (bounds are [0, 1]).
        col_block_sizes = np.bincount(col_labels, minlength=num_blocks)
        row_block_sizes = np.bincount(row_labels, minlength=num_blocks)

        tasks: list[tuple[int, np.ndarray, np.ndarray]] = []
        for block in range(num_blocks):
            cols = np.flatnonzero(col_labels == block)
            rows = np.flatnonzero(row_labels == block)
            if len(cols) == 0:
                # Row-only block: constraint over no variable, 0 <= b.
                if len(rows) and (b_ub[rows] < 0).any():
                    return OptimizeResult({
                        "x": None, "fun": None, "slack": None, "status": 2,
                        "message": "empty constraint row with negative rhs",
                        "success": False, "nit": 0})
                slack[rows] = b_ub[rows]
                continue
            if len(rows) == 0:
                free = cost[cols] < 0
                x[cols] = np.where(free, 1.0, 0.0)
                fun_parts.append(float(cost[cols][free].sum()))
                continue
            tasks.append((block, rows, cols))

        solved = self._solve_block_tasks(cost, a_csr, b_ub, tasks)
        for (block, rows, cols), result in zip(tasks, solved):
            self.stats_counters["blocks_solved"] += 1
            if not result.success:
                return OptimizeResult({
                    "x": None, "fun": None, "slack": None,
                    "status": result.status, "message": result.message,
                    "success": False, "nit": 0})
            x[cols] = result.x
            if result.slack is not None:
                slack[rows] = result.slack
            fun_parts.append(float(result.fun))
            nit += int(result.get("nit", 0) or 0)

        # Deterministic stitch: blocks accumulate in block-index order.
        fun = float(np.asarray(fun_parts, dtype=np.float64).sum()) \
            if fun_parts else 0.0
        _ = col_block_sizes, row_block_sizes
        return OptimizeResult({
            "x": x, "fun": fun, "slack": slack, "status": 0,
            "message": "Optimization terminated successfully. "
                       f"(decomposed into {num_blocks} blocks)",
            "success": True, "nit": nit})

    def _solve_block_tasks(self, cost: np.ndarray, a_csr: csr_matrix,
                           b_ub: np.ndarray,
                           tasks: list[tuple[int, np.ndarray, np.ndarray]],
                           ) -> list[OptimizeResult]:
        subproblems = [(cost[cols], a_csr[rows][:, cols], b_ub[rows])
                       for _block, rows, cols in tasks]
        if self.workers and self.workers > 1 and len(subproblems) > 1:
            from .parallel import run_tasks

            return run_tasks(_solve_block_task, subproblems,
                             workers=self.workers)
        return [self._solve_block(c, csr_matrix(a), b)
                for c, a, b in subproblems]


def _solve_block_task(task: tuple[np.ndarray, Any, np.ndarray]) -> OptimizeResult:
    """Worker entry point for one decomposed LP block (module-level)."""
    c, a, b = task
    return solve_bounded_lp(c, csr_matrix(a), b)


#: The installed workspace; ``None`` keeps lp_relax on the cold path.
_LP_WORKSPACE: LPWorkspace | None = None


def active_lp_workspace() -> LPWorkspace | None:
    """The workspace currently installed, if any."""
    return _LP_WORKSPACE


@contextmanager
def lp_workspace(workspace: LPWorkspace | None = None,
                 **kwargs: Any) -> Iterator[LPWorkspace]:
    """Install an :class:`LPWorkspace` for the duration of the block.

    Nested activations reuse the already-active workspace (and leave its
    lifetime to the outermost block), mirroring ``geometry_cache``.
    """
    global _LP_WORKSPACE
    if workspace is None and _LP_WORKSPACE is not None:
        yield _LP_WORKSPACE
        return
    previous = _LP_WORKSPACE
    _LP_WORKSPACE = workspace or LPWorkspace(**kwargs)
    try:
        yield _LP_WORKSPACE
    finally:
        _LP_WORKSPACE = previous
