"""Thin fast path to HiGHS for the LPRelax relaxation.

``scipy.optimize.linprog`` spends a measurable slice of each call in
input cleaning (densify/validate/convert) before handing the model to
HiGHS.  LPRelax calls it dozens of times per SLP run with inputs that
are already in the exact shape scipy would produce, so
:func:`solve_bounded_lp` rebuilds only the pieces of the pipeline that
matter — the same CSC conversion, the same HiGHS options dictionary,
the same status/result checks — and invokes scipy's own
``_highs_wrapper`` directly.  Every array handed to the wrapper is
constructed the way ``_linprog_highs`` constructs it, so the solve is
bit-identical to ``linprog(c, A_ub=a, b_ub=b, bounds=(0, 1),
method="highs")``; the differential oracles in ``repro.verify``
confirm this empirically.

The private scipy entry points are an implementation detail of the
installed scipy; when any of them is missing the module transparently
falls back to public ``linprog``.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import OptimizeResult, linprog
from scipy.sparse import csc_array

__all__ = ["solve_bounded_lp", "FAST_PATH_AVAILABLE"]

try:  # scipy >= 1.15 layout; fall back to public linprog otherwise
    from scipy.optimize import _linprog_highs as _lh
    from scipy.optimize._linprog_util import _check_result

    _highs_wrapper = _lh._highs_wrapper
    _replace_inf = _lh._replace_inf
    _to_scipy_status = _lh._highs_to_scipy_status_message
    _HighsModelStatus = _lh.HighsModelStatus
    # Same effective options dict ``_linprog_highs`` builds for
    # ``method="highs"`` with default solver options (None values are
    # skipped by the wrapper, as are 'sense' and 'solver'=None).
    _OPTIONS = {
        "presolve": True,
        "sense": _lh.ObjSense.kMinimize,
        "solver": None,
        "time_limit": None,
        "highs_debug_level": _lh.HighsDebugLevel.kHighsDebugLevelNone,
        "dual_feasibility_tolerance": None,
        "ipm_optimality_tolerance": None,
        "log_to_console": False,
        "mip_max_nodes": None,
        "output_flag": False,
        "primal_feasibility_tolerance": None,
        "simplex_dual_edge_weight_strategy": None,
        "simplex_strategy":
            _lh.s_c.SimplexStrategy.kSimplexStrategyDual,
        "ipm_iteration_limit": None,
        "simplex_iteration_limit": None,
        "mip_rel_gap": None,
    }
    FAST_PATH_AVAILABLE = True
except (ImportError, AttributeError):  # pragma: no cover - scipy drift
    FAST_PATH_AVAILABLE = False


def solve_bounded_lp(cost: np.ndarray, a_ub, b_ub: np.ndarray) -> OptimizeResult:
    """``linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=(0, 1), method="highs")``.

    ``a_ub`` must be a scipy sparse matrix; ``cost`` and ``b_ub`` dense
    float vectors.  Returns an :class:`OptimizeResult` exposing the
    fields LPRelax reads (``success``, ``status``, ``message``, ``x``,
    ``fun``).
    """
    if not FAST_PATH_AVAILABLE:  # pragma: no cover - scipy drift
        return linprog(cost, A_ub=a_ub, b_ub=b_ub,
                       bounds=(0.0, 1.0), method="highs")

    c = np.ascontiguousarray(cost, dtype=np.float64)
    n = c.shape[0]
    rhs = np.ascontiguousarray(b_ub, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        lhs = -np.ones_like(rhs) * np.inf
    lb = np.zeros(n)
    ub = np.ones(n)
    A = csc_array(a_ub)

    rhs = _replace_inf(rhs)
    lhs = _replace_inf(lhs)
    lb = _replace_inf(lb)
    ub = _replace_inf(ub)
    integrality = np.empty(0).astype(np.uint8)

    res = _highs_wrapper(c, A.indptr, A.indices, A.data, lhs, rhs,
                         lb, ub, integrality, dict(_OPTIONS))

    x = res["x"]
    fun = res.get("fun")
    slack = None
    if "slack" in res:
        slack = np.array(res["slack"])
    status, message = _to_scipy_status(res.get("status", None),
                                       res.get("message", None))
    # Same post-check linprog applies (bounds here is the (n, 2) array
    # _clean_inputs derives from ``(0.0, 1.0)``; equality residuals are
    # an empty vector since the model has no A_eq rows).
    bounds = np.broadcast_to([0.0, 1.0], (n, 2))
    con = np.empty(0) if x is not None else None
    status, message = _check_result(x, fun, status, slack, con,
                                    bounds, 1e-9, message, None)
    return OptimizeResult({
        "x": None if x is None else np.asarray(x, dtype=np.float64),
        "fun": fun,
        "slack": slack,
        "status": status,
        "message": message,
        "success": status == 0,
        "nit": res.get("simplex_nit", 0) or res.get("ipm_nit", 0),
    })
