"""repro.perf — profiling, caching, parallelism, and perf-regression gates.

Four pillars, each usable on its own:

* :mod:`.profiler` — named per-stage wall-clock spans threaded through
  the SLP pipeline; near-zero cost when inactive, JSON-exportable when a
  :func:`profiled` block is active (``python -m repro profile``).
* :mod:`.cache` — a scoped, content-addressed memo for
  ``RectSet.containment_matrix`` / ``RectSet.volumes`` so FilterGen,
  LPRelax, the assignment passes, adjustment, and evaluation share the
  geometry they would otherwise recompute.
* :mod:`.parallel` — a process-pool bench runner fanning independent
  (algorithm x seed) cells with deterministic per-cell RNG spawning.
* :mod:`.regression` — calibration-normalized comparison of profile
  payloads against committed baselines (the CI perf-smoke gate).
"""

from .cache import GeometryCache, active_geometry_cache, geometry_cache
from .parallel import (
    BenchCell,
    CellResult,
    cell_matrix,
    run_cells,
    spawn_cell_seeds,
)
from .profiler import Profiler, StageStat, active_profiler, profiled, span
from .regression import (
    RegressionReport,
    StageComparison,
    calibrate,
    check_regression,
)

__all__ = [
    "Profiler",
    "StageStat",
    "profiled",
    "span",
    "active_profiler",
    "GeometryCache",
    "geometry_cache",
    "active_geometry_cache",
    "BenchCell",
    "CellResult",
    "cell_matrix",
    "run_cells",
    "spawn_cell_seeds",
    "RegressionReport",
    "StageComparison",
    "calibrate",
    "check_regression",
]
