"""Process-pool parallel bench runner with deterministic per-cell RNG.

The bench harness runs every (workload, algorithm, seed) cell serially;
this module fans independent cells across a process pool.  Determinism
is by construction: each cell's randomness derives *only* from the
cell's own seed (spawned with :func:`spawn_cell_seeds` from a single
root), never from shared mutable state, so the parallel run reproduces
the serial run seed-for-seed regardless of worker count or scheduling.

Heavy imports happen inside the worker function so this module can be
imported from anywhere in the package without cycles.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["BenchCell", "CellResult", "cell_matrix", "run_cells",
           "run_tasks", "spawn_cell_seeds"]


def run_tasks(fn: Any, tasks: Sequence[Any], *,
              workers: int | None = None) -> list[Any]:
    """Map a module-level function over tasks, serially or in a pool.

    The generic sibling of :func:`run_cells` used by the LP workspace to
    fan independent decomposed blocks out; results come back in task
    order either way, so parallel runs are indistinguishable from serial
    ones.  ``fn`` must be picklable (module-level) when ``workers > 1``.
    """
    task_list = list(tasks)
    if workers is None or workers <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]
    max_workers = min(workers, len(task_list))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, task_list))


@dataclass(frozen=True)
class BenchCell:
    """One (algorithm, seed) cell of a benchmark matrix.

    ``seed`` is passed to the algorithm only when its signature accepts
    one (the SLP variants); deterministic algorithms ignore it but keep
    it as a label.  ``kwargs`` holds extra keyword arguments as a sorted
    item tuple so the cell stays hashable and picklable.
    """

    algorithm: str
    seed: int | None = None
    kwargs: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CellResult:
    """The report (and optionally the solution) of one executed cell."""

    algorithm: str
    seed: int | None
    report: Any                    #: repro.metrics.SolutionReport
    solution: Any | None = None    #: SASolution when requested


def spawn_cell_seeds(root_seed: int, count: int) -> list[int]:
    """``count`` independent per-cell seeds derived from one root seed.

    Uses ``numpy.random.SeedSequence.spawn`` so the family is
    deterministic, collision-free, and stable across platforms.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def cell_matrix(algorithms: Sequence[str],
                seeds: Sequence[int]) -> list[BenchCell]:
    """The (algorithm x seed) cartesian product, algorithm-major."""
    return [BenchCell(algorithm=name, seed=int(seed))
            for name in algorithms for seed in seeds]


def _run_cell(task: tuple[Any, BenchCell, bool]) -> CellResult:
    """Execute one cell (worker entry point; must stay module-level)."""
    import inspect
    import time

    from ..core.registry import get_algorithm
    from ..metrics.report import evaluate_solution
    from .cache import geometry_cache

    problem, cell, include_solution = task
    fn = get_algorithm(cell.algorithm)
    kwargs = dict(cell.kwargs)
    if cell.seed is not None and "seed" in inspect.signature(fn).parameters:
        kwargs.setdefault("seed", cell.seed)
    with geometry_cache():
        started = time.perf_counter()
        solution = fn(problem, **kwargs)
        elapsed = time.perf_counter() - started
        report = evaluate_solution(cell.algorithm, solution,
                                   runtime_seconds=elapsed)
    return CellResult(algorithm=cell.algorithm, seed=cell.seed, report=report,
                      solution=solution if include_solution else None)


def run_cells(problem: Any, cells: Iterable[BenchCell], *,
              workers: int | None = None,
              include_solutions: bool = False) -> list[CellResult]:
    """Run bench cells on one problem, serially or across a process pool.

    Results come back in cell order either way, and — because each cell
    is seeded independently — are identical to the serial run.
    ``workers=None`` or ``<= 1`` stays in-process (no pickling), which is
    also the fallback for single-cell calls.
    """
    cell_list = list(cells)
    tasks = [(problem, cell, include_solutions) for cell in cell_list]
    if workers is None or workers <= 1 or len(cell_list) <= 1:
        return [_run_cell(task) for task in tasks]
    max_workers = min(workers, len(cell_list))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_cell, tasks))
