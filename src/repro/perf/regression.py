"""Perf-regression tracking against committed BENCH baselines.

Raw wall-clock comparisons across machines are noise — a committed
baseline recorded on one host would trip (or mask) regressions on a
faster or slower one.  Profile payloads therefore carry a *calibration*
score: the wall-clock of a fixed reference kernel (a containment-matrix
broadcast, the library's dominant primitive) measured on the same
machine right before the profiled run.  Comparisons divide each timing
by its payload's calibration, so the gate tracks the *algorithmic* cost
relative to what the hardware can do.

:func:`check_regression` compares a current profile payload against a
baseline and flags any stage (and the total) whose normalized cost grew
beyond the tolerance; ``python -m repro profile --check-against`` exits
non-zero on a flagged comparison, which is what the CI perf-smoke job
keys off.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["RegressionReport", "StageComparison", "calibrate",
           "check_regression"]

#: Stages whose baseline share of the total is below this fraction are
#: reported but never flagged: sub-millisecond stages are all jitter.
MIN_BASELINE_SHARE = 0.10


def calibrate(repeats: int = 3) -> float:
    """Seconds for the fixed reference kernel (best of ``repeats``).

    The kernel is a seeded containment-matrix broadcast of fixed size —
    the same memory/compute mix as the library's hot paths.  Taking the
    minimum filters scheduler noise; the result only needs to be stable
    to within a few percent on one machine.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(0)
    lo = rng.random((384, 4))
    hi = lo + rng.random((384, 4))
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(10):
            lo_ok = np.all(lo[:, None, :] <= lo[None, :, :], axis=2)
            hi_ok = np.all(hi[None, :, :] <= hi[:, None, :], axis=2)
            (lo_ok & hi_ok).sum()
        best = min(best, time.perf_counter() - started)
    return best


@dataclass(frozen=True)
class StageComparison:
    """Normalized baseline-vs-current timing of one stage."""

    name: str
    baseline_normalized: float
    current_normalized: float
    ratio: float                 #: current / baseline (1.0 = unchanged)
    gated: bool                  #: large enough to participate in the gate
    regressed: bool

    def as_row(self) -> list[object]:
        return [self.name, round(self.baseline_normalized, 3),
                round(self.current_normalized, 3), round(self.ratio, 3),
                "REGRESSED" if self.regressed
                else ("ok" if self.gated else "(below gate floor)")]


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one baseline comparison."""

    comparisons: tuple[StageComparison, ...]
    tolerance: float

    @property
    def ok(self) -> bool:
        return not any(c.regressed for c in self.comparisons)

    @property
    def regressed_stages(self) -> list[str]:
        return [c.name for c in self.comparisons if c.regressed]


def _normalized_stages(payload: Mapping[str, Any]) -> dict[str, float]:
    calibration = float(payload["calibration_seconds"])
    if calibration <= 0:
        raise ValueError("calibration_seconds must be positive")
    stages = {str(stage["name"]): float(stage["seconds"]) / calibration
              for stage in payload.get("stages", [])}
    stages["total"] = float(payload["total_seconds"]) / calibration
    return stages


def check_regression(current: Mapping[str, Any],
                     baseline: Mapping[str, Any],
                     tolerance: float = 0.30) -> RegressionReport:
    """Compare two profile payloads; flag >``tolerance`` normalized growth.

    Both payloads must carry ``total_seconds``, ``calibration_seconds``,
    and a ``stages`` list (as produced by ``python -m repro profile``).
    The total is always gated; individual stages are gated only when
    their baseline share of the total is at least
    :data:`MIN_BASELINE_SHARE`, so micro-stages cannot flake the job.
    Stages present on only one side (renames, new instrumentation) are
    skipped.  Improvements never flag.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    base = _normalized_stages(baseline)
    cur = _normalized_stages(current)
    base_total = base["total"]

    comparisons = []
    for name in sorted(base, key=lambda n: -base[n]):
        if name not in cur:
            continue
        share = base[name] / base_total if base_total > 0 else 0.0
        gated = name == "total" or share >= MIN_BASELINE_SHARE
        ratio = (cur[name] / base[name]) if base[name] > 0 else float("inf")
        regressed = bool(gated and ratio > 1.0 + tolerance)
        comparisons.append(StageComparison(
            name=name, baseline_normalized=base[name],
            current_normalized=cur[name], ratio=ratio,
            gated=gated, regressed=regressed))
    return RegressionReport(comparisons=tuple(comparisons),
                            tolerance=tolerance)
