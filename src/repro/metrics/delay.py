"""Delay metrics.

Per-subscriber delay is ``delta / Delta - 1`` (paper Section VI): the
relative detour of the assigned path over the best achievable path.  The
paper reports the root-mean-square of delays across subscribers and
scatter plots of delay versus shortest-path distance (Figure 7(b)).
"""

from __future__ import annotations

import numpy as np

from ..core.problem import SAProblem

__all__ = ["rms_delay", "max_delay", "delay_scatter"]


def rms_delay(problem: SAProblem, assignment: np.ndarray) -> float:
    """Root mean square of per-subscriber delays (unassigned -> excluded)."""
    delays = problem.delays(assignment)
    finite = delays[np.isfinite(delays)]
    if finite.size == 0:
        return float("inf")
    return float(np.sqrt(np.mean(finite ** 2)))


def max_delay(problem: SAProblem, assignment: np.ndarray) -> float:
    delays = problem.delays(assignment)
    finite = delays[np.isfinite(delays)]
    if finite.size == 0:
        return float("inf")
    return float(finite.max())


def delay_scatter(problem: SAProblem, assignment: np.ndarray) -> np.ndarray:
    """Figure 7(b)'s series: rows ``(shortest_path_latency, delay)``."""
    delays = problem.delays(assignment)
    return np.column_stack([problem.shortest_latency, delays])
