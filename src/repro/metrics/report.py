"""Consolidated solution quality reports.

One :class:`SolutionReport` per (algorithm, workload) pair collects every
number the paper's figures use: total bandwidth, RMS/max delay, load
spread, lbf, feasibility, runtime, and the LP fractional lower bound when
the solver provides one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.problem import SASolution
from ..pubsub.events import EventDistribution
from .bandwidth import total_bandwidth
from .delay import max_delay, rms_delay
from .load import load_stdev

__all__ = ["SolutionReport", "evaluate_solution", "runtime_report_rows"]


@dataclass(frozen=True)
class SolutionReport:
    """Everything the evaluation section reports about one solution."""

    algorithm: str
    bandwidth: float
    rms_delay: float
    max_delay: float
    load_stdev: float
    lbf: float
    feasible: bool
    all_assigned: bool
    latency_ok: bool
    nesting_ok: bool
    fractional_bandwidth: float | None
    runtime_seconds: float | None

    def as_row(self) -> dict[str, object]:
        """Flat dict for table printing."""
        return {
            "algorithm": self.algorithm,
            "bandwidth": self.bandwidth,
            "rms_delay": self.rms_delay,
            "max_delay": self.max_delay,
            "load_stdev": self.load_stdev,
            "lbf": self.lbf,
            "feasible": self.feasible,
            "fractional": self.fractional_bandwidth,
            "runtime_s": self.runtime_seconds,
        }


def runtime_report_rows(result, domain_measure: float | None = None,
                        ) -> list[list[object]]:
    """Flatten a runtime result into ``[metric, value]`` report rows.

    ``result`` is a :class:`repro.runtime.RuntimeResult` (typed loosely
    to keep this module free of a runtime dependency).  The rows combine
    the batch-comparable counts with the runtime-only telemetry: queue
    peaks, drops, crash losses, failover migrations, and the outage
    windows captured as spans.
    """
    telemetry = result.telemetry
    counter = lambda name: telemetry.counter(name).value  # noqa: E731
    rows: list[list[object]] = [
        ["events published", result.num_events],
        ["broker entries", result.total_broker_entries],
        ["deliveries", result.total_deliveries],
        ["missed deliveries", result.total_missed],
        ["delivery rate", result.delivery_rate],
        ["mean delivery latency", result.mean_delivery_latency],
        ["p90 delivery latency",
         telemetry.histogram("delivery_latency").quantile(0.9)],
        ["simulated duration", result.duration],
        ["peak queue depth", int(result.queue_peaks.max())
         if result.queue_peaks.size else 0],
        ["backpressure drops", counter("events_dropped_backpressure")],
        ["link drops", counter("link_drops")],
        ["events lost to crashes", counter("events_lost_crashed")],
        ["failover migrations", counter("failover_migrations")],
    ]
    if domain_measure is not None:
        rows.append(["empirical Q(T)",
                     result.empirical_bandwidth(domain_measure)])
    for span in telemetry.spans:
        if span.name.startswith("outage"):
            rows.append([span.name,
                         f"[{span.start:g}, {span.end:g}]"
                         if span.end is not None else f"[{span.start:g}, ...)"])
    return rows


def evaluate_solution(name: str, solution: SASolution,
                      distribution: EventDistribution | None = None,
                      runtime_seconds: float | None = None) -> SolutionReport:
    """Validate a solution and compute every headline metric."""
    report = solution.validate()
    return SolutionReport(
        algorithm=name,
        bandwidth=total_bandwidth(solution.filters, distribution),
        rms_delay=rms_delay(solution.problem, solution.assignment),
        max_delay=max_delay(solution.problem, solution.assignment),
        load_stdev=load_stdev(solution.problem, solution.assignment),
        lbf=report.lbf,
        feasible=report.feasible,
        all_assigned=report.all_assigned,
        latency_ok=report.latency_ok,
        nesting_ok=report.nesting_ok,
        fractional_bandwidth=solution.fractional_bandwidth,
        runtime_seconds=runtime_seconds,
    )
