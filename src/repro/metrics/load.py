"""Broker-load metrics: lbf, spread, CDF, and boxplot statistics.

The paper examines broker loads via the standard deviation across brokers
(Figures 6 and 8), per-algorithm boxplots against the ``beta`` /
``beta_max`` lines (Figure 7(c)), and the cumulative distribution of loads
(Figure 7(d), where Gr leaves >10% of brokers overloaded).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import SAProblem

__all__ = ["load_stdev", "BoxplotStats", "load_boxplot", "load_cdf",
           "overloaded_fraction"]


def load_stdev(problem: SAProblem, assignment: np.ndarray) -> float:
    """Standard deviation of per-leaf-broker subscriber counts."""
    return float(problem.loads(assignment).std())


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary of broker loads plus the constraint lines."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    desired_cap: float   #: beta * kappa * m for equal kappas
    maximum_cap: float   #: beta_max * kappa * m


def load_boxplot(problem: SAProblem, assignment: np.ndarray) -> BoxplotStats:
    loads = problem.loads(assignment).astype(float)
    q1, median, q3 = np.percentile(loads, [25, 50, 75])
    mean_capacity = problem.num_subscribers * float(problem.kappas.mean())
    return BoxplotStats(
        minimum=float(loads.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(loads.max()),
        desired_cap=problem.params.beta * mean_capacity,
        maximum_cap=problem.params.beta_max * mean_capacity,
    )


def load_cdf(problem: SAProblem, assignment: np.ndarray) -> np.ndarray:
    """Empirical CDF of broker loads: rows ``(load, fraction_of_brokers)``."""
    loads = np.sort(problem.loads(assignment))
    fractions = np.arange(1, loads.size + 1) / loads.size
    return np.column_stack([loads, fractions])


def overloaded_fraction(problem: SAProblem, assignment: np.ndarray) -> float:
    """Fraction of brokers whose load exceeds their ``beta_max`` share."""
    loads = problem.loads(assignment)
    caps = problem.params.beta_max * problem.kappas * problem.num_subscribers
    return float(np.mean(loads > caps + 1e-9))
