"""Solution quality metrics: bandwidth, delay, load balance, reports."""

from .bandwidth import broker_bandwidths, total_bandwidth
from .delay import delay_scatter, max_delay, rms_delay
from .load import (
    BoxplotStats,
    load_boxplot,
    load_cdf,
    load_stdev,
    overloaded_fraction,
)
from .report import SolutionReport, evaluate_solution, runtime_report_rows

__all__ = [
    "total_bandwidth",
    "broker_bandwidths",
    "rms_delay",
    "max_delay",
    "delay_scatter",
    "load_stdev",
    "load_boxplot",
    "load_cdf",
    "overloaded_fraction",
    "BoxplotStats",
    "SolutionReport",
    "evaluate_solution",
    "runtime_report_rows",
]
