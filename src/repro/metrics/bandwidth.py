"""Bandwidth metric: expected total inbound traffic ``Q(T)``.

``Q(T) = sum over brokers of measure(f_i)`` where the measure is the
volume of the filter's union under uniform events, or the scaled
probability mass under a non-uniform product distribution (paper
Section II).  Bandwidth into leaf-to-subscriber links is excluded, as in
the paper, because it does not depend on the assignment.
"""

from __future__ import annotations

from ..pubsub.events import EventDistribution
from ..pubsub.filters import Filter

__all__ = ["total_bandwidth", "broker_bandwidths"]


def broker_bandwidths(filters: dict[int, Filter],
                      distribution: EventDistribution | None = None) -> dict[int, float]:
    """Per-broker expected inbound bandwidth ``Q(B_i)``."""
    result = {}
    for node, filt in filters.items():
        if filt.is_empty():
            result[node] = 0.0
        elif distribution is None:
            result[node] = filt.measure()
        else:
            result[node] = distribution.filter_measure(filt.rects)
    return result


def total_bandwidth(filters: dict[int, Filter],
                    distribution: EventDistribution | None = None) -> float:
    """``Q(T)``: the paper's primary objective."""
    return float(sum(broker_bandwidths(filters, distribution).values()))
