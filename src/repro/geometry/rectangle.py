"""Axis-aligned rectangles (boxes) in d-dimensional Euclidean space.

Two representations are provided:

* :class:`Rect` — a single immutable box, convenient for algorithm-level
  code and tests.
* :class:`RectSet` — a vectorized collection of boxes backed by two
  ``(n, d)`` numpy arrays.  All hot paths in the library (candidate filter
  generation, greedy enlargement, coverage checks) operate on ``RectSet``.

A box is the product of closed intervals ``[lo_i, hi_i]``; degenerate boxes
(``lo_i == hi_i``) are allowed and have zero volume.  ``lo_i <= hi_i`` is an
invariant enforced at construction time.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Rect", "RectSet"]

#: Memoization hook installed by :func:`repro.perf.cache.geometry_cache`.
#: When set, :meth:`RectSet.containment_matrix` and :meth:`RectSet.volumes`
#: are served from the cache (keyed on content hashes); ``None`` keeps the
#: geometry layer free of any caching behavior.
_GEOMETRY_CACHE = None


def _as_coords(values: Sequence[float] | np.ndarray) -> np.ndarray:
    coords = np.asarray(values, dtype=float)
    if coords.ndim != 1:
        raise ValueError(f"expected a 1-d coordinate array, got shape {coords.shape}")
    return coords


class Rect:
    """An immutable axis-aligned box ``prod_i [lo_i, hi_i]``."""

    __slots__ = ("_lo", "_hi")

    def __init__(self, lo: Sequence[float] | np.ndarray, hi: Sequence[float] | np.ndarray) -> None:
        lo_arr = _as_coords(lo)
        hi_arr = _as_coords(hi)
        if lo_arr.shape != hi_arr.shape:
            raise ValueError("lo and hi must have the same dimensionality")
        if np.any(lo_arr > hi_arr):
            raise ValueError(f"invalid box: lo {lo_arr} exceeds hi {hi_arr}")
        lo_arr.setflags(write=False)
        hi_arr.setflags(write=False)
        self._lo = lo_arr
        self._hi = hi_arr

    @classmethod
    def from_point(cls, point: Sequence[float] | np.ndarray) -> "Rect":
        """A degenerate box containing exactly one point."""
        return cls(point, point)

    @classmethod
    def from_center(cls, center: Sequence[float] | np.ndarray,
                    widths: Sequence[float] | np.ndarray) -> "Rect":
        """The box centered at ``center`` with side lengths ``widths``."""
        center_arr = _as_coords(center)
        half = _as_coords(widths) / 2.0
        if np.any(half < 0):
            raise ValueError("widths must be non-negative")
        return cls(center_arr - half, center_arr + half)

    @property
    def lo(self) -> np.ndarray:
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        return self._hi

    @property
    def dim(self) -> int:
        return self._lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self._lo + self._hi) / 2.0

    @property
    def widths(self) -> np.ndarray:
        return self._hi - self._lo

    def volume(self) -> float:
        """Lebesgue volume; zero for degenerate boxes."""
        return float(np.prod(self._hi - self._lo))

    def contains_point(self, point: Sequence[float] | np.ndarray) -> bool:
        p = _as_coords(point)
        return bool(np.all(self._lo <= p) and np.all(p <= self._hi))

    def contains_rect(self, other: "Rect") -> bool:
        return bool(np.all(self._lo <= other._lo) and np.all(other._hi <= self._hi))

    def intersects(self, other: "Rect") -> bool:
        return bool(np.all(self._lo <= other._hi) and np.all(other._lo <= self._hi))

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap box, or ``None`` when the boxes are disjoint."""
        lo = np.maximum(self._lo, other._lo)
        hi = np.minimum(self._hi, other._hi)
        if np.any(lo > hi):
            return None
        return Rect(lo, hi)

    def union(self, other: "Rect") -> "Rect":
        """The minimum enclosing box of the two boxes."""
        return Rect(np.minimum(self._lo, other._lo), np.maximum(self._hi, other._hi))

    def enlargement(self, other: "Rect") -> float:
        """Volume increase of growing this box to also enclose ``other``.

        This is the classic R-tree insertion cost
        ``Vol(MEB(self, other)) - Vol(self)``.
        """
        return self.union(other).volume() - self.volume()

    def expand(self, eps: float) -> "Rect":
        """The paper's epsilon-expansion ``(1 + eps) R``.

        Each side of length ``w`` grows by ``eps * w / 2`` on both ends, so
        the expanded side has length ``(1 + eps) w``.  Degenerate sides stay
        degenerate, matching the definition in Section IV-A.2.
        """
        if eps < 0:
            raise ValueError("eps must be non-negative")
        half_growth = eps * (self._hi - self._lo) / 2.0
        return Rect(self._lo - half_growth, self._hi + half_growth)

    def as_tuple(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        return tuple(self._lo), tuple(self._hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rect):
            return NotImplemented
        return bool(np.array_equal(self._lo, other._lo) and np.array_equal(self._hi, other._hi))

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"Rect(lo={self._lo.tolist()}, hi={self._hi.tolist()})"


class RectSet:
    """A vectorized collection of ``n`` boxes in ``R^d``.

    Backed by ``lo`` and ``hi`` arrays of shape ``(n, d)``.  The arrays are
    owned by the set and marked read-only; derive new sets instead of
    mutating in place.
    """

    __slots__ = ("_lo", "_hi", "_content_key")

    def __init__(self, lo: np.ndarray, hi: np.ndarray, *, validate: bool = True) -> None:
        lo_arr = np.ascontiguousarray(lo, dtype=float)
        hi_arr = np.ascontiguousarray(hi, dtype=float)
        if lo_arr.ndim != 2 or lo_arr.shape != hi_arr.shape:
            raise ValueError("lo and hi must both have shape (n, d)")
        if validate and np.any(lo_arr > hi_arr):
            raise ValueError("invalid boxes: some lo exceeds hi")
        lo_arr.setflags(write=False)
        hi_arr.setflags(write=False)
        self._lo = lo_arr
        self._hi = hi_arr
        self._content_key: bytes | None = None

    @classmethod
    def empty(cls, dim: int) -> "RectSet":
        return cls(np.empty((0, dim)), np.empty((0, dim)))

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "RectSet":
        rect_list = list(rects)
        if not rect_list:
            raise ValueError("from_rects needs at least one rect; use RectSet.empty")
        lo = np.stack([r.lo for r in rect_list])
        hi = np.stack([r.hi for r in rect_list])
        return cls(lo, hi, validate=False)

    @property
    def lo(self) -> np.ndarray:
        return self._lo

    @property
    def hi(self) -> np.ndarray:
        return self._hi

    @property
    def dim(self) -> int:
        return self._lo.shape[1]

    def __len__(self) -> int:
        return self._lo.shape[0]

    def __iter__(self) -> Iterator[Rect]:
        for i in range(len(self)):
            yield self.rect(i)

    def rect(self, index: int) -> Rect:
        return Rect(self._lo[index], self._hi[index])

    def take(self, indices: np.ndarray | Sequence[int]) -> "RectSet":
        idx = np.asarray(indices)
        return RectSet(self._lo[idx], self._hi[idx], validate=False)

    def centers(self) -> np.ndarray:
        return (self._lo + self._hi) / 2.0

    def widths(self) -> np.ndarray:
        return self._hi - self._lo

    def content_key(self) -> bytes:
        """A digest of the coordinate content, computed once per set.

        Two sets with equal coordinates share the key even when they are
        distinct objects, which is what the geometry cache keys on.  The
        hash cost is ``O(n d)`` — negligible next to the ``O(n m d)``
        containment products it deduplicates.
        """
        key = self._content_key
        if key is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.asarray(self._lo.shape, dtype=np.int64).tobytes())
            digest.update(self._lo.tobytes())
            digest.update(self._hi.tobytes())
            key = digest.digest()
            self._content_key = key
        return key

    def volumes(self) -> np.ndarray:
        """Per-box volumes, shape ``(n,)``.

        Served from the active geometry cache when one is installed (see
        :func:`repro.perf.cache.geometry_cache`); cached arrays are
        read-only.
        """
        cache = _GEOMETRY_CACHE
        if cache is not None:
            return cache.volumes(self)
        return self._compute_volumes()

    def _compute_volumes(self) -> np.ndarray:
        return np.prod(self._hi - self._lo, axis=1)

    def meb(self) -> Rect:
        """Minimum enclosing box of every box in the set."""
        if len(self) == 0:
            raise ValueError("meb of an empty RectSet is undefined")
        return Rect(self._lo.min(axis=0), self._hi.max(axis=0))

    def contains_rect(self, other: Rect) -> np.ndarray:
        """Boolean mask: which boxes in the set contain ``other``."""
        return np.all(self._lo <= other.lo, axis=1) & np.all(other.hi <= self._hi, axis=1)

    def contained_in_rect(self, outer: Rect) -> np.ndarray:
        """Boolean mask: which boxes in the set lie inside ``outer``."""
        return np.all(outer.lo <= self._lo, axis=1) & np.all(self._hi <= outer.hi, axis=1)

    def containment_matrix(self, inner: "RectSet") -> np.ndarray:
        """Matrix ``M[i, j]`` = does box ``i`` of this set contain box ``j`` of ``inner``.

        Shape ``(len(self), len(inner))``.  Cost is ``O(n * m * d)`` but fully
        vectorized; used to relate candidate filters to subscriptions.
        Served from the active geometry cache when one is installed (see
        :func:`repro.perf.cache.geometry_cache`); cached matrices are
        read-only.
        """
        cache = _GEOMETRY_CACHE
        if cache is not None:
            return cache.containment_matrix(self, inner)
        return self._compute_containment_matrix(inner)

    def _compute_containment_matrix(self, inner: "RectSet") -> np.ndarray:
        # Accumulate one (n, m) comparison per axis rather than reducing a
        # materialized (n, m, d) broadcast — same booleans, less memory
        # traffic on the hottest geometry kernel.
        result = (self._lo[:, [0]] <= inner._lo[None, :, 0]) \
            & (inner._hi[None, :, 0] <= self._hi[:, [0]])
        for axis in range(1, self.dim):
            result &= self._lo[:, [axis]] <= inner._lo[None, :, axis]
            result &= inner._hi[None, :, axis] <= self._hi[:, [axis]]
        return result

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Matrix ``M[i, j]`` = does box ``i`` contain point ``j``.

        ``points`` has shape ``(m, d)``; the result has shape ``(n, m)``.
        """
        pts = np.asarray(points, dtype=float)
        lo_ok = np.all(self._lo[:, None, :] <= pts[None, :, :], axis=2)
        hi_ok = np.all(pts[None, :, :] <= self._hi[:, None, :], axis=2)
        return lo_ok & hi_ok

    def expand(self, eps: float) -> "RectSet":
        """Epsilon-expansion of every box (see :meth:`Rect.expand`)."""
        if eps < 0:
            raise ValueError("eps must be non-negative")
        half_growth = eps * (self._hi - self._lo) / 2.0
        return RectSet(self._lo - half_growth, self._hi + half_growth, validate=False)

    def shrink_to_contents(self, contents: "RectSet") -> "RectSet":
        """Shrink each box to the MEB of the ``contents`` boxes it contains.

        Boxes containing nothing are left unchanged.  This is FilterGen's
        final tightening step.
        """
        matrix = self.containment_matrix(contents)
        new_lo = self._lo.copy()
        new_hi = self._hi.copy()
        occupied = matrix.any(axis=1)
        if occupied.any():
            # min/max over the contained subset, batched over all boxes;
            # identity elements make uncontained entries inert.
            masked_lo = np.where(matrix[:, :, None], contents._lo[None, :, :],
                                 np.inf)
            masked_hi = np.where(matrix[:, :, None], contents._hi[None, :, :],
                                 -np.inf)
            new_lo[occupied] = masked_lo.min(axis=1)[occupied]
            new_hi[occupied] = masked_hi.max(axis=1)[occupied]
        return RectSet(new_lo, new_hi, validate=False)

    def dedupe(self) -> "RectSet":
        """Remove exact duplicate boxes, preserving first-seen order."""
        combined = np.hstack([self._lo, self._hi])
        _, first_indices = np.unique(combined, axis=0, return_index=True)
        return self.take(np.sort(first_indices))

    def concat(self, other: "RectSet") -> "RectSet":
        if other.dim != self.dim:
            raise ValueError("dimension mismatch")
        return RectSet(np.vstack([self._lo, other._lo]),
                       np.vstack([self._hi, other._hi]), validate=False)

    def __repr__(self) -> str:
        return f"RectSet(n={len(self)}, dim={self.dim})"
