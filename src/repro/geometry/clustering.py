"""Seeded k-means clustering and box-grouping heuristics.

The paper uses clustering in two places:

* **FilterGen step 1** — subscriptions are clustered in the joint
  (network, event) space into ``k = 5 |B|`` clusters whose MEBs become
  *super-subscriptions* (Section IV-A.3).
* **Filter adjustment** — each broker's assigned subscriptions are grouped
  into at most ``alpha`` clusters whose MEBs form the final filter
  (Section IV-C; exactly minimizing the union volume is NP-hard per Bilò
  et al., so a clustering heuristic is used).

Everything here is deterministic given the caller's ``numpy`` generator;
no global random state is touched.
"""

from __future__ import annotations

import numpy as np

from .meb import meb_of_subset
from .rectangle import RectSet

__all__ = ["kmeans", "cluster_rects_to_mebs", "alpha_meb_cover"]


def _kmeans_plus_plus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = rng.integers(n)
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with a chosen center.
            centers[i:] = points[rng.integers(n, size=k - i)]
            break
        probabilities = closest_sq / total
        choice = rng.choice(n, p=probabilities)
        centers[i] = points[choice]
        dist_sq = np.sum((points - centers[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def kmeans(points: np.ndarray, k: int, rng: np.random.Generator,
           max_iterations: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ seeding.

    Returns ``(labels, centers)`` where ``labels`` has shape ``(n,)`` with
    values in ``[0, k)`` and every cluster is non-empty (empty clusters are
    re-seeded on the farthest points).
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    n = pts.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    k = min(k, n)

    centers = _kmeans_plus_plus(pts, k, rng)
    labels = np.zeros(n, dtype=int)
    diff = np.empty((n, k, pts.shape[1]))
    for _ in range(max_iterations):
        # Assignment step: same subtract/square/reduce/sqrt sequence as
        # ``np.linalg.norm(pts[:, None] - centers[None], axis=2)`` (so the
        # floats are identical), with the big intermediate reused.
        np.subtract(pts[:, None, :], centers[None, :, :], out=diff)
        np.multiply(diff, diff, out=diff)
        distances = np.sqrt(np.add.reduce(diff, axis=2))
        new_labels = distances.argmin(axis=1)

        # Re-seed empty clusters on the points farthest from their centers
        # (cluster sizes tracked incrementally: one bincount, not k scans).
        sizes = np.bincount(new_labels, minlength=k)
        for cluster in range(k):
            if sizes[cluster] == 0:
                farthest = distances[np.arange(n), new_labels].argmax()
                sizes[new_labels[farthest]] -= 1
                sizes[cluster] = 1
                new_labels[farthest] = cluster
                centers[cluster] = pts[farthest]

        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        # Update step over label-sorted slices (stable sort keeps each
        # cluster's points in input order, so the per-cluster mean is the
        # same float result the boolean-mask form produced).
        order = np.argsort(labels, kind="stable")
        sorted_pts = pts[order]
        bounds = np.searchsorted(labels[order], np.arange(k + 1))
        for cluster in range(k):
            start, stop = bounds[cluster], bounds[cluster + 1]
            if stop > start:
                centers[cluster] = sorted_pts[start:stop].mean(axis=0)
    return labels, centers


def cluster_rects_to_mebs(rects: RectSet, k: int, rng: np.random.Generator,
                          features: np.ndarray | None = None) -> tuple[RectSet, np.ndarray]:
    """Cluster boxes and return the per-cluster MEBs.

    ``features`` overrides the clustering coordinates (FilterGen passes a
    joint network/event embedding); by default the box corner coordinates
    ``(lo, hi)`` are used, which keeps similarly-placed, similarly-sized
    boxes together.

    Returns ``(mebs, labels)``.  The MEB set has one box per non-empty
    cluster; ``labels`` maps each input box to its row in ``mebs``.
    """
    if len(rects) == 0:
        raise ValueError("cannot cluster an empty RectSet")
    if features is None:
        features = np.hstack([rects.lo, rects.hi])
    labels, _ = kmeans(features, k, rng)

    unique = np.unique(labels)
    remap = {cluster: row for row, cluster in enumerate(unique)}
    lo = np.empty((len(unique), rects.dim))
    hi = np.empty((len(unique), rects.dim))
    for cluster, row in remap.items():
        mask = labels == cluster
        lo[row] = rects.lo[mask].min(axis=0)
        hi[row] = rects.hi[mask].max(axis=0)
    mapped = np.array([remap[c] for c in labels], dtype=int)
    return RectSet(lo, hi, validate=False), mapped


def alpha_meb_cover(rects: RectSet, alpha: int, rng: np.random.Generator,
                    refinement_passes: int = 2) -> RectSet:
    """Cover the boxes with at most ``alpha`` MEBs of small total volume.

    This is the paper's filter-adjustment heuristic: k-means the boxes into
    ``alpha`` groups, take per-group MEBs, then run a few reassignment
    passes moving each box to the group whose MEB it enlarges least.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if len(rects) == 0:
        raise ValueError("cannot cover an empty RectSet")
    if len(rects) <= alpha:
        return rects

    mebs, labels = cluster_rects_to_mebs(rects, alpha, rng)
    groups = labels.copy()
    group_count = len(mebs)

    for _ in range(refinement_passes):
        changed = False
        # Current group MEBs.
        group_lo = np.full((group_count, rects.dim), np.inf)
        group_hi = np.full((group_count, rects.dim), -np.inf)
        for g in range(group_count):
            mask = groups == g
            if mask.any():
                group_lo[g] = rects.lo[mask].min(axis=0)
                group_hi[g] = rects.hi[mask].max(axis=0)
        for i in range(len(rects)):
            # Enlargement of each group's MEB if box i joined it.
            cand_lo = np.minimum(group_lo, rects.lo[i])
            cand_hi = np.maximum(group_hi, rects.hi[i])
            enlarged = np.prod(cand_hi - cand_lo, axis=1)
            base = np.prod(np.maximum(group_hi - group_lo, 0.0), axis=1)
            base[~np.isfinite(base)] = 0.0
            cost = enlarged - base
            best = int(cost.argmin())
            if best != groups[i]:
                groups[i] = best
                changed = True
        if not changed:
            break

    occupied = [g for g in range(group_count) if np.any(groups == g)]
    covers = [meb_of_subset(rects, groups == g) for g in occupied]
    return RectSet.from_rects(covers)
