"""Minimum enclosing boxes (MEBs) of points and boxes."""

from __future__ import annotations

import numpy as np

from .rectangle import Rect, RectSet

__all__ = ["meb_of_points", "meb_of_rects", "meb_of_subset"]


def meb_of_points(points: np.ndarray) -> Rect:
    """The smallest box containing every row of ``points`` (shape ``(n, d)``)."""
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    return Rect(pts.min(axis=0), pts.max(axis=0))


def meb_of_rects(rects: RectSet) -> Rect:
    """The smallest box containing every box of the set."""
    return rects.meb()


def meb_of_subset(rects: RectSet, mask: np.ndarray) -> Rect:
    """MEB of the boxes selected by a boolean ``mask``."""
    selector = np.asarray(mask, dtype=bool)
    if not selector.any():
        raise ValueError("mask selects no boxes")
    return Rect(rects.lo[selector].min(axis=0), rects.hi[selector].max(axis=0))
