"""Measures of unions of axis-aligned boxes.

The bandwidth objective of the paper is the *measure* of each broker's
filter (the union of up to ``alpha`` boxes) under the event distribution.
For uniform events this is the Lebesgue volume of the union.

``union_volume`` computes the exact union volume by coordinate compression:
collect the distinct coordinates per axis, and sum the volume of every grid
cell covered by at least one box.  With ``n`` boxes this costs
``O((2n)^d)`` cells, which is cheap for the small ``n = alpha`` unions the
library deals with (alpha <= 6 in the paper, d = 2).  For larger inputs in
higher dimension, :func:`union_volume_monte_carlo` estimates the volume by
sampling inside the enclosing box.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .rectangle import Rect, RectSet

__all__ = [
    "union_volume",
    "union_measure",
    "union_volume_monte_carlo",
    "sum_volume",
    "coverage_fraction",
]

# Above this cell-grid size, exact compression becomes wasteful and callers
# should prefer the Monte Carlo estimate.
_MAX_EXACT_CELLS = 2_000_000


def sum_volume(rects: RectSet) -> float:
    """Sum of individual box volumes (the LP objective's surrogate measure)."""
    return float(rects.volumes().sum())


def _compressed_covered_grid(rects: RectSet,
                             hint: str) -> tuple[list[np.ndarray], np.ndarray]:
    """Coordinate-compressed grid shared by the exact union measures.

    Returns the per-axis sorted coordinate arrays and the boolean mask of
    grid cells covered by at least one box (degenerate boxes cover no
    cell).  Raises :class:`ValueError` with ``hint`` appended when the
    grid would exceed ``_MAX_EXACT_CELLS``.
    """
    dim = rects.dim
    axes = []
    cells = 1
    for axis in range(dim):
        coords = np.unique(np.concatenate([rects.lo[:, axis], rects.hi[:, axis]]))
        axes.append(coords)
        cells *= max(len(coords) - 1, 1)
        if cells > _MAX_EXACT_CELLS:
            raise ValueError(
                f"compressed grid too large ({cells}+ cells); {hint}")

    covered = np.zeros(tuple(max(len(a) - 1, 1) for a in axes), dtype=bool)
    for i in range(len(rects)):
        slices = []
        degenerate = False
        for axis in range(dim):
            start = np.searchsorted(axes[axis], rects.lo[i, axis])
            stop = np.searchsorted(axes[axis], rects.hi[i, axis])
            if stop <= start:
                degenerate = True
                break
            slices.append(slice(start, stop))
        if not degenerate:
            covered[tuple(slices)] = True
    return axes, covered


def _covered_mass(axes: list[np.ndarray], covered: np.ndarray,
                  cell_measures: list[np.ndarray]) -> float:
    """Total measure of the covered cells, given per-axis cell measures."""
    if not covered.any():
        return 0.0
    weight = cell_measures[0]
    for axis in range(1, len(axes)):
        weight = np.multiply.outer(weight, cell_measures[axis])
    return float(weight[covered].sum())


def union_volume(rects: RectSet) -> float:
    """Exact Lebesgue volume of the union of the boxes.

    Raises :class:`ValueError` when the compressed grid would be too large;
    use :func:`union_volume_monte_carlo` in that regime.
    """
    n = len(rects)
    if n == 0:
        return 0.0
    if n == 1:
        return float(rects.volumes()[0])

    axes, covered = _compressed_covered_grid(
        rects, "use union_volume_monte_carlo")
    cell_lengths = [np.diff(a) if len(a) > 1 else np.zeros(1) for a in axes]
    return _covered_mass(axes, covered, cell_lengths)


def union_measure(rects: RectSet,
                  interval_measure: Callable[[int, float, float], float],
                  ) -> float:
    """Measure of the union of the boxes under a product measure.

    ``interval_measure(axis, a, b)`` must return the 1-d measure of the
    interval ``[a, b]`` along ``axis``; the product over axes gives the
    box measure.  With ``interval_measure = lambda axis, a, b: b - a`` this
    reduces to :func:`union_volume`.  Used for non-uniform (product-form)
    event distributions, where broker bandwidth is the *probability mass*
    of the filter rather than its volume.
    """
    if len(rects) == 0:
        return 0.0

    axes, covered = _compressed_covered_grid(rects, "for union_measure")
    cell_measures = []
    for axis in range(rects.dim):
        coords = axes[axis]
        if len(coords) > 1:
            measures = np.array([interval_measure(axis, coords[k], coords[k + 1])
                                 for k in range(len(coords) - 1)])
        else:
            measures = np.zeros(1)
        cell_measures.append(measures)
    return _covered_mass(axes, covered, cell_measures)


def union_volume_monte_carlo(rects: RectSet, rng: np.random.Generator,
                             samples: int = 100_000) -> float:
    """Monte Carlo estimate of the union volume.

    Samples uniformly inside the MEB of the set; the estimator is unbiased
    with relative error ``O(1 / sqrt(samples * p))`` where ``p`` is the
    covered fraction of the MEB.
    """
    if len(rects) == 0:
        return 0.0
    box = rects.meb()
    box_volume = box.volume()
    if box_volume == 0.0:
        return 0.0
    points = rng.uniform(box.lo, box.hi, size=(samples, rects.dim))
    hit = rects.contains_points(points).any(axis=0)
    return box_volume * float(hit.mean())


def coverage_fraction(rects: RectSet, domain: Rect,
                      rng: np.random.Generator | None = None,
                      samples: int = 50_000) -> float:
    """Fraction of ``domain`` covered by the union of the boxes.

    Uses the exact union of the clipped boxes when feasible, otherwise
    Monte Carlo (requires ``rng``).
    """
    domain_volume = domain.volume()
    if domain_volume == 0.0:
        return 0.0
    clipped_lo = np.maximum(rects.lo, domain.lo)
    clipped_hi = np.minimum(rects.hi, domain.hi)
    keep = np.all(clipped_lo <= clipped_hi, axis=1)
    if not keep.any():
        return 0.0
    clipped = RectSet(clipped_lo[keep], clipped_hi[keep], validate=False)
    try:
        covered = union_volume(clipped)
    except ValueError:
        if rng is None:
            raise
        covered = union_volume_monte_carlo(clipped, rng, samples=samples)
    return covered / domain_volume
