"""Geometry substrate: boxes, measures, and clustering in event space."""

from .clustering import alpha_meb_cover, cluster_rects_to_mebs, kmeans
from .meb import meb_of_points, meb_of_rects, meb_of_subset
from .rectangle import Rect, RectSet
from .volume import (
    coverage_fraction,
    sum_volume,
    union_measure,
    union_volume,
    union_volume_monte_carlo,
)

__all__ = [
    "Rect",
    "RectSet",
    "meb_of_points",
    "meb_of_rects",
    "meb_of_subset",
    "union_volume",
    "union_measure",
    "union_volume_monte_carlo",
    "sum_volume",
    "coverage_fraction",
    "kmeans",
    "cluster_rects_to_mebs",
    "alpha_meb_cover",
]
