"""Replay churn traces through the dissemination runtime.

`repro.dynamic` models churn *between* batch evaluations: apply a step,
measure, repeat.  This module drives the same
:class:`~repro.dynamic.churn.ChurnTrace` while event traffic is flowing
— arrivals are placed by the online greedy rule mid-run, departures
deactivate subscribers mid-run, and an optional periodic re-optimization
swaps in a freshly optimized assignment, all as scheduled control
actions inside the discrete-event engine.

Delivery semantics under churn: an event is debited to a subscriber at
*publish* time (active subscribers whose subscription matches), so a
subscriber departing while the event is in flight records a miss, and
one arriving mid-flight may receive an un-debited delivery (never
counted as a miss — the engine clamps at zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.problem import SAProblem
from ..dynamic.churn import ChurnStep, ChurnTrace
from ..dynamic.manager import DynamicPubSub
from ..pubsub.events import EventDistribution
from .engine import DisseminationEngine, RuntimeConfig, RuntimeResult
from .faults import FaultPlan, apply_fault_plan
from .telemetry import Telemetry

__all__ = ["ReplayConfig", "replay_churn", "prepare_replay"]


@dataclass(frozen=True)
class ReplayConfig:
    """How a churn trace maps onto simulated time."""

    #: simulated time between consecutive churn steps; None spreads the
    #: whole trace evenly across the publishing window.
    step_interval: float | None = None
    #: run a full re-optimization every k churn steps (0 = never)
    reopt_every: int = 0
    reopt_algorithm: str = "SLP1"
    reopt_seed: int = 0

    def __post_init__(self) -> None:
        if self.step_interval is not None and self.step_interval <= 0:
            raise ValueError("step_interval must be positive")
        if self.reopt_every < 0:
            raise ValueError("reopt_every must be non-negative")


def replay_churn(problem: SAProblem,
                 trace: ChurnTrace,
                 distribution: EventDistribution,
                 rng: np.random.Generator,
                 num_events: int,
                 *,
                 engine_config: RuntimeConfig | None = None,
                 replay_config: ReplayConfig | None = None,
                 fault_plan: FaultPlan | None = None,
                 failover: bool = True,
                 manager_seed: int = 0,
                 telemetry: Telemetry | None = None,
                 engine_kwargs: dict[str, Any] | None = None,
                 ) -> tuple[RuntimeResult, DynamicPubSub]:
    """Run the engine while a churn trace plays out.

    The trace's initially-active subscribers are placed online (greedy)
    before traffic starts; each step is applied as a control action at
    its scheduled time.  An optional ``fault_plan`` injects broker
    outages on top of the churn.  Returns the runtime result and the
    dynamic manager in its final state (for migration counts, final
    filters, follow-up re-optimization, ...).

    ``engine_kwargs`` passes extra :class:`DisseminationEngine` keywords
    through (shard workers use ``delivery_members`` /
    ``defer_delivery_fold``); the churn control plane itself is
    subscriber-independent, so restricted engines replay identically.
    """
    engine, system = prepare_replay(
        problem, trace, num_events, engine_config=engine_config,
        replay_config=replay_config, fault_plan=fault_plan,
        failover=failover, manager_seed=manager_seed, telemetry=telemetry,
        engine_kwargs=engine_kwargs)
    result = engine.run(distribution, rng, num_events)
    return result, system


def prepare_replay(problem: SAProblem,
                   trace: ChurnTrace,
                   num_events: int,
                   *,
                   engine_config: RuntimeConfig | None = None,
                   replay_config: ReplayConfig | None = None,
                   fault_plan: FaultPlan | None = None,
                   failover: bool = True,
                   manager_seed: int = 0,
                   telemetry: Telemetry | None = None,
                   engine_kwargs: dict[str, Any] | None = None,
                   ) -> tuple[DisseminationEngine, DynamicPubSub]:
    """Build the engine + manager for a churn replay without running it.

    :func:`replay_churn` composes this with ``engine.run``; shard
    workers use it directly so they can drain the engine's deferred
    delivery groups after the run.
    """
    if trace.population_size != problem.num_subscribers:
        raise ValueError("trace population must match the problem's "
                         "subscriber count")
    engine_config = engine_config or RuntimeConfig()
    replay_config = replay_config or ReplayConfig()

    system = DynamicPubSub(problem, seed=manager_seed)
    for j in np.flatnonzero(trace.initially_active):
        system.arrive(int(j))

    engine = DisseminationEngine(
        problem.tree, system.current_filters(), system.assignment,
        problem.subscriptions, config=engine_config,
        subscriber_points=problem.subscriber_points, telemetry=telemetry,
        **(engine_kwargs or {}))
    if fault_plan is not None:
        # Caveat when combining churn and faults: each churn step
        # re-imposes the manager's assignment, which may re-point some
        # subscribers at a crashed broker until the next crash-triggered
        # repair or a recovery.  The telemetry accounts either way.
        apply_fault_plan(engine, fault_plan,
                         problem if failover else None, failover=failover)

    if trace.horizon:
        if replay_config.step_interval is not None:
            interval = replay_config.step_interval
        else:
            window = max(num_events, 1) * engine_config.publish_interval
            interval = window / (trace.horizon + 1)
        for step in trace.steps:
            engine.schedule((step.step + 1) * interval,
                            _make_step_action(system, step, replay_config))
    return engine, system


def _make_step_action(system: DynamicPubSub, step: ChurnStep,
                      config: ReplayConfig):
    def action(engine: DisseminationEngine, time: float) -> None:
        system.apply(step)
        engine.telemetry.counter("churn_arrivals").inc(len(step.arrivals))
        engine.telemetry.counter("churn_departures").inc(len(step.departures))
        if config.reopt_every and (step.step + 1) % config.reopt_every == 0:
            kwargs = ({"seed": config.reopt_seed}
                      if config.reopt_algorithm in ("SLP1", "SLP") else {})
            info = system.reoptimize(config.reopt_algorithm, **kwargs)
            engine.telemetry.counter("reoptimizations").inc()
            engine.telemetry.counter("reopt_migrations").inc(
                int(info.get("migrations", 0)))
            span = engine.telemetry.span("reoptimization", time,
                                         step=step.step + 1,
                                         migrations=info.get("migrations", 0))
            span.close(time)
        engine.update_assignment(system.assignment)
        engine.update_filters(system.current_filters())
    return action
