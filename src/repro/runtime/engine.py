"""Deterministic discrete-event simulation of the broker overlay.

The batch simulator (:mod:`repro.pubsub.simulator`) answers "how much
traffic does this assignment cost" by pushing all events through the
tree at once.  This engine answers the *temporal* questions the batch
model abstracts away: what happens when events queue up behind slow
brokers, when a broker crashes mid-run, when links drop messages, and
when subscribers churn while traffic is flowing.

Model
-----

* The publisher emits sampled events at ``publish_interval`` spacing.
* A message travels a tree edge in the edge's latency (Euclidean hop
  distance, exactly the :class:`~repro.network.tree.BrokerTree` model).
* Each broker has a FIFO ingress queue and a configurable per-event
  ``service_time``; an optional ``queue_capacity`` drops arrivals when
  the queue is full (backpressure), which the telemetry accounts.
* A broker forwards a serviced event to each child whose filter matches;
  leaf brokers additionally deliver to their assigned subscribers whose
  subscription contains the event.
* Control actions (faults, churn, reassignment) are scheduled at
  arbitrary times via :meth:`DisseminationEngine.schedule`.

Correctness anchor: with zero faults, zero service time, and a frozen
population, a run over the same RNG-sampled event stream reproduces
``simulate_dissemination`` *exactly* — same per-broker entry counts,
same deliveries, same misses (``tests/test_runtime_engine.py``).

Everything is deterministic: the event stream comes from the caller's
RNG, link loss from a separately seeded generator, and heap ties are
broken by insertion order.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..geometry import RectSet
from ..network.tree import PUBLISHER, BrokerTree
from ..pubsub.events import EventDistribution
from ..pubsub.filters import Filter
from ..pubsub.matching import Matcher, best_matcher
from ..pubsub.simulator import (SimulationResult, root_first_order,
                                sample_event_stream)
from .telemetry import Telemetry

__all__ = ["RuntimeConfig", "RuntimeResult", "DisseminationEngine",
           "RESULT_SCHEMA_VERSION"]

#: Schema version stamped into result/telemetry JSON exports so
#: serve/runtime/bench payloads are uniformly parseable.
RESULT_SCHEMA_VERSION = 1

# Control actions run before message arrivals scheduled at the same
# timestamp (a crash at t affects the event arriving at t), and
# publishes run after arrivals so in-flight work drains first.
_PRIO_CONTROL, _PRIO_ARRIVE, _PRIO_PUBLISH = 0, 1, 2


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the discrete-event runtime."""

    publish_interval: float = 1.0   #: simulated time between published events
    service_time: float = 0.0       #: per-event service time at every broker
    queue_capacity: int | None = None  #: max ingress queue depth (None = unbounded)
    link_loss: float = 0.0          #: per-hop message loss probability
    fault_seed: int = 0             #: seed of the loss RNG (independent of events)
    trace_events: int = 0           #: record a trace span for the first N events
    max_duration: float | None = None  #: abort past this simulated time
    epoch_batch: int = 0            #: publishes serviced per matrix step (0 = scalar)

    def __post_init__(self) -> None:
        if self.epoch_batch < 0:
            raise ValueError("epoch_batch must be non-negative")
        if self.publish_interval < 0:
            raise ValueError("publish_interval must be non-negative")
        if self.max_duration is not None and self.max_duration <= 0:
            raise ValueError("max_duration must be positive (or None)")
        if self.service_time < 0:
            raise ValueError("service_time must be non-negative")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be at least 1 (or None)")
        if not (0.0 <= self.link_loss < 1.0):
            raise ValueError("link_loss must be in [0, 1)")
        if self.trace_events < 0:
            raise ValueError("trace_events must be non-negative")


@dataclass(frozen=True)
class RuntimeResult:
    """Counts and telemetry of one engine run.

    The count fields mirror :class:`~repro.pubsub.simulator.SimulationResult`
    so the two can be compared directly (see :meth:`as_simulation_result`).
    """

    num_events: int
    node_entries: np.ndarray       #: events that entered each tree node
    deliveries: np.ndarray         #: deliveries per subscriber
    missed: np.ndarray             #: matched-but-undelivered events per subscriber
    total_delivery_latency: float
    duration: float                #: simulated time of the last processed action
    queue_peaks: np.ndarray        #: max ingress queue depth seen per node
    telemetry: Telemetry
    aborted: bool = False          #: run hit the config's ``max_duration``

    @property
    def total_broker_entries(self) -> int:
        """Total inbound broker traffic (excludes the publisher itself)."""
        return int(self.node_entries[1:].sum())

    @property
    def total_deliveries(self) -> int:
        return int(self.deliveries.sum())

    @property
    def total_missed(self) -> int:
        return int(self.missed.sum())

    @property
    def mean_delivery_latency(self) -> float:
        delivered = self.deliveries.sum()
        if delivered == 0:
            return 0.0
        return self.total_delivery_latency / float(delivered)

    def empirical_bandwidth(self, domain_measure: float) -> float:
        """Traffic fraction scaled to the domain measure (see the batch sim)."""
        if self.num_events == 0:
            return 0.0
        return self.total_broker_entries / self.num_events * domain_measure

    @property
    def delivery_rate(self) -> float:
        """Fraction of matched events actually delivered (1.0 when none matched)."""
        expected = int(self.deliveries.sum()) + int(self.missed.sum())
        if expected == 0:
            return 1.0
        return float(self.deliveries.sum()) / expected

    def events_per_time(self) -> float:
        """Published events per unit of simulated time."""
        if self.duration <= 0.0:
            return 0.0
        return self.num_events / self.duration

    def as_simulation_result(self) -> SimulationResult:
        """View as a batch :class:`SimulationResult` for metric reuse."""
        return SimulationResult(
            num_events=self.num_events,
            node_entries=self.node_entries,
            deliveries=self.deliveries,
            missed=self.missed,
            total_delivery_latency=self.total_delivery_latency)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export sharing the bench payloads' schema fields.

        Deterministic (no provenance); :meth:`dump` adds the git/host
        metadata block so runtime outputs parse like ``BENCH_*.json``.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": "runtime_result",
            "num_events": self.num_events,
            "node_entries": self.node_entries.tolist(),
            "deliveries": self.deliveries.tolist(),
            "missed": self.missed.tolist(),
            "total_delivery_latency": self.total_delivery_latency,
            "duration": self.duration,
            "queue_peaks": self.queue_peaks.tolist(),
            "aborted": self.aborted,
            "delivery_rate": self.delivery_rate,
            "telemetry": self.telemetry.to_dict(),
        }

    def dump(self, path: str, *,
             params: dict[str, Any] | None = None) -> None:
        """Write :meth:`to_dict` plus the provenance metadata block.

        ``params`` (e.g. the CLI's ``--epoch-batch``) is stamped into the
        payload so the provenance records how the run was produced.
        """
        from ..bench.harness import run_metadata
        payload = self.to_dict()
        if params:
            payload["params"] = dict(params)
        payload["metadata"] = run_metadata()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")


class _BrokerState:
    """Mutable per-broker runtime state: liveness, queue, service."""

    __slots__ = ("alive", "busy", "queue", "peak")

    def __init__(self) -> None:
        self.alive = True
        self.busy = False
        self.queue: deque[tuple[int, float]] = deque()  # (event idx, arrival t)
        self.peak = 0


class DisseminationEngine:
    """The discrete-event runtime over one broker tree.

    Parameters
    ----------
    tree, filters, assignment, subscriptions:
        Exactly the batch simulator's inputs; ``assignment[j]`` is the
        leaf node id serving subscriber ``j`` or ``-1`` for an inactive
        subscriber (churn).  Filters and assignment may be replaced
        mid-run via :meth:`update_filters` / :meth:`update_assignment`
        (the fault and replay drivers do).
    subscriber_points:
        Optional subscriber network positions; adds the leaf-to-subscriber
        last hop to delivery latency, matching the batch simulator.
    delivery_members:
        Optional subscriber indices this engine accounts deliveries for
        (a shard's subgroup).  The *control plane* — forwarding, queues,
        loss draws, faults, failover — is subscriber-independent and runs
        in full; only matched/delivery counters and latency groups are
        restricted, so summing disjoint shards reproduces the full run.
    defer_delivery_fold:
        Skip the run-end canonical latency fold (and the
        ``missed_deliveries`` counter); a sharded run's parent performs
        the one global fold over :meth:`drain_delivery_groups` instead.
    epoch_matcher:
        Pre-built matcher for epoch mode, rows over ``delivery_members``
        (or the full population).  Shard workers inject a cover-filtered
        one; ``None`` builds :func:`best_matcher` lazily.
    """

    def __init__(self,
                 tree: BrokerTree,
                 filters: dict[int, Filter],
                 assignment: np.ndarray,
                 subscriptions: RectSet,
                 *,
                 config: RuntimeConfig | None = None,
                 subscriber_points: np.ndarray | None = None,
                 telemetry: Telemetry | None = None,
                 delivery_members: np.ndarray | None = None,
                 defer_delivery_fold: bool = False,
                 epoch_matcher: Matcher | None = None):
        self.tree = tree
        self.config = config or RuntimeConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()

        for node in range(1, tree.num_nodes):
            if node not in filters:
                raise ValueError(f"missing filter for broker node {node}")
        self._filters = dict(filters)

        self._subscriptions = subscriptions
        assignment = np.asarray(assignment, dtype=int).copy()
        if assignment.shape != (len(subscriptions),):
            raise ValueError("assignment must map every subscriber to a leaf "
                             "node id (or -1 for inactive)")
        self._assignment = assignment
        if subscriber_points is not None:
            pts = np.asarray(subscriber_points, dtype=float)
            if pts.shape[0] != len(subscriptions):
                raise ValueError("one network position per subscriber required")
            self._subscriber_points: np.ndarray | None = pts
        else:
            self._subscriber_points = None

        # Hop latency parent -> node, per node (publisher row unused).
        parents = tree.parents
        self._hop = np.zeros(tree.num_nodes)
        for v in range(1, tree.num_nodes):
            self._hop[v] = tree.down_latency[v] - tree.down_latency[int(parents[v])]

        self._brokers = [_BrokerState() for _ in range(tree.num_nodes)]
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._controls: list[tuple[float, Callable[
            ["DisseminationEngine", float], None]]] = []
        self._loss_rng = np.random.default_rng(self.config.fault_seed)
        self._failover: Callable[["DisseminationEngine", float, int], None] | None = None

        m = len(subscriptions)
        if delivery_members is not None:
            members = np.unique(np.asarray(delivery_members, dtype=int))
            if len(members) and (members[0] < 0 or members[-1] >= m):
                raise ValueError("delivery_members must be valid subscriber "
                                 "indices")
            self._delivery_members: np.ndarray | None = members
            self._member_mask: np.ndarray | None = np.zeros(m, dtype=bool)
            self._member_mask[members] = True
            # Full index -> local matcher row (-1 outside the subgroup).
            self._member_rows: np.ndarray | None = np.full(m, -1, dtype=int)
            self._member_rows[members] = np.arange(len(members))
        else:
            self._delivery_members = None
            self._member_mask = None
            self._member_rows = None
        self._defer_delivery_fold = bool(defer_delivery_fold)
        self._node_entries = np.zeros(tree.num_nodes, dtype=np.int64)
        self._deliveries = np.zeros(m, dtype=np.int64)
        self._matched = np.zeros(m, dtype=np.int64)
        self._total_latency = 0.0
        self._now = 0.0
        self._events: np.ndarray | None = None
        self._traces: list[Any] = []

        # Epoch-mode machinery (see run()): a parent-before-child node
        # order for level-wise matrix steps, a min-heap of pending
        # control times (the epoch barriers), a watermark of publishes
        # consumed by matrix blocks, and the per-(event, leaf) delivery
        # latency groups accumulated in canonical order at run end so
        # scalar and epoch stepping produce the identical float total.
        self._order = root_first_order(tree)
        self._pending_controls: list[float] = []
        self._running = False
        self._published_through = 0
        self._delivery_groups: list[
            tuple[int, int, np.ndarray, np.ndarray]] = []
        self._epoch_matcher = epoch_matcher
        self._run_interval = self.config.publish_interval
        self._run_domain: Any = None

    # -- live state accessors ------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def assignment(self) -> np.ndarray:
        return self._assignment.copy()

    @property
    def filters(self) -> dict[int, Filter]:
        return dict(self._filters)

    def is_alive(self, node: int) -> bool:
        return self._brokers[node].alive

    @property
    def alive_mask(self) -> np.ndarray:
        return np.array([b.alive for b in self._brokers], dtype=bool)

    def reachable_leaf_rows(self) -> np.ndarray:
        """Boolean mask over leaf rows whose full path to the root is alive."""
        alive = self.alive_mask
        mask = np.zeros(self.tree.num_leaves, dtype=bool)
        for row, leaf in enumerate(self.tree.leaves):
            mask[row] = all(alive[v] for v in self.tree.path_to_root(int(leaf))
                            if v != PUBLISHER)
        return mask

    # -- mid-run mutation (faults / churn drivers) ---------------------------

    def update_filters(self, filters: dict[int, Filter]) -> None:
        """Replace broker filters (e.g. after failover regrowth)."""
        self._filters.update(filters)

    def update_assignment(self, assignment: np.ndarray) -> None:
        """Replace the subscriber -> leaf assignment (churn, failover)."""
        assignment = np.asarray(assignment, dtype=int)
        if assignment.shape != self._assignment.shape:
            raise ValueError("assignment shape must not change mid-run")
        self._assignment[:] = assignment

    def set_failover(self, handler: Callable[
            ["DisseminationEngine", float, int], None] | None) -> None:
        """Install a crash handler ``handler(engine, time, crashed_node)``."""
        self._failover = handler

    def schedule(self, time: float,
                 action: Callable[["DisseminationEngine", float], None]) -> None:
        """Schedule ``action(engine, time)`` as a control at a simulated time.

        Valid both before and during :meth:`run`: a control scheduled
        mid-run (e.g. a delayed failover repair) goes straight into the
        live heap.  (Before this, mid-run controls landed in the pre-run
        staging list — already drained — and silently never fired.)
        """
        time = float(time)
        if self._running:
            heapq.heappush(self._pending_controls, time)
            self._push(time, _PRIO_CONTROL, action)
        else:
            self._controls.append((time, action))

    def schedule_crash(self, time: float, node: int) -> None:
        self._validate_broker(node)
        self.schedule(time, lambda eng, t, _n=node: eng._crash(_n, t))

    def schedule_recover(self, time: float, node: int) -> None:
        self._validate_broker(node)
        self.schedule(time, lambda eng, t, _n=node: eng._recover(_n, t))

    def _validate_broker(self, node: int) -> None:
        if not (0 < node < self.tree.num_nodes):
            raise ValueError(f"node {node} is not a broker "
                             f"(valid: 1..{self.tree.num_nodes - 1})")

    # -- fault transitions ---------------------------------------------------

    def _crash(self, node: int, time: float) -> None:
        state = self._brokers[node]
        if not state.alive:
            return
        state.alive = False
        dropped = len(state.queue) + (1 if state.busy else 0)
        if dropped:
            self.telemetry.counter("events_lost_crashed").inc(dropped)
        state.queue.clear()
        state.busy = False
        self.telemetry.counter("broker_crashes").inc()
        self.telemetry.span(f"outage[node={node}]", time, node=node)
        if self._failover is not None:
            self._failover(self, time, node)

    def _recover(self, node: int, time: float) -> None:
        state = self._brokers[node]
        if state.alive:
            return
        state.alive = True
        self.telemetry.counter("broker_recoveries").inc()
        for span in self.telemetry.find_spans(f"outage[node={node}]"):
            if span.end is None:
                span.close(time)

    # -- the run -------------------------------------------------------------

    def run(self,
            distribution: EventDistribution,
            rng: np.random.Generator,
            num_events: int,
            chunk_size: int = 512) -> RuntimeResult:
        """Publish ``num_events`` sampled events and drain the overlay.

        The stream is sampled with the same chunking as the batch
        simulator, so the same ``rng`` state yields the identical
        sequence of event points.
        """
        if num_events < 0:
            raise ValueError("num_events must be non-negative")
        self._events = sample_event_stream(distribution, rng, num_events,
                                           chunk_size)
        for time, action in sorted(self._controls, key=lambda c: c[0]):
            self._push(time, _PRIO_CONTROL, action)
            heapq.heappush(self._pending_controls, time)
        self._controls.clear()
        for k in range(num_events):
            self._push(k * self.config.publish_interval, _PRIO_PUBLISH, k)

        self._running = True
        self._published_through = 0
        self._run_interval = self.config.publish_interval
        self._run_domain = distribution.domain

        aborted = False
        max_duration = self.config.max_duration
        heap = self._heap
        while heap:
            time, prio, _seq, payload = heapq.heappop(heap)
            if max_duration is not None and time > max_duration:
                # The guard against runaway replays: everything still
                # scheduled lies beyond the budget, so stop here.
                aborted = True
                self.telemetry.counter("aborted_max_duration").inc()
                heap.clear()
                break
            self._now = max(self._now, time)
            if prio == _PRIO_CONTROL:
                heapq.heappop(self._pending_controls)
                payload(self, time)
            elif prio == _PRIO_PUBLISH:
                k = int(payload)
                if k < self._published_through:
                    continue  # consumed by an earlier epoch block
                if self._epoch_eligible() and k >= self.config.trace_events:
                    if self._epoch_matcher is None:
                        self._epoch_matcher = best_matcher(
                            self._delivery_subscriptions(), self._run_domain)
                    self._publish_epoch(k)
                else:
                    self._publish(k, time)
                    self._published_through = k + 1
            else:
                node, event_idx, kind = payload
                if kind == "arrive":
                    self._arrive(node, event_idx, time)
                else:
                    self._serve(node, event_idx, time)
        self._running = False

        # Delivery latency accumulates in canonical (event, leaf) order —
        # the scalar heap order and the epoch block order both reduce to
        # this one sequence of float additions, which is what makes the
        # two modes bit-identical (and histograms reproducible).  Sharded
        # runs defer the fold: the parent merges every shard's groups
        # into the one global canonical sequence instead.
        if not self._defer_delivery_fold:
            for _event, _leaf, _receivers, latency in sorted(
                    self._delivery_groups, key=lambda g: (g[0], g[1])):
                self._total_latency += float(latency.sum())
                self.telemetry.histogram(
                    "delivery_latency").observe_many(latency)
            self._delivery_groups.clear()

        for span in self.telemetry.open_spans():
            span.close(self._now)
        missed = np.maximum(self._matched - self._deliveries, 0)
        if not self._defer_delivery_fold:
            self.telemetry.counter("missed_deliveries").inc(int(missed.sum()))
        peaks = np.array([b.peak for b in self._brokers], dtype=np.int64)
        if peaks.size:
            self.telemetry.gauge("queue_depth_peak").set(int(peaks.max()))
        return RuntimeResult(
            num_events=num_events,
            node_entries=self._node_entries.copy(),
            deliveries=self._deliveries.copy(),
            missed=missed,
            total_delivery_latency=self._total_latency,
            duration=self._now,
            queue_peaks=peaks,
            telemetry=self.telemetry,
            aborted=aborted)

    def _push(self, time: float, prio: int, payload: Any) -> None:
        heapq.heappush(self._heap, (time, prio, self._seq, payload))
        self._seq += 1

    def _delivery_subscriptions(self) -> RectSet:
        """The subscription rows this engine accounts deliveries for."""
        if self._delivery_members is None:
            return self._subscriptions
        return self._subscriptions.take(self._delivery_members)

    def _epoch_eligible(self) -> bool:
        """Can the next publish run as a matrix step, per the *current* config?

        Epoch mode engages only where a matrix step is provably
        equivalent to scalar stepping: instantaneous service, no
        backpressure, no link-loss RNG draws, strictly increasing publish
        times (then no arrival can ever find a broker busy, so queue
        state is trivial between control barriers).

        Re-evaluated at every publish rather than latched at run start: a
        control action may swap ``self.config`` mid-run (a fault handler
        enabling service time, a replay driver adding backpressure), and
        a stale gate would keep matrix-stepping under assumptions that no
        longer hold.  A changed publish interval also disqualifies the
        fast path — the publish heap was laid out with the run-start
        interval, so matrix time vectors would disagree with the heap.
        """
        config = self.config
        return (config.epoch_batch > 0
                and config.service_time == 0.0
                and config.queue_capacity is None
                and config.link_loss == 0.0
                and config.publish_interval > 0.0
                and config.publish_interval == self._run_interval)

    def drain_delivery_groups(
            self) -> list[tuple[int, int, np.ndarray, np.ndarray]]:
        """Canonically ordered ``(event, leaf, receivers, latencies)`` groups.

        Only meaningful after a ``defer_delivery_fold`` run: the shard
        parent concatenates every shard's groups per ``(event, leaf)``
        key, re-sorts by receiver index, and performs the single global
        latency fold the unsharded engine would have done.
        """
        groups = sorted(self._delivery_groups, key=lambda g: (g[0], g[1]))
        self._delivery_groups.clear()
        return groups

    # -- message lifecycle ---------------------------------------------------

    def _publish(self, k: int, time: float) -> None:
        point = self._events[k]
        self._node_entries[PUBLISHER] += 1
        self.telemetry.counter("events_published").inc()

        # Record which active subscribers *should* receive this event;
        # deliveries are debited against this at the end of the run.
        active = self._assignment >= 0
        if self._member_mask is not None:
            active = active & self._member_mask
        if active.any():
            matches = self._subscriptions.contains_points(
                point[None, :])[:, 0] & active
            self._matched[matches] += 1

        if k < self.config.trace_events:
            span = self.telemetry.span(f"event[{k}]", time, event=k, hops=0,
                                       deliveries=0)
            self._traces.append(span)

        self._forward(PUBLISHER, k, time)

    def _publish_epoch(self, k: int) -> None:
        """Service a contiguous run of publishes as one matrix step.

        Semantics and bit-identity: under the epoch preconditions every
        action of event ``j`` happens at ``t_j = j * publish_interval``
        plus a chain of hop latencies, so the exact per-node arrival
        times of a whole candidate block are one level-wise matrix
        recurrence (the identical float additions the scalar heap would
        perform).  The block is cut to the longest prefix whose events
        complete strictly *before* the next pending control time (and
        within ``max_duration``), so crash/recover/churn barriers see
        exactly the scalar engine's state.  Counts are the same boolean
        matrices summed; latency groups enter the same canonical
        accumulator as the scalar path.
        """
        config = self.config
        tree = self.tree
        end = min(k + config.epoch_batch, len(self._events))
        t_vec = np.arange(k, end, dtype=np.int64) * config.publish_interval
        arrive = np.empty((tree.num_nodes, len(t_vec)))
        arrive[PUBLISHER] = t_vec
        for node in self._order[1:]:
            arrive[node] = (arrive[int(tree.parents[node])]
                            + self._hop[node])
        bound = arrive.max(axis=0)   # conservative: over all nodes
        barrier = (self._pending_controls[0] if self._pending_controls
                   else np.inf)
        ok = bound < barrier
        if config.max_duration is not None:
            ok &= bound <= config.max_duration
        n = len(ok) if bool(ok.all()) else int(np.argmin(ok))
        if n == 0:
            # The very next event straddles a barrier: step it scalar.
            self._publish(k, float(t_vec[0]))
            self._published_through = k + 1
            return

        pts = self._events[k:k + n]
        t_vec = t_vec[:n]
        arrive = arrive[:, :n]
        self._node_entries[PUBLISHER] += n
        self.telemetry.counter("events_published").inc(n)

        # Matcher rows are local to the delivery subgroup (the full
        # population when unsharded); `_member_rows` maps full indices
        # to rows so leaf member lookups stay over the global assignment.
        match = self._epoch_matcher.match_points(pts)  # (rows, n) bool
        active = self._assignment >= 0
        if self._delivery_members is None:
            if active.any():
                self._matched += (match & active[:, None]).sum(axis=1)
        else:
            act = active[self._delivery_members]
            if act.any():
                self._matched[self._delivery_members] += (
                    match & act[:, None]).sum(axis=1)

        # Level-wise entry masks: an event arrives at a node iff it
        # entered the (alive) parent and the node's filter contains it;
        # arrivals at a crashed node are lost, not forwarded.
        entered = np.zeros((tree.num_nodes, n), dtype=bool)
        entered[PUBLISHER] = True
        arrived_any = np.zeros((tree.num_nodes, n), dtype=bool)
        entries = 0
        lost = 0
        for node in self._order[1:]:
            parent = int(tree.parents[node])
            if not entered[parent].any():
                continue
            arrived = entered[parent] & self._filters[node].contains_points(pts)
            count = int(arrived.sum())
            if count == 0:
                continue
            arrived_any[node] = arrived
            if self._brokers[node].alive:
                entered[node] = arrived
                self._node_entries[node] += count
                entries += count
            else:
                lost += count
        if entries:
            self.telemetry.counter("broker_entries").inc(entries)
        if lost:
            self.telemetry.counter("events_lost_crashed").inc(lost)

        delivered_total = 0
        for leaf in tree.leaves:
            leaf = int(leaf)
            col = entered[leaf]
            if not col.any():
                continue
            members = np.flatnonzero(self._assignment == leaf)
            if self._member_mask is not None:
                members = members[self._member_mask[members]]
            if len(members) == 0:
                continue
            rows = (members if self._member_rows is None
                    else self._member_rows[members])
            delivered = match[rows] & col[None, :]
            counts = delivered.sum(axis=1)
            self._deliveries[members] += counts
            if not counts.any():
                continue
            delivered_total += int(counts.sum())
            hop = None
            if self._subscriber_points is not None:
                hop = np.linalg.norm(
                    tree.positions[leaf] - self._subscriber_points[members],
                    axis=1)
            for i in range(n):
                mask = delivered[:, i]
                receivers = int(mask.sum())
                if receivers == 0:
                    continue
                latency = np.full(receivers,
                                  float(arrive[leaf, i]) - float(t_vec[i]))
                if hop is not None:
                    latency = latency + hop[mask]
                self._delivery_groups.append(
                    (k + i, leaf, members[mask], latency))
        if delivered_total:
            self.telemetry.counter("deliveries").inc(delivered_total)

        # Advance the clock to the block's last *processed* action: the
        # final publish, or the latest arrival that actually happened.
        completion = float(t_vec[-1])
        if arrived_any.any():
            completion = max(completion, float(arrive[arrived_any].max()))
        self._now = max(self._now, completion)
        self._published_through = k + n

    def _forward(self, node: int, k: int, time: float) -> None:
        """Send event ``k`` from ``node`` to each matching child."""
        point = self._events[k]
        for child in self.tree.children(node):
            if not self._filters[child].contains_point(point):
                continue
            if self.config.link_loss > 0.0 and \
                    self._loss_rng.random() < self.config.link_loss:
                self.telemetry.counter("link_drops").inc()
                continue
            self._push(time + self._hop[child], _PRIO_ARRIVE,
                       (child, k, "arrive"))

    def _arrive(self, node: int, k: int, time: float) -> None:
        state = self._brokers[node]
        if not state.alive:
            self.telemetry.counter("events_lost_crashed").inc()
            return
        self._node_entries[node] += 1
        self.telemetry.counter("broker_entries").inc()
        if k < self.config.trace_events:
            span = self._traces[k]
            span.attributes["hops"] += 1
            span.end = time

        if state.busy:
            capacity = self.config.queue_capacity
            if capacity is not None and len(state.queue) >= capacity:
                self.telemetry.counter("events_dropped_backpressure").inc()
                return
            state.queue.append((k, time))
            state.peak = max(state.peak, len(state.queue))
        else:
            state.busy = True
            self._push(time + self.config.service_time, _PRIO_ARRIVE,
                       (node, k, "serve"))

    def _serve(self, node: int, k: int, time: float) -> None:
        state = self._brokers[node]
        if not state.alive:
            # Crash raced the in-flight service completion; already counted.
            return
        if self.tree.is_leaf(node):
            self._deliver(node, k, time)
        self._forward(node, k, time)

        if state.queue:
            next_k, queued_at = state.queue.popleft()
            self.telemetry.histogram("queue_wait").observe(time - queued_at)
            self._push(time + self.config.service_time, _PRIO_ARRIVE,
                       (node, next_k, "serve"))
        else:
            state.busy = False

    def _deliver(self, leaf: int, k: int, time: float) -> None:
        members = np.flatnonzero(self._assignment == leaf)
        if self._member_mask is not None:
            members = members[self._member_mask[members]]
        if len(members) == 0:
            return
        point = self._events[k]
        mask = self._subscriptions.take(members).contains_points(
            point[None, :])[:, 0]
        receivers = members[mask]
        if len(receivers) == 0:
            return
        self._deliveries[receivers] += 1
        publish_time = k * self.config.publish_interval
        latency = np.full(len(receivers), time - publish_time)
        if self._subscriber_points is not None:
            latency = latency + np.linalg.norm(
                self.tree.positions[leaf] - self._subscriber_points[receivers],
                axis=1)
        # Accumulated at run end in canonical (event, leaf) order; see run().
        self._delivery_groups.append((k, leaf, receivers, latency))
        self.telemetry.counter("deliveries").inc(len(receivers))
        if k < self.config.trace_events:
            span = self._traces[k]
            span.attributes["deliveries"] += len(receivers)
            span.end = time
