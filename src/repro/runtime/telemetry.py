"""Runtime telemetry: counters, gauges, histograms, and trace spans.

The discrete-event engine emits everything through one
:class:`Telemetry` instance so a run's behaviour can be inspected after
the fact — delivered/lost/dropped counts, queue depth peaks, delivery
latency distributions, and spans marking intervals of interest (broker
outages, per-event dissemination traces).  All state is plain Python and
numpy, is fully deterministic given a deterministic event sequence, and
exports to a JSON-serializable dict (:meth:`Telemetry.to_dict`) or a
JSON string/file (:meth:`Telemetry.to_json` / :meth:`Telemetry.dump`).

Histograms are streaming: fixed bucket boundaries, so observing a value
is O(log #buckets) and memory does not grow with the number of
observations.  Quantiles are therefore bucket-resolution estimates.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "TraceSpan", "Telemetry",
           "default_latency_buckets", "TELEMETRY_SCHEMA_VERSION"]

#: Version of the exported JSON layout; parsers key on it, and every
#: export carries it so serve/runtime/bench payloads read uniformly.
TELEMETRY_SCHEMA_VERSION = 1


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        self._value += int(amount)

    def reset_to(self, value: int) -> None:
        """Overwrite the count.

        For merge paths only (a shard parent replacing a shard-local
        tally with the global one); live accounting must use :meth:`inc`.
        """
        if value < 0:
            raise ValueError("counters cannot be negative")
        self._value = int(value)

    @property
    def value(self) -> int:
        return self._value

    def to_dict(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value tracking its last / min / max over the run."""

    __slots__ = ("name", "_last", "_min", "_max", "_updates")

    def __init__(self, name: str):
        self.name = name
        self._last: float | None = None
        self._min: float | None = None
        self._max: float | None = None
        self._updates = 0

    def set(self, value: float) -> None:
        value = float(value)
        self._last = value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self._updates += 1

    @property
    def last(self) -> float | None:
        return self._last

    @property
    def max(self) -> float | None:
        return self._max

    @property
    def min(self) -> float | None:
        return self._min

    def to_dict(self) -> dict[str, Any]:
        return {"last": self._last, "min": self._min, "max": self._max,
                "updates": self._updates}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._last}, max={self._max})"


def default_latency_buckets() -> tuple[float, ...]:
    """Geometric bucket upper bounds covering this repo's latency scales.

    Network coordinates live in roughly ``[0, 100]^d``, so path latencies
    range from sub-1 to a few hundred; the spread covers both comfortably.
    """
    return tuple(0.5 * (2.0 ** k) for k in range(14))  # 0.5 .. 4096


class Histogram:
    """A fixed-bucket streaming histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bucket boundaries; values above the
    last boundary land in a final overflow bucket.
    """

    __slots__ = ("name", "_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None):
        self.name = name
        bounds = tuple(float(b) for b in
                       (bounds if bounds is not None else default_latency_buckets()))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self._bounds = bounds
        self._counts = np.zeros(len(bounds) + 1, dtype=np.int64)
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    def observe_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(np.asarray(self._bounds), values, side="left")
        np.add.at(self._counts, idx, 1)
        self._count += int(values.size)
        self._sum += float(values.sum())
        lo, hi = float(values.min()), float(values.max())
        self._min = lo if self._min is None else min(self._min, lo)
        self._max = hi if self._max is None else max(self._max, hi)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket).

        Returns 0.0 for an empty histogram.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        running = 0
        for k, c in enumerate(self._counts):
            running += int(c)
            if running >= rank:
                if k < len(self._bounds):
                    return self._bounds[k]
                return self._max if self._max is not None else 0.0
        return self._max if self._max is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "buckets": [{"le": b, "count": int(c)}
                        for b, c in zip(self._bounds, self._counts)]
                       + [{"le": None, "count": int(self._counts[-1])}],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._count}, mean={self.mean:.3g})"


@dataclass
class TraceSpan:
    """A named interval of simulated time with free-form attributes.

    ``end`` stays ``None`` while the span is open; the engine closes any
    still-open span at the end of a run.
    """

    name: str
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        if self.end is None:
            return None
        return self.end - self.start

    def close(self, end: float) -> None:
        if self.end is not None:
            raise ValueError(f"span {self.name!r} is already closed")
        if end < self.start:
            raise ValueError(f"span {self.name!r} cannot end before it starts")
        self.end = float(end)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "start": self.start, "end": self.end,
                "duration": self.duration, "attributes": dict(self.attributes)}


class Telemetry:
    """A registry of named counters, gauges, histograms, and spans."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: list[TraceSpan] = []

    # -- instrument accessors (create on first use) -------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str,
                  bounds: tuple[float, ...] | None = None) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    def span(self, name: str, start: float, **attributes: Any) -> TraceSpan:
        """Open a new span; the caller closes it (or the engine does at end)."""
        span = TraceSpan(name=name, start=float(start), attributes=attributes)
        self._spans.append(span)
        return span

    @property
    def spans(self) -> list[TraceSpan]:
        return self._spans

    def open_spans(self) -> list[TraceSpan]:
        return [s for s in self._spans if s.end is None]

    def find_spans(self, name: str) -> list[TraceSpan]:
        return [s for s in self._spans if s.name == name]

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "counters": {k: c.to_dict() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.to_dict() for k, g in sorted(self._gauges.items())},
            "histograms": {k: h.to_dict()
                           for k, h in sorted(self._histograms.items())},
            "spans": [s.to_dict() for s in self._spans],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def dump(self, path: str) -> None:
        """Write the JSON export with the bench payloads' provenance block.

        ``to_json`` stays deterministic (run-to-run comparable); the
        file form additionally records git commit, timestamp, and host —
        the same metadata ``BENCH_*.json`` carries — so persisted
        telemetry is interpretable long after the run.
        """
        from ..bench.harness import run_metadata  # lazy: avoids cycles
        payload = self.to_dict()
        payload["metadata"] = run_metadata()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")

    def __repr__(self) -> str:
        return (f"Telemetry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, spans={len(self._spans)})")
