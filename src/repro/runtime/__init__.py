"""Discrete-event dissemination runtime: queues, faults, churn, telemetry.

The static algorithms pick an assignment; this package runs it.  A
deterministic event-heap engine pushes sampled events through the broker
tree with per-link latencies, per-broker ingress queues, and service
rates; fault injection crashes brokers and drops links with greedy
failover re-assignment; a replay driver plays `repro.dynamic` churn
traces mid-run; and a telemetry layer records counters, gauges, latency
histograms, and trace spans with JSON export.

With zero faults, zero service time, and a frozen population the engine
reproduces :func:`repro.pubsub.simulate_dissemination` exactly on a
shared RNG seed — the batch model is the runtime's correctness anchor.
"""

from .engine import DisseminationEngine, RuntimeConfig, RuntimeResult
from .faults import BrokerOutage, FaultPlan, GreedyFailover, apply_fault_plan
from .replay import ReplayConfig, replay_churn
from .telemetry import Counter, Gauge, Histogram, Telemetry, TraceSpan

__all__ = [
    "DisseminationEngine",
    "RuntimeConfig",
    "RuntimeResult",
    "BrokerOutage",
    "FaultPlan",
    "GreedyFailover",
    "apply_fault_plan",
    "ReplayConfig",
    "replay_churn",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "TraceSpan",
]
