"""Fault injection for the dissemination runtime, with graceful degradation.

Two fault families:

* **Broker outages** — scheduled crash/recover windows.  A crashed
  broker drops its queue, loses in-flight arrivals, and blocks its whole
  subtree (descendant leaves become unreachable).  Telemetry records one
  span per outage window.
* **Probabilistic link loss** — each forwarding hop independently drops
  the message with a configured probability (driven by the engine's
  dedicated loss RNG, so the published event stream stays untouched).

Graceful degradation is **failover re-assignment**: when a broker
crashes, the subscribers whose assigned leaf became unreachable are
re-assigned to reachable, latency-feasible leaves with the same online
greedy rule the dynamic manager uses (least filter enlargement along the
path, load-aware tie-break), and the surviving brokers' filters are
grown to cover the migrants so deliveries resume immediately.  This is
exactly the paper's online-arrival machinery (`repro.core.greedy` /
`repro.dynamic`) reused as a repair step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.greedy import _TreeFilterState, _greedy_assign_one
from ..core.problem import SAProblem
from ..network.tree import PUBLISHER
from .engine import DisseminationEngine

__all__ = ["BrokerOutage", "FaultPlan", "GreedyFailover", "apply_fault_plan"]


@dataclass(frozen=True)
class BrokerOutage:
    """One crash window: ``node`` is down from ``start`` until ``end``.

    ``end=None`` means the broker never recovers within the run.
    """

    node: int
    start: float
    end: float | None = None

    def __post_init__(self) -> None:
        if self.node == PUBLISHER:
            raise ValueError("the publisher (node 0) cannot crash")
        if self.start < 0:
            raise ValueError("outage start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("outage end must come after its start")


@dataclass(frozen=True)
class FaultPlan:
    """A full fault scenario: outages plus optional link loss."""

    outages: tuple[BrokerOutage, ...] = field(default=())
    #: delay between a crash and the failover repair kicking in (models
    #: failure-detection lag); deliveries to orphans are lost meanwhile.
    failover_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.failover_delay < 0:
            raise ValueError("failover_delay must be non-negative")


class GreedyFailover:
    """Re-assign orphaned subscribers of unreachable leaves, greedily.

    Instances are installed on an engine via :func:`apply_fault_plan`
    (or ``engine.set_failover``) and invoked on every crash.  The repair:

    1. find leaves whose path to the publisher crosses a dead broker;
    2. for each active subscriber assigned there, pick a reachable
       latency-feasible leaf by least filter enlargement (online greedy
       rule, restricted to reachable leaves);
    3. grow the surviving filters along the new paths and hand both the
       new assignment and filters back to the engine.

    Telemetry: ``failover_migrations`` counts moved subscribers,
    ``failover_latency_violations`` counts migrants placed best-effort
    because no reachable leaf met their latency budget, and
    ``failover_stranded`` counts orphans left in place because *no* leaf
    was reachable at all (they accrue misses until a recovery).
    """

    def __init__(self, problem: SAProblem, *, delay: float = 0.0):
        self.problem = problem
        self.delay = float(delay)

    def __call__(self, engine: DisseminationEngine, time: float,
                 node: int) -> None:
        if self.delay > 0.0:
            engine.schedule(time + self.delay,
                            lambda eng, t: self.repair(eng, t))
        else:
            self.repair(engine, time)

    def repair(self, engine: DisseminationEngine, time: float) -> None:
        problem = self.problem
        tree = problem.tree
        reachable = engine.reachable_leaf_rows()
        if reachable.all():
            return  # a recovery beat the delayed repair; nothing orphaned
        assignment = engine.assignment

        unreachable_leaves = set(
            int(leaf) for row, leaf in enumerate(tree.leaves)
            if not reachable[row])
        orphans = [j for j, leaf in enumerate(assignment)
                   if int(leaf) in unreachable_leaves]
        if not orphans:
            return

        if not reachable.any():
            engine.telemetry.counter("failover_stranded").inc(len(orphans))
            return

        state = _TreeFilterState(problem)
        state.load_filters(engine.filters)
        loads = problem.loads(assignment)
        stages = (problem.params.beta, problem.params.beta_max)
        active = int((assignment >= 0).sum())

        migrated = 0
        stranded = 0
        for j in orphans:
            feasible = problem.feasible_leaf[:, j] & reachable
            if not feasible.any():
                # Latency budget can't be met on any surviving leaf; fall
                # back to best-effort placement so delivery continues.
                row, _ok = _greedy_assign_one(
                    problem, state, loads, j, False, stages,
                    population=active, allowed=reachable)
                stranded += 1
            else:
                row, _ok = _greedy_assign_one(
                    problem, state, loads, j, True, stages,
                    population=active, allowed=reachable)
            old_row = tree.leaf_row(int(assignment[j]))
            loads[old_row] -= 1
            loads[row] += 1
            assignment[j] = int(tree.leaves[row])
            state.commit(row, problem.subscriptions.lo[j],
                         problem.subscriptions.hi[j])
            migrated += 1

        engine.update_assignment(assignment)
        engine.update_filters(state.to_filters(problem.event_dim))
        engine.telemetry.counter("failover_migrations").inc(migrated)
        if stranded:
            engine.telemetry.counter("failover_latency_violations").inc(stranded)
        engine.telemetry.span("failover", time, migrated=migrated,
                              stranded=stranded).close(time)


def apply_fault_plan(engine: DisseminationEngine, plan: FaultPlan,
                     problem: SAProblem | None = None, *,
                     failover: bool = True) -> None:
    """Wire a fault plan into an engine before ``run``.

    ``problem`` is required when ``failover`` is on — the repair needs
    the latency-feasibility structures.  Link loss is configured on the
    engine itself (:class:`~repro.runtime.engine.RuntimeConfig.link_loss`).
    """
    if failover:
        if problem is None:
            raise ValueError("failover repair needs the SAProblem; pass "
                             "problem= or failover=False")
        engine.set_failover(GreedyFailover(problem, delay=plan.failover_delay))
    for outage in plan.outages:
        engine.schedule_crash(outage.start, outage.node)
        if outage.end is not None:
            engine.schedule_recover(outage.end, outage.node)
