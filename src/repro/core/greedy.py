"""The greedy subscriber-assignment algorithms (paper Section III).

* **Gr** (:func:`online_greedy`) — processes subscribers in arrival order.
  For each subscriber it computes, for every *candidate* leaf broker
  (latency-feasible and not overloaded), the cost of incorporating the
  subscription into the filters along the tree path from the publisher to
  that leaf — the sum of least volume enlargements, R-tree style — and
  assigns greedily to the cheapest candidate, breaking ties toward the
  least-loaded broker.

* **Gr\\*** (:func:`offline_greedy`) — same per-subscriber step, but
  processes subscribers in ascending order of candidate-set cardinality,
  re-ordering lazily whenever a broker fills up (subscribers with fewer
  options go first, so the algorithm is less likely to be forced into a
  costly decision).

* **Gr¬l** (``online_greedy(..., respect_latency=False)``) — the paper's
  latency-blind variant used to show that ignoring a criterion produces a
  useless yardstick.

Filters are maintained incrementally as at most ``alpha`` rectangles per
broker.  Nesting is preserved exactly as in R-tree insertion: when a leaf
slot rectangle grows, the grown rectangle is propagated upward and
incorporated into an ancestor slot at every level, so each slot rectangle
is always contained in some slot of its parent.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from ..pubsub.filters import Filter
from ..geometry import RectSet
from .problem import SAProblem, SASolution

__all__ = ["online_greedy", "offline_greedy"]


class _TreeFilterState:
    """Incremental <= alpha rectangles per tree node, arrays-of-slots."""

    def __init__(self, problem: SAProblem) -> None:
        tree = problem.tree
        alpha = problem.params.alpha
        dim = problem.event_dim
        self.alpha = alpha
        self.lo = np.full((tree.num_nodes, alpha, dim), np.inf)
        self.hi = np.full((tree.num_nodes, alpha, dim), -np.inf)
        self.count = np.zeros(tree.num_nodes, dtype=int)

        # Ancestor chains per leaf row, padded with -1 at the top; chains
        # exclude the publisher (node 0), which filters everything trivially.
        chains = []
        for leaf in tree.leaves:
            path = [v for v in tree.path_to_root(int(leaf)) if v != 0]
            chains.append(path)  # leaf first, then ancestors upward
        self.max_depth = max(len(c) for c in chains)
        self.leaf_chains = np.full((len(chains), self.max_depth), -1, dtype=int)
        for row, chain in enumerate(chains):
            self.leaf_chains[row, :len(chain)] = chain

    def _slot_enlargements(self, nodes: np.ndarray, rect_lo: np.ndarray,
                           rect_hi: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                         np.ndarray, np.ndarray]:
        """Least-enlargement incorporation of one rect per node.

        ``nodes`` is a vector of node ids; ``rect_lo``/``rect_hi`` have shape
        ``(k, d)`` giving the rectangle to incorporate at each node.  Returns
        ``(cost, slot, grown_lo, grown_hi, contained)`` per node, where
        ``slot == -1`` means "open a fresh slot" and ``contained`` flags rows
        whose rect was already inside an existing slot (no state change, so
        ancestors are guaranteed to nest it too).
        """
        slot_lo = self.lo[nodes]                        # (k, alpha, d)
        slot_hi = self.hi[nodes]
        counts = self.count[nodes]                      # (k,)
        k, alpha, dim = slot_lo.shape

        used = np.arange(alpha)[None, :] < counts[:, None]          # (k, alpha)
        contains = (np.all(slot_lo <= rect_lo[:, None, :], axis=2)
                    & np.all(rect_hi[:, None, :] <= slot_hi, axis=2)
                    & used)

        grown_slot_lo = np.minimum(slot_lo, rect_lo[:, None, :])
        grown_slot_hi = np.maximum(slot_hi, rect_hi[:, None, :])
        old_volume = np.where(used, np.prod(np.maximum(slot_hi - slot_lo, 0.0),
                                            axis=2), 0.0)
        new_volume = np.prod(grown_slot_hi - grown_slot_lo, axis=2)
        enlargement = np.where(used, new_volume - old_volume, np.inf)
        enlargement = np.where(contains, 0.0, enlargement)

        best_slot = enlargement.argmin(axis=1)                        # (k,)
        best_cost = enlargement[np.arange(k), best_slot]

        rect_volume = np.prod(rect_hi - rect_lo, axis=1)
        can_open = counts < alpha
        open_better = can_open & (rect_volume < best_cost)
        no_used_slot = counts == 0

        cost = np.where(open_better | no_used_slot,
                        np.where(can_open, rect_volume, np.inf), best_cost)
        slot = np.where(open_better | no_used_slot, -1, best_slot)

        grown_lo = np.where((slot == -1)[:, None], rect_lo,
                            grown_slot_lo[np.arange(k), np.maximum(slot, 0)])
        grown_hi = np.where((slot == -1)[:, None], rect_hi,
                            grown_slot_hi[np.arange(k), np.maximum(slot, 0)])
        # When a used slot already contains the rect, the slot does not grow.
        contained = contains[np.arange(k), np.maximum(slot, 0)] & (slot >= 0)
        grown_lo = np.where(contained[:, None],
                            slot_lo[np.arange(k), np.maximum(slot, 0)], grown_lo)
        grown_hi = np.where(contained[:, None],
                            slot_hi[np.arange(k), np.maximum(slot, 0)], grown_hi)
        return cost, slot, grown_lo, grown_hi, contained

    def path_costs(self, leaf_rows: np.ndarray, sub_lo: np.ndarray,
                   sub_hi: np.ndarray) -> np.ndarray:
        """Total enlargement along each candidate leaf's path for one subscription."""
        k = len(leaf_rows)
        total = np.zeros(k)
        rect_lo = np.broadcast_to(sub_lo, (k, sub_lo.shape[0])).copy()
        rect_hi = np.broadcast_to(sub_hi, (k, sub_hi.shape[0])).copy()
        active = np.ones(k, dtype=bool)
        for level in range(self.max_depth):
            nodes = self.leaf_chains[leaf_rows, level]
            step = active & (nodes >= 0)
            if not step.any():
                break
            cost, _slot, grown_lo, grown_hi, contained = self._slot_enlargements(
                nodes[step], rect_lo[step], rect_hi[step])
            total[step] += cost
            # A rect already inside an existing slot changes nothing, and the
            # nesting invariant guarantees every ancestor also contains that
            # slot — stop propagating for those rows.
            rect_lo[step] = grown_lo
            rect_hi[step] = grown_hi
            still = np.flatnonzero(step)
            active[still[contained]] = False
        return total

    def commit(self, leaf_row: int, sub_lo: np.ndarray, sub_hi: np.ndarray) -> None:
        """Incorporate the subscription along the chosen leaf's path."""
        rect_lo, rect_hi = sub_lo, sub_hi
        for level in range(self.max_depth):
            node = int(self.leaf_chains[leaf_row, level])
            if node < 0:
                break
            _cost, slot, grown_lo, grown_hi, contained = self._slot_enlargements(
                np.array([node]), rect_lo[None, :], rect_hi[None, :])
            chosen = int(slot[0])
            if chosen == -1:
                fresh = self.count[node]
                self.lo[node, fresh] = rect_lo
                self.hi[node, fresh] = rect_hi
                self.count[node] += 1
            elif contained[0]:
                return  # already nested here and hence everywhere above
            else:
                self.lo[node, chosen] = np.minimum(self.lo[node, chosen], rect_lo)
                self.hi[node, chosen] = np.maximum(self.hi[node, chosen], rect_hi)
            rect_lo = grown_lo[0]
            rect_hi = grown_hi[0]

    def load_filters(self, filters: dict[int, Filter]) -> None:
        """Reset the slot state from explicit per-node filters.

        Used by the dynamic manager after a re-optimization: subsequent
        online arrivals grow the optimizer's filters instead of stale
        greedy ones.  Filters larger than ``alpha`` are truncated to their
        first ``alpha`` rectangles (callers pass adjusted filters, which
        respect the bound by construction).
        """
        self.lo.fill(np.inf)
        self.hi.fill(-np.inf)
        self.count.fill(0)
        for node, filt in filters.items():
            rects = filt.rects
            n = min(len(rects), self.alpha)
            if n:
                self.lo[node, :n] = rects.lo[:n]
                self.hi[node, :n] = rects.hi[:n]
                self.count[node] = n

    def to_filters(self, dim: int) -> dict[int, Filter]:
        filters: dict[int, Filter] = {}
        for node in range(1, self.lo.shape[0]):
            n = int(self.count[node])
            if n == 0:
                filters[node] = Filter.empty(dim)
            else:
                filters[node] = Filter(RectSet(self.lo[node, :n].copy(),
                                               self.hi[node, :n].copy(),
                                               validate=False))
        return filters


def _greedy_assign_one(problem: SAProblem, state: _TreeFilterState,
                       loads: np.ndarray, j: int, respect_latency: bool,
                       lbf_stages: tuple[float, ...],
                       population: int | None = None,
                       allowed: np.ndarray | None = None) -> tuple[int, bool]:
    """Assign subscriber ``j``; returns (leaf_row, load_cap_respected).

    ``population`` is the subscriber count the load caps are relative to;
    it defaults to the full problem size (offline use) and is the current
    active count in the dynamic manager.  ``allowed`` optionally restricts
    the candidate leaf rows (the runtime's failover repair excludes
    unreachable brokers); it is a hard constraint — even the best-effort
    fallback stays inside it.
    """
    m = population if population is not None else problem.num_subscribers
    if respect_latency:
        latency_ok = problem.feasible_leaf[:, j]
    else:
        latency_ok = np.ones(problem.num_leaf_brokers, dtype=bool)
    if allowed is not None:
        allowed = np.asarray(allowed, dtype=bool)
        if not allowed.any():
            raise ValueError("no allowed leaf brokers to assign to")
        latency_ok = latency_ok & allowed

    candidate_rows = np.empty(0, dtype=int)
    cap_respected = True
    for stage, lbf in enumerate(lbf_stages):
        caps = lbf * problem.kappas * m
        open_mask = (loads + 1) <= caps + 1e-9
        candidate_rows = np.flatnonzero(latency_ok & open_mask)
        if len(candidate_rows):
            break
    if not len(candidate_rows):
        # Best effort: ignore load caps entirely (paper: "we report the
        # best-effort solutions found by Gr").
        cap_respected = False
        candidate_rows = np.flatnonzero(latency_ok)
        if not len(candidate_rows):
            candidate_rows = (np.flatnonzero(allowed) if allowed is not None
                              else np.arange(problem.num_leaf_brokers))

    sub_lo = problem.subscriptions.lo[j]
    sub_hi = problem.subscriptions.hi[j]
    costs = state.path_costs(candidate_rows, sub_lo, sub_hi)
    best_cost = costs.min()
    near_best = candidate_rows[costs <= best_cost + 1e-12]
    if len(near_best) > 1:
        # Tie-break: least relative load m_i / (kappa_i m).
        relative = loads[near_best] / (problem.kappas[near_best] * m)
        winner = int(near_best[relative.argmin()])
    else:
        winner = int(near_best[0])
    return winner, cap_respected


def _finish(problem: SAProblem, state: _TreeFilterState,
            assignment_rows: np.ndarray, name: str, started: float,
            violations: int) -> SASolution:
    leaf_nodes = problem.tree.leaves[assignment_rows]
    filters = state.to_filters(problem.event_dim)
    return SASolution(
        problem=problem,
        assignment=leaf_nodes,
        filters=filters,
        info={
            "algorithm": name,
            "runtime_seconds": time.perf_counter() - started,
            "load_cap_violations": violations,
        },
    )


def online_greedy(problem: SAProblem, *, respect_latency: bool = True,
                  order: np.ndarray | None = None) -> SASolution:
    """Gr: assign subscribers one by one in (arrival) order.

    ``respect_latency=False`` yields the paper's Gr¬l variant.  ``order``
    overrides the processing order (used by ablation benches).
    """
    started = time.perf_counter()
    state = _TreeFilterState(problem)
    m = problem.num_subscribers
    loads = np.zeros(problem.num_leaf_brokers, dtype=int)
    assignment_rows = np.zeros(m, dtype=int)
    stages = (problem.params.beta, problem.params.beta_max)
    violations = 0

    sequence = np.arange(m) if order is None else np.asarray(order, dtype=int)
    for j in sequence:
        row, ok = _greedy_assign_one(problem, state, loads, int(j),
                                     respect_latency, stages)
        if not ok:
            violations += 1
        assignment_rows[j] = row
        loads[row] += 1
        state.commit(row, problem.subscriptions.lo[j], problem.subscriptions.hi[j])

    name = "Gr" if respect_latency else "Gr-no-latency"
    return _finish(problem, state, assignment_rows, name, started, violations)


def offline_greedy(problem: SAProblem) -> SASolution:
    """Gr*: process subscribers in ascending candidate-set cardinality.

    Candidate counts shrink as brokers fill; a lazy priority queue keeps
    the order current (each count decrease pushes a fresh heap entry, and
    stale entries are skipped on pop) — this is the paper's "updates the
    ordering of remaining subscribers whenever a broker becomes fully
    loaded".
    """
    started = time.perf_counter()
    state = _TreeFilterState(problem)
    m = problem.num_subscribers
    loads = np.zeros(problem.num_leaf_brokers, dtype=int)
    assignment_rows = np.zeros(m, dtype=int)
    stages = (problem.params.beta, problem.params.beta_max)
    violations = 0

    desired_caps = problem.params.beta * problem.kappas * m
    broker_open = np.ones(problem.num_leaf_brokers, dtype=bool)
    counts = problem.feasible_leaf.sum(axis=0).astype(int)
    heap: list[tuple[int, int]] = [(int(counts[j]), j) for j in range(m)]
    heapq.heapify(heap)
    done = np.zeros(m, dtype=bool)

    while heap:
        count, j = heapq.heappop(heap)
        if done[j]:
            continue
        if count != counts[j]:
            heapq.heappush(heap, (int(counts[j]), j))
            continue
        row, ok = _greedy_assign_one(problem, state, loads, j, True, stages)
        if not ok:
            violations += 1
        done[j] = True
        assignment_rows[j] = row
        loads[row] += 1
        state.commit(row, problem.subscriptions.lo[j], problem.subscriptions.hi[j])

        if broker_open[row] and (loads[row] + 1) > desired_caps[row] + 1e-9:
            # Broker just became fully loaded: shrink candidate counts of
            # remaining subscribers that could have used it.
            broker_open[row] = False
            affected = np.flatnonzero(problem.feasible_leaf[row] & ~done)
            counts[affected] -= 1
            for j2 in affected:
                heapq.heappush(heap, (int(counts[j2]), int(j2)))

    return _finish(problem, state, assignment_rows, "Gr*", started, violations)
