"""Baseline assignment algorithms from the paper's evaluation (Section VI).

These deliberately ignore one optimization criterion each; the paper uses
them to show that single-criterion solutions are poor yardsticks:

* **Closest¬b** — assign every subscriber to its nearest leaf broker in
  the network space (minimizes last-hop latency; no load cap), after
  Aguilera et al. [1].
* **Closest** — nearest broker among those not yet at their ``beta_max``
  share; a full broker is dropped from further consideration.
* **Balance** — the best achievable load-balance factor via max-flow over
  latency-feasible edges, ignoring the event space entirely.

None of these considers subscriptions, so their filters are derived after
the fact with the same bottom-up alpha-MEB construction the other
algorithms use (:func:`repro.core.problem.filters_from_assignment`) —
which is also why their bandwidth is so poor.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..flow.bipartite import min_feasible_lbf
from .problem import SAProblem, SASolution, filters_from_assignment

__all__ = ["closest_broker", "balance_assignment"]


def closest_broker(problem: SAProblem, *, enforce_load_cap: bool,
                   seed: int = 0) -> SASolution:
    """Closest (``enforce_load_cap=True``) or Closest¬b (``False``).

    Subscribers are processed in index order; with the load cap on, a
    broker that reaches ``floor(beta_max * kappa_i * m)`` subscribers stops
    accepting (the paper's Closest drops full brokers from consideration).
    """
    started = time.perf_counter()
    m = problem.num_subscribers
    # Distances, not path latencies: Closest minimizes the *last hop*.
    from ..network.space import pairwise_distances
    distances = pairwise_distances(problem.tree.leaf_positions(),
                                   problem.subscriber_points)

    caps = np.array([
        math.floor(problem.params.beta_max * kappa * m) for kappa in problem.kappas])
    loads = np.zeros(problem.num_leaf_brokers, dtype=int)
    rows = np.empty(m, dtype=int)
    for j in range(m):
        ranking = np.argsort(distances[:, j], kind="stable")
        chosen = int(ranking[0])
        if enforce_load_cap:
            for row in ranking:
                if loads[row] < caps[row]:
                    chosen = int(row)
                    break
        rows[j] = chosen
        loads[chosen] += 1

    assignment = problem.tree.leaves[rows]
    rng = np.random.default_rng(seed)
    filters = filters_from_assignment(problem, assignment, rng)
    name = "Closest" if enforce_load_cap else "Closest-no-balance"
    return SASolution(problem=problem, assignment=assignment, filters=filters,
                      info={"algorithm": name,
                            "runtime_seconds": time.perf_counter() - started})


def balance_assignment(problem: SAProblem, *, seed: int = 0,
                       beta_hi: float = 64.0) -> SASolution:
    """Balance: the assignment with the smallest achievable lbf.

    Solves a max-flow feasibility problem per probe of a binary search on
    the load-balance factor (paper: "a variant of the [graph] construction
    in Section IV-B"), with latency-feasible edges only.
    """
    started = time.perf_counter()
    candidates = [problem.candidate_leaf_rows(j)
                  for j in range(problem.num_subscribers)]
    flow = min_feasible_lbf(candidates, problem.kappas, beta_hi=beta_hi)

    rows = flow.assignment
    assignment = np.where(rows >= 0, problem.tree.leaves[np.maximum(rows, 0)], -1)
    rng = np.random.default_rng(seed)
    filters = filters_from_assignment(problem, assignment, rng)
    return SASolution(problem=problem, assignment=assignment, filters=filters,
                      info={"algorithm": "Balance",
                            "achieved_lbf": flow.achieved_beta,
                            "feasible_flow": flow.feasible,
                            "runtime_seconds": time.perf_counter() - started})
