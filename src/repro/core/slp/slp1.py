"""SLP1 — the one-level Subscriber-assignment-by-Linear-Programming
algorithm (paper Section IV).

Three steps, mirroring Figure 1 of the paper:

1. **Preliminary filter assignment** (:mod:`.sampling`): LP relaxation +
   randomized rounding over a coreset of subscriptions and a generated
   candidate-filter set, iterated with reweighted sampling.
2. **Subscription assignment** (:mod:`.assign_flow`): max-flow load
   balancing over coverage edges, escalating the lbf only as needed.
3. **Filter adjustment** (:mod:`.adjust`): tighten filters to at most
   ``alpha`` MEB clusters of the actually-assigned subscriptions.

The by-product ``fractional_bandwidth`` — the optimal LP fractional
objective — is the paper's yardstick lower bound (Section IV-D).
"""

from __future__ import annotations

import time

import numpy as np

from ...perf.cache import geometry_cache
from ...perf.profiler import span
from ..problem import SAProblem, SASolution
from .adjust import adjust_filters
from .assign_flow import assign_subscriptions
from .sampling import FilterAssignConfig, FilterAssignResult, filter_assign
from .view import view_from_problem

__all__ = ["slp1"]


def slp1(problem: SAProblem, *, seed: int = 0,
         config: FilterAssignConfig | None = None) -> SASolution:
    """Run SLP1 on a (one-level) SA problem.

    Also usable on a multi-level tree by treating every leaf as directly
    assignable (path latencies through the real tree are respected), but
    :func:`repro.core.slp.multilevel.slp` is the intended multi-level
    driver.

    The whole run shares one geometry cache, so the containment matrices
    FilterGen, LPRelax, the coverage/prune passes, and the assignment
    compute over the same rectangle sets are each computed once.
    """
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    view = view_from_problem(problem)

    with geometry_cache() as cache:
        preliminary: FilterAssignResult = filter_assign(view, rng, config)
        with span("assign"):
            outcome = assign_subscriptions(view, preliminary.filters)

        assignment = problem.tree.leaves[outcome.target_of]
        with span("adjust"):
            filters = adjust_filters(problem, assignment, rng)
        cache_stats = cache.stats()

    return SASolution(
        problem=problem,
        assignment=assignment,
        filters=filters,
        fractional_bandwidth=preliminary.fractional_objective,
        info={
            "algorithm": "SLP1",
            "runtime_seconds": time.perf_counter() - started,
            "achieved_beta": outcome.achieved_beta,
            "flow_feasible": outcome.feasible,
            "filter_assign": preliminary.info,
            "assignment": outcome.info,
            "geometry_cache": cache_stats,
        },
    )
