"""SLP1 — the one-level Subscriber-assignment-by-Linear-Programming
algorithm (paper Section IV).

Three steps, mirroring Figure 1 of the paper:

1. **Preliminary filter assignment** (:mod:`.sampling`): LP relaxation +
   randomized rounding over a coreset of subscriptions and a generated
   candidate-filter set, iterated with reweighted sampling.
2. **Subscription assignment** (:mod:`.assign_flow`): max-flow load
   balancing over coverage edges, escalating the lbf only as needed.
3. **Filter adjustment** (:mod:`.adjust`): tighten filters to at most
   ``alpha`` MEB clusters of the actually-assigned subscriptions.

With ``aggregation`` set, step 1-2 run on super-subscriptions
(:mod:`.aggregate`) and expand back to exact per-subscriber
assignments — the scaling mode for ``m ~ 10^5``.

The by-product ``fractional_bandwidth`` — the optimal LP fractional
objective — is the paper's yardstick lower bound (Section IV-D).
"""

from __future__ import annotations

import time

import numpy as np

from ...perf.cache import geometry_cache
from ...perf.fastlp import lp_workspace
from ...perf.profiler import span
from ..problem import SAProblem, SASolution
from .adjust import adjust_filters
from .aggregate import AggregationConfig, distribute_aggregated
from .assign_flow import assign_subscriptions
from .sampling import FilterAssignConfig, FilterAssignResult, filter_assign
from .view import view_from_problem

__all__ = ["slp1"]


def slp1(problem: SAProblem, *, seed: int = 0,
         config: FilterAssignConfig | None = None,
         aggregation: AggregationConfig | None = None,
         lp_workers: int | None = None) -> SASolution:
    """Run SLP1 on a (one-level) SA problem.

    Also usable on a multi-level tree by treating every leaf as directly
    assignable (path latencies through the real tree are respected), but
    :func:`repro.core.slp.multilevel.slp` is the intended multi-level
    driver.

    ``aggregation`` enables subscription aggregation (see
    :mod:`.aggregate`); ``None`` keeps the exact unaggregated pipeline,
    and so does an identity config (``max_group_size <= 1`` or a view
    below ``min_subscribers``) — bit-for-bit.  ``lp_workers`` fans
    decomposed LP blocks across a process pool.

    The whole run shares one geometry cache and one LP workspace, so the
    containment matrices FilterGen, LPRelax, the coverage/prune passes,
    and the assignment compute over the same rectangle sets are each
    computed once, and the LP solves share decomposition/memo state.
    """
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    view = view_from_problem(problem)

    with geometry_cache() as cache, lp_workspace(workers=lp_workers) as ws:
        if aggregation is not None:
            dist = distribute_aggregated(view, rng, config, aggregation)
            target_of = dist.target_of
            fractional = dist.fractional_objective
            filter_assign_info = dist.preliminary.info
            assignment_info = dist.outcome.info
            achieved_beta = dist.outcome.achieved_beta
            flow_feasible = dist.outcome.feasible
            aggregation_info = dist.info
        else:
            preliminary: FilterAssignResult = filter_assign(view, rng, config)
            with span("assign"):
                outcome = assign_subscriptions(view, preliminary.filters)
            target_of = outcome.target_of
            fractional = preliminary.fractional_objective
            filter_assign_info = preliminary.info
            assignment_info = outcome.info
            achieved_beta = outcome.achieved_beta
            flow_feasible = outcome.feasible
            aggregation_info = None

        assignment = problem.tree.leaves[target_of]
        with span("adjust"):
            filters = adjust_filters(problem, assignment, rng)
        cache_stats = cache.stats()
        lp_stats = ws.stats()

    info = {
        "algorithm": "SLP1",
        "runtime_seconds": time.perf_counter() - started,
        "achieved_beta": achieved_beta,
        "flow_feasible": flow_feasible,
        "filter_assign": filter_assign_info,
        "assignment": assignment_info,
        "geometry_cache": cache_stats,
        "lp_workspace": lp_stats,
    }
    if aggregation_info is not None:
        info["aggregation"] = aggregation_info
    return SASolution(
        problem=problem,
        assignment=assignment,
        filters=filters,
        fractional_bandwidth=fractional,
        info=info,
    )
