"""Preliminary filter assignment — FilterAssign (paper Algorithm 1).

Running LPRelax on every subscriber is intractable, so FilterAssign finds
a small *epsilon-certificate* (coreset) ``Q`` of the subscriber set: any
filter assignment covering ``Q`` epsilon-expands to cover everyone.  The
certificate is found by iterative reweighted sampling:

* maintain a weight per subscriber (reset to 1 per stage);
* sample ``q = 10 g ln g`` subscribers by weight, solve the LP on the
  sample (plus a load-balance sample ``Sb`` of size ``10 |B|``), and check
  whether the epsilon-expanded solution covers everyone;
* if not, double the weights of the uncovered subscribers and repeat —
  a *valid* iteration is one where the violators carry at most an
  ``eps`` fraction of the total weight (Lemma 3 makes this likely);
* after ``4 g ln(m / g)`` valid iterations, conclude the certificate is
  larger than ``g`` (Lemma 2) and double ``g`` (exponential search).

Every budget here follows the paper's constants; practical caps bound the
retry loops so a pathological instance degrades to a documented fallback
(one global-MEB filter per target) instead of spinning.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...geometry import RectSet
from ...perf.profiler import span
from .assign_flow import assign_subscriptions, assign_subscriptions_weighted
from .filtergen import FilterGenConfig, generate_candidate_filters
from .lp_relax import lp_relax
from .view import SLPView

__all__ = ["FilterAssignConfig", "FilterAssignResult", "filter_assign",
           "prune_redundant_rects"]


@dataclass(frozen=True)
class FilterAssignConfig:
    """Tunables of Algorithm 1 (defaults are the paper's settings)."""

    eps: float = 0.1                   #: expansion/violation tolerance
    initial_g: int = 4                 #: starting certificate-size guess
    sample_factor: float = 10.0        #: q = sample_factor * g * ln(g)
    sb_factor: int = 10                #: |Sb| = sb_factor * num_targets
    iteration_factor: float = 4.0      #: budget = iteration_factor * g * ln(m/g)
    max_invalid_retries: int = 8       #: "repeat until valid" cap
    helper_retries: int = 3            #: fresh-Sb retries inside the helper
    max_stage_iterations: int = 12     #: practical per-stage cap (paper's
    #: per-stage budget grows with g; capping it forces g to double sooner,
    #: which grows the sample — the productive direction when coverage
    #: stalls, e.g. on topic-based workloads with many distinct cells)
    max_total_iterations: int = 72     #: global cap across all stages
    require_load_feasible: bool = True  #: fold load balance into acceptance
    filtergen: FilterGenConfig = field(default_factory=FilterGenConfig)


@dataclass
class FilterAssignResult:
    """Preliminary per-target filters plus solver telemetry."""

    filters: list[RectSet]             #: epsilon-expanded preliminary filters
    fractional_objective: float | None  #: LP lower bound (None on fallback)
    info: dict[str, Any]

    @property
    def used_fallback(self) -> bool:
        return bool(self.info.get("fallback", False))


def _weighted_sample(rng: np.random.Generator, weights: np.ndarray,
                     size: int) -> np.ndarray:
    """Distinct indices sampled with probability proportional to weight."""
    m = weights.shape[0]
    size = min(size, m)
    probabilities = weights / weights.sum()
    return rng.choice(m, size=size, replace=False, p=probabilities)


def _run_helper(view: SLPView, sample: np.ndarray, rng: np.random.Generator,
                config: FilterAssignConfig) -> tuple[list[RectSet], float] | None:
    """FilterAssignHelper: add a load-balance sample, generate candidates, solve.

    Retries with a fresh ``Sb`` when a random draw makes the LP infeasible
    (paper: "to guard against the small possibility that a random choice
    of Sb makes the ... problem infeasible").
    """
    m = view.num_subscribers
    sb_size = min(config.sb_factor * view.num_targets, m)
    # The C3 budget starts at the desired lbf and escalates toward the hard
    # cap across retries: an Sb draw (or the instance itself) may be
    # load-infeasible at beta while perfectly solvable within beta_max.
    betas = np.linspace(view.beta, view.beta_max, config.helper_retries)
    for attempt in range(config.helper_retries):
        sb = rng.choice(m, size=sb_size, replace=False)
        sa = np.union1d(sample, sb)
        sb_mask = np.isin(sa, sb)

        sa_subs = view.subscriptions.take(sa)
        with span("filtergen"):
            candidates = generate_candidate_filters(
                sa_subs, view.num_targets, rng, config.filtergen,
                network_points=view.network_points[sa])
        outcome = lp_relax(sa_subs, view.feasible[:, sa], sb_mask, candidates,
                           view.kappas_effective, view.alpha,
                           float(betas[attempt]), rng,
                           weights=None if view.weights is None
                           else view.weights[sa])
        if outcome is not None:
            return outcome.filters, outcome.fractional_objective
    return None


def _fallback(view: SLPView, started: float, info: dict[str, Any]) -> FilterAssignResult:
    """One global-MEB filter per target: always covers, never cheap."""
    meb = view.subscriptions.meb()
    one = RectSet(meb.lo[None, :], meb.hi[None, :], validate=False)
    info.update(fallback=True, runtime_seconds=time.perf_counter() - started)
    return FilterAssignResult(filters=[one for _ in range(view.num_targets)],
                              fractional_objective=None, info=info)


def prune_redundant_rects(view: SLPView,
                          filters: list[RectSet]) -> list[RectSet]:
    """Drop rounded rectangles that are redundant for a feasible assignment.

    Randomized rounding inflates filters by up to ``2 ln |Sa|`` rectangles
    per broker; many are redundant.  Removing the redundant ones — largest
    volume first — tightens the preliminary filters, so the coverage edges
    the assignment step sees stay local and the final bandwidth drops.

    A removal must keep the assignment *capacity-plausible*, not merely
    covered: a rectangle is dropped only if every subscriber that would
    lose this broker keeps at least one other covering broker, and no
    broker's **exclusive demand** (subscribers it alone covers) would
    exceed its desired-lbf capacity ``floor(beta * kappa_i * m)`` — the
    exact Hall-condition failure a coverage-only prune runs into.

    Weighted views (aggregated super-subscriptions) run the same logic
    with demands in member units; with unit weights every quantity below
    reduces to the original unweighted computation exactly.
    """
    m = view.num_subscribers
    num_targets = view.num_targets
    wvec = np.ones(m) if view.weights is None \
        else view.weights.astype(float)
    caps = np.floor(view.beta * view.kappas_effective
                    * float(wvec.sum())).astype(int)
    caps = np.maximum(caps, 1)

    # Per (broker, rect): which subscribers that broker covers via it.
    rect_masks: list[list[np.ndarray]] = []
    cover = np.zeros((num_targets, m), dtype=bool)
    for i, rects in enumerate(filters):
        if len(rects) == 0:
            rect_masks.append([])
            continue
        contains = rects.containment_matrix(view.subscriptions)  # (u, m)
        masks = [contains[k] & view.feasible[i] for k in range(len(rects))]
        rect_masks.append(masks)
        if masks:
            cover[i] = np.logical_or.reduce(masks)
    cover_count = cover.sum(axis=0).astype(int)

    # Exclusive demand per broker: subscribers covered by it alone.
    exclusive = np.zeros(num_targets)
    solo = cover_count == 1
    if solo.any():
        exclusive = cover[:, solo].astype(float) @ wvec[solo]

    keep: list[np.ndarray] = [np.ones(len(f), dtype=bool) for f in filters]
    order = sorted(
        ((float(filters[i].volumes()[k]), i, k)
         for i in range(len(filters)) for k in range(len(filters[i]))),
        reverse=True)
    for _volume, i, k in order:
        if not keep[i][k]:
            continue
        others = [rect_masks[i][k2] for k2 in range(len(filters[i]))
                  if k2 != k and keep[i][k2]]
        without = np.logical_or.reduce(others) if others \
            else np.zeros(m, dtype=bool)
        lost = rect_masks[i][k] & ~without
        if not lost.any():
            keep[i][k] = False        # fully redundant within the broker
            continue
        if (cover_count[lost] < 2).any():
            continue                  # someone would lose all coverage
        # Subscribers dropping to a single coverer add exclusive demand
        # to that remaining broker; reject if any broker would overflow.
        dropping = np.flatnonzero(lost & (cover_count == 2))
        increments = np.zeros(num_targets)
        if len(dropping):
            remaining = cover[:, dropping].copy()
            remaining[i] = False
            new_solo_broker = remaining.argmax(axis=0)
            np.add.at(increments, new_solo_broker, wvec[dropping])
        if np.any(exclusive + increments > caps):
            continue
        # Aggregate guard: splitting every subscriber evenly among its
        # coverers must not push any broker past its desired-lbf capacity
        # (brokers already past it must at least not get worse).
        trial_cover = cover.copy()
        trial_cover[i] = without
        trial_count = cover_count.copy()
        trial_count[lost] -= 1
        demand = trial_cover @ (wvec / trial_count)
        current_demand = cover @ (wvec / cover_count)
        limit = np.maximum(1.1 * caps, current_demand + 1e-9)
        if np.any(demand > limit):
            continue
        keep[i][k] = False
        cover[i] = without
        cover_count[lost] = trial_count[lost]
        exclusive += increments
        exclusive[i] = float((cover[i] & (cover_count == 1)).astype(float)
                             @ wvec)
    return [filters[i].take(np.flatnonzero(keep[i])) if keep[i].any()
            else RectSet.empty(view.subscriptions.dim)
            for i in range(len(filters))]


def filter_assign(view: SLPView, rng: np.random.Generator,
                  config: FilterAssignConfig | None = None) -> FilterAssignResult:
    """Algorithm 1: a preliminary filter per target covering all subscribers."""
    config = config or FilterAssignConfig()
    started = time.perf_counter()
    m = view.num_subscribers
    info: dict[str, Any] = {"lp_calls": 0, "stages": 0, "iterations": 0}

    if not view.feasible.any(axis=0).all():
        # Some subscriber has no latency-feasible target at all; the SA
        # instance is infeasible regardless of filters.
        info["infeasible_latency"] = True
        return _fallback(view, started, info)

    best: FilterAssignResult | None = None
    best_unrouted = np.inf
    consecutive_helper_failures = 0

    g = min(config.initial_g, m)
    while g <= m and info["iterations"] < config.max_total_iterations:
        info["stages"] += 1
        # Reweighted-sampling weights; weighted views start from their
        # member counts so heavy super-subscriptions enter the sample
        # with the probability their members would have had.
        weights = np.ones(m) if view.weights is None \
            else view.weights.astype(float).copy()
        budget = max(1, math.ceil(config.iteration_factor * g
                                  * math.log(max(m / g, math.e))))
        budget = min(budget, config.max_stage_iterations)
        for _iteration in range(budget):
            if info["iterations"] >= config.max_total_iterations:
                break
            info["iterations"] += 1
            violators = np.empty(0, dtype=int)
            for _retry in range(config.max_invalid_retries):
                q = max(1, math.ceil(config.sample_factor * g
                                     * math.log(max(g, 2))))
                sample = _weighted_sample(rng, weights, q)
                info["lp_calls"] += 1
                helper = _run_helper(view, sample, rng, config)
                if helper is None:
                    # An unlucky sample can make the LP infeasible (e.g. a
                    # load-balance draw conflicting with latency); treat it
                    # as an invalid iteration and re-sample, giving up only
                    # after several failures in a row.
                    consecutive_helper_failures += 1
                    info["helper_failures"] = info.get("helper_failures", 0) + 1
                    if consecutive_helper_failures >= config.helper_retries * 2:
                        return best if best is not None \
                            else _fallback(view, started, info)
                    continue
                consecutive_helper_failures = 0
                filters, fractional = helper

                expanded = [rects.expand(config.eps) for rects in filters]
                with span("coverage_check"):
                    uncovered = view.uncovered(expanded)
                load_violators = np.empty(0, dtype=int)
                if len(uncovered) == 0:
                    with span("prune"):
                        pruned = prune_redundant_rects(view, expanded)
                    candidate = FilterAssignResult(
                        filters=pruned,
                        fractional_objective=fractional,
                        info=dict(info,
                                  certificate_size=len(sample),
                                  final_g=g,
                                  rects_before_prune=sum(len(f) for f in expanded),
                                  rects_after_prune=sum(len(f) for f in pruned)))
                    if not config.require_load_feasible:
                        candidate.info["runtime_seconds"] = \
                            time.perf_counter() - started
                        return candidate
                    # Acceptance additionally requires a load-feasible
                    # assignment; unrouted subscribers become violators so
                    # the reweighting steers future samples toward them.
                    with span("assign"):
                        outcome = assign_subscriptions(view, pruned) \
                            if view.weights is None else \
                            assign_subscriptions_weighted(view, pruned)
                    unrouted = outcome.info["unrouted"]
                    if outcome.feasible:
                        candidate.info["runtime_seconds"] = \
                            time.perf_counter() - started
                        return candidate
                    if unrouted < best_unrouted:
                        best_unrouted = unrouted
                        best = candidate
                    load_violators = outcome.unrouted_subscribers

                with span("coverage_check"):
                    unexpanded_uncovered = view.uncovered(filters)
                violators = np.union1d(unexpanded_uncovered, load_violators)
                if len(violators) == 0 \
                        or weights[violators].sum() <= config.eps * weights.sum():
                    break  # valid iteration
            if len(violators):
                weights[violators] *= 2.0
        g *= 2

    if best is not None:
        best.info["runtime_seconds"] = time.perf_counter() - started
        best.info["accepted_with_unrouted"] = best_unrouted
        return best
    return _fallback(view, started, info)
