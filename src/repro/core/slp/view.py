"""The SLP1 invocation view: assignable targets plus a subscriber subset.

SLP1 runs both at the leaf level of a one-level tree (targets = leaf
brokers) and, in the multi-level algorithm, at every internal node
(targets = the node's children, each standing for its whole subtree).
:class:`SLPView` abstracts over the two so LPRelax, FilterAssign, and the
max-flow assignment are written once.

For multi-level invocations the capacity fractions are *effective*: a
child subtree may absorb up to ``beta * kappa(subtree) * m_total``
subscribers globally, so in a sub-problem over ``m_view`` subscribers its
fraction is scaled by ``m_total / m_view`` (see DESIGN.md Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...geometry import RectSet
from ..problem import SAProblem

__all__ = ["SLPView", "view_from_problem"]


@dataclass
class SLPView:
    """Inputs of a single SLP1 run."""

    subscriptions: RectSet          #: (m_view,) event-space boxes
    network_points: np.ndarray      #: (m_view, d_net) subscriber locations
    feasible: np.ndarray            #: (n_targets, m_view) latency feasibility
    kappas_effective: np.ndarray    #: (n_targets,) scaled capacity fractions
    alpha: int
    beta: float
    beta_max: float
    #: per-subscription weights (member counts of super-subscriptions);
    #: ``None`` means every row is one real subscriber.  Load-balance
    #: budgets (C3 and flow capacities) are expressed in weight units so
    #: an aggregated view keeps exactly the caps of its expanded one.
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        m = len(self.subscriptions)
        n = self.feasible.shape[0]
        if self.feasible.shape != (n, m):
            raise ValueError("feasible must be (n_targets, m_view)")
        if self.network_points.shape[0] != m:
            raise ValueError("one network point per subscriber required")
        if self.kappas_effective.shape != (n,):
            raise ValueError("one capacity fraction per target required")
        if self.weights is not None:
            if self.weights.shape != (m,):
                raise ValueError("one weight per subscription required")
            if (self.weights <= 0).any():
                raise ValueError("weights must be positive")

    @property
    def num_targets(self) -> int:
        return self.feasible.shape[0]

    @property
    def num_subscribers(self) -> int:
        return len(self.subscriptions)

    @property
    def total_weight(self) -> float:
        """Real subscribers represented: ``m_view`` when unweighted."""
        if self.weights is None:
            return float(len(self.subscriptions))
        return float(self.weights.sum())

    def coverage(self, filters: list[RectSet]) -> np.ndarray:
        """``(n_targets, m_view)`` — target ``i`` covers subscriber ``j``.

        Cover = latency feasibility AND the subscription is contained in
        one of the target's filter rectangles (paper Section IV-A.1).
        """
        out = np.zeros_like(self.feasible)
        for i, rects in enumerate(filters):
            if len(rects) == 0:
                continue
            contained = rects.containment_matrix(self.subscriptions).any(axis=0)
            out[i] = self.feasible[i] & contained
        return out

    def uncovered(self, filters: list[RectSet]) -> np.ndarray:
        """Indices of subscribers not covered by any target — Violate(...)."""
        return np.flatnonzero(~self.coverage(filters).any(axis=0))


def view_from_problem(problem: SAProblem) -> SLPView:
    """The leaf-level view of a (typically one-level) SA problem."""
    return SLPView(
        subscriptions=problem.subscriptions,
        network_points=problem.subscriber_points,
        feasible=problem.feasible_leaf.copy(),
        kappas_effective=problem.kappas.copy(),
        alpha=problem.params.alpha,
        beta=problem.params.beta,
        beta_max=problem.params.beta_max,
    )
