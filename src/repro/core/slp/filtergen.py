"""Candidate filter generation — FilterGen (paper Section IV-A.3).

Enumerating every minimum enclosing box of a subscription subset would
give ``Omega(m^{2d})`` candidate rectangles; FilterGen produces a small
candidate set in two steps:

1. *(optional)* replace the subscriptions with ``k = 5 |B|``
   **super-subscriptions**: cluster the subscriptions in the joint
   (network, event) space and take per-cluster MEBs, capturing the
   geographic/topical concentration of interests;
2. per event-space dimension, build a hierarchy of intervals of dyadic
   lengths ``l_j = 2^j * delta`` such that every projection is contained
   in some interval of its length class and no two intervals of a class
   overlap by more than ``eta * l_j`` (``eta = 1/2``), then take the
   cartesian product across dimensions.

Each resulting rectangle is shrunk to the MEB of the subscriptions it
contains, and empty rectangles are dropped.  The global MEB is always
included so the downstream LP is feasible whenever the latency
constraints admit any assignment at all.
"""

from __future__ import annotations

import math

import numpy as np

from ...geometry import RectSet, cluster_rects_to_mebs

__all__ = ["FilterGenConfig", "generate_candidate_filters"]


class FilterGenConfig:
    """Tuning knobs of FilterGen.

    ``super_subscription_factor`` is the paper's ``k = 5 |B|``;
    ``use_super_subscriptions=False`` skips step 1, which (Lemma 4) makes
    the fractional LP bound tight up to a constant — at higher cost.
    ``max_candidates`` is a practical safety cap on ``|R|``; when the
    cartesian product exceeds it, the smallest-volume rectangles are kept.
    """

    def __init__(self, *, use_super_subscriptions: bool = True,
                 super_subscription_factor: int = 5,
                 eta: float = 0.5,
                 max_length_classes: int = 24,
                 max_candidates: int = 2000,
                 interval_dedupe_tol: float = 1e-9) -> None:
        if not (0.5 <= eta < 1.0):
            raise ValueError("eta must be in [1/2, 1)")
        if super_subscription_factor < 1:
            raise ValueError("super_subscription_factor must be positive")
        if interval_dedupe_tol < 0:
            raise ValueError("interval_dedupe_tol must be non-negative")
        self.use_super_subscriptions = use_super_subscriptions
        self.super_subscription_factor = super_subscription_factor
        self.eta = eta
        self.max_length_classes = max_length_classes
        self.max_candidates = max_candidates
        #: Relative tolerance (fraction of the axis extent) below which two
        #: candidate intervals count as duplicates; 0 = exact dedupe only.
        self.interval_dedupe_tol = interval_dedupe_tol


def _joint_features(subscriptions: RectSet,
                    network_points: np.ndarray | None) -> np.ndarray:
    """Normalized joint network/event coordinates for clustering."""
    event_features = np.hstack([subscriptions.lo, subscriptions.hi])
    parts = [event_features]
    if network_points is not None:
        parts.append(np.asarray(network_points, dtype=float))
    features = np.hstack(parts)
    # Scale each coordinate to unit spread so neither space dominates.
    spread = features.max(axis=0) - features.min(axis=0)
    spread[spread == 0] = 1.0
    return (features - features.min(axis=0)) / spread


def _dedupe_intervals(intervals: list[tuple[float, float]],
                      tol: float) -> list[tuple[float, float]]:
    """Sorted intervals with near-identical ones dropped.

    ``sorted(set(...))`` only removes *exact* float duplicates; interval
    classes routinely emit pairs whose endpoints differ by a few ulps
    (the same members entered through two length classes), and each
    survivor multiplies through the cross-dimension cartesian product.
    An interval is dropped when a kept interval matches both endpoints
    within ``tol``; since the list is sorted by ``a``, only kept
    intervals with ``a`` within ``tol`` need to be scanned.
    """
    unique: list[tuple[float, float]] = []
    for a, b in sorted(set(intervals)):
        duplicate = False
        for a_kept, b_kept in reversed(unique):
            if a - a_kept > tol:
                break
            if abs(b - b_kept) <= tol:
                duplicate = True
                break
        if not duplicate:
            unique.append((a, b))
    return unique


def _interval_classes(lo: np.ndarray, hi: np.ndarray, eta: float,
                      max_classes: int,
                      dedupe_tol: float = 0.0) -> list[tuple[float, float]]:
    """Step 2 for one axis: the interval families ``J_i = union_j J_ij``.

    ``lo``/``hi`` are the projections of the (super-)subscriptions onto
    the axis.  Returns candidate intervals ``(a, b)``, deduplicated with
    tolerance ``dedupe_tol * extent`` (see :func:`_dedupe_intervals`).
    """
    lengths = hi - lo
    span_lo, span_hi = float(lo.min()), float(hi.max())
    extent = span_hi - span_lo
    if extent <= 0:
        return [(span_lo, span_hi)]

    smallest = float(lengths.min())
    if smallest <= 0:
        smallest = extent / (2 ** max_classes)
    # Length classes l_j = 2^j * delta; the top class must admit the
    # longest projection (class j holds intervals of length <= l_j / 2).
    longest = max(float(lengths.max()), smallest)
    num_classes = max(1, math.ceil(math.log2(2.0 * longest / smallest)) + 1)
    num_classes = min(num_classes, max_classes)

    intervals: list[tuple[float, float]] = []
    order = np.argsort(lo, kind="stable")
    for j in range(1, num_classes + 1):
        length = (2.0 ** j) * smallest
        in_class = lengths <= length / 2.0
        if not in_class.any():
            continue
        members = order[in_class[order]]
        member_lo = lo[members]
        member_hi = hi[members]
        index = 0
        while index < len(members):
            anchor = member_lo[index]
            window_hi = anchor + length
            # Sweep: skip left endpoints within (1 - eta) * length of the
            # anchor.  member_lo is sorted, so the linear scan is a
            # binary search for the first endpoint at or past the cutoff.
            cursor = int(np.searchsorted(member_lo,
                                         anchor + (1.0 - eta) * length,
                                         side="left"))
            # Shrink to the tightest interval containing the same members.
            inside = (member_lo >= anchor) & (member_hi <= window_hi)
            if inside.any():
                intervals.append((float(member_lo[inside].min()),
                                  float(member_hi[inside].max())))
            else:
                intervals.append((float(anchor), float(window_hi)))
            index = cursor
    # Always offer the full axis span (feasibility fallback per dimension).
    intervals.append((span_lo, span_hi))
    return _dedupe_intervals(intervals, dedupe_tol * extent)


def generate_candidate_filters(subscriptions: RectSet,
                               num_brokers: int,
                               rng: np.random.Generator,
                               config: FilterGenConfig | None = None,
                               network_points: np.ndarray | None = None) -> RectSet:
    """The candidate rectangle set ``R`` for LPRelax.

    Parameters
    ----------
    subscriptions:
        The subscriptions of the current sample ``Sa``.
    num_brokers:
        ``|B|`` for the current SLP1 invocation (sets ``k = 5 |B|``).
    network_points:
        Subscriber network coordinates aligned with ``subscriptions``,
        enabling the joint-space clustering of step 1.
    """
    config = config or FilterGenConfig()
    if len(subscriptions) == 0:
        raise ValueError("cannot generate filters for zero subscriptions")

    k = config.super_subscription_factor * max(num_brokers, 1)
    if config.use_super_subscriptions and len(subscriptions) > k:
        features = _joint_features(subscriptions, network_points)
        super_subs, _labels = cluster_rects_to_mebs(subscriptions, k, rng,
                                                    features=features)
    else:
        super_subs = subscriptions

    dim = subscriptions.dim
    axis_intervals = [
        _interval_classes(super_subs.lo[:, axis], super_subs.hi[:, axis],
                          config.eta, config.max_length_classes,
                          config.interval_dedupe_tol)
        for axis in range(dim)
    ]

    # Cartesian product across dimensions: per-axis meshgrids raveled in
    # C order, which reproduces the row order of the former per-combo
    # ``np.ndindex`` loop exactly.
    axis_lo = [np.fromiter((iv[0] for iv in ivs), dtype=float,
                           count=len(ivs)) for ivs in axis_intervals]
    axis_hi = [np.fromiter((iv[1] for iv in ivs), dtype=float,
                           count=len(ivs)) for ivs in axis_intervals]
    lo_grid = np.meshgrid(*axis_lo, indexing="ij")
    hi_grid = np.meshgrid(*axis_hi, indexing="ij")
    candidates = RectSet(np.stack([g.ravel() for g in lo_grid], axis=1),
                         np.stack([g.ravel() for g in hi_grid], axis=1),
                         validate=False)

    # Keep only rectangles containing at least one (super-)subscription and
    # shrink each to the MEB of what it contains.
    containment = candidates.containment_matrix(super_subs)
    useful = containment.any(axis=1)
    if useful.any():
        candidates = candidates.take(np.flatnonzero(useful))
        candidates = candidates.shrink_to_contents(super_subs).dedupe()
    else:
        candidates = RectSet.empty(dim)

    # The super-subscriptions themselves are excellent tight candidates,
    # and the global MEB guarantees coverage feasibility.
    global_meb = subscriptions.meb()
    extras = RectSet(global_meb.lo[None, :], global_meb.hi[None, :], validate=False)
    candidates = super_subs.concat(extras) if len(candidates) == 0 \
        else candidates.concat(super_subs).concat(extras)
    candidates = candidates.dedupe()

    if len(candidates) > config.max_candidates:
        # Prefer small rectangles (they are the cheap ones the LP wants),
        # but never drop the global MEB (last row after dedupe ordering is
        # not guaranteed, so re-append it).
        volumes = candidates.volumes()
        keep = np.argsort(volumes, kind="stable")[:config.max_candidates - 1]
        candidates = candidates.take(np.sort(keep)).concat(extras).dedupe()
    return candidates
