"""Subscription aggregation: super-subscriptions ahead of the LP.

The LP relaxation's cost grows superlinearly with the sample size, and
FilterAssign's coverage checks touch every subscription; at
``m ~ 10^5`` the unaggregated pipeline is the bottleneck.  Following
the aggregation observation of Shi et al. (arXiv:1811.07088), this
module compresses the subscription set into **super-subscriptions**
before SLP1's core runs, then expands the result back to exact
per-subscriber assignments:

1. **Group** subscriptions by their latency-feasibility signature (the
   Boolean column of ``view.feasible``), so every member of a group is
   feasible for exactly the targets its super-subscription is — member
   expansion can never violate latency.  Within a signature group,
   recursive k-means over the joint (event, network) features (reusing
   :mod:`repro.geometry.clustering`) splits until groups have at most
   ``max_group_size`` members, keeping groups geometrically tight.
2. **Summarize** each group as its members' minimum enclosing box (so a
   filter covering the super-subscription covers every member — the
   nesting direction is monotone), the member-centroid network point,
   and the member count as its *weight*.
3. **Solve** FilterAssign + the weighted LP + the weighted (bin-packing)
   assignment on the aggregated view, with load budgets expressed in
   real-subscriber units so capacities match the unaggregated instance
   exactly.
4. **Expand** the group assignment to members (lossless: every member
   appears exactly once) and repair any residual load overflow at
   member granularity with the same augmenting-path machinery the
   multilevel rebalance uses.  The repair is exact — final solutions
   satisfy the paper's constraints, not an aggregated surrogate.

The approximation contract: aggregation only coarsens *bandwidth* (the
LP sees group MEBs instead of raw boxes, so filters may be larger); it
never relaxes coverage, latency, complexity, or the beta_max load caps.
With ``max_group_size <= 1`` (or ``m <= min_subscribers``) aggregation
is the identity and consumes no randomness, so the pipeline is
bit-identical to the unaggregated one — the equivalence tests pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...geometry import RectSet
from ...geometry.clustering import kmeans
from ...perf.profiler import span
from .assign_flow import (
    AssignmentOutcome,
    _augment,
    _CovererCSR,
    assign_subscriptions,
    assign_subscriptions_weighted,
)
from .filtergen import _joint_features
from .sampling import FilterAssignConfig, FilterAssignResult, filter_assign
from .view import SLPView

__all__ = ["AggregationConfig", "Aggregation", "AggregatedDistribution",
           "aggregate_subscriptions", "verify_aggregation",
           "expand_assignment", "distribute_aggregated"]


@dataclass(frozen=True)
class AggregationConfig:
    """Tunables of the subscription aggregator.

    ``max_group_size`` is the aggregation threshold: the largest number
    of subscriptions one super-subscription may absorb.  ``<= 1``
    disables aggregation entirely (the identity), as does any view with
    at most ``min_subscribers`` subscriptions — small instances gain
    nothing and keep their exact pipeline.  ``fanout`` bounds the
    k-means branching of the recursive splitter.
    """

    max_group_size: int = 64
    min_subscribers: int = 2048
    fanout: int = 8

    @property
    def enabled(self) -> bool:
        return self.max_group_size > 1


@dataclass
class Aggregation:
    """A partition of a view's subscriptions into super-subscriptions."""

    labels: np.ndarray              #: (m,) group row per subscription
    members: list[np.ndarray]       #: per group, sorted member indices
    super_subs: RectSet             #: (g,) member-union MEBs
    network_points: np.ndarray      #: (g, d_net) member centroids
    weights: np.ndarray             #: (g,) member counts
    feasible: np.ndarray            #: (n_targets, g) group feasibility
    is_identity: bool

    @property
    def num_groups(self) -> int:
        return len(self.members)


@dataclass
class AggregatedDistribution:
    """Result of one aggregated SLP1 core run over a view."""

    target_of: np.ndarray           #: (m,) per-subscriber target row
    fractional_objective: float | None
    aggregation: Aggregation
    preliminary: FilterAssignResult
    outcome: AssignmentOutcome      #: group-level (or member-level) flow
    info: dict[str, Any] = field(default_factory=dict)


def _identity_aggregation(view: SLPView) -> Aggregation:
    m = view.num_subscribers
    return Aggregation(
        labels=np.arange(m),
        members=[np.array([j]) for j in range(m)],
        super_subs=view.subscriptions,
        network_points=view.network_points,
        weights=np.ones(m, dtype=np.int64),
        feasible=view.feasible,
        is_identity=True,
    )


def _split_indices(indices: np.ndarray, features: np.ndarray,
                   config: AggregationConfig,
                   rng: np.random.Generator) -> list[np.ndarray]:
    """Recursively split one signature group to ``<= max_group_size``."""
    out: list[np.ndarray] = []
    stack = [indices]
    while stack:
        current = stack.pop()
        if len(current) <= config.max_group_size:
            out.append(np.sort(current))
            continue
        feats = features[current]
        if np.all(feats == feats[0]):
            # Degenerate: identical coordinates carry no geometry to
            # split on; even chunking is exact and consumes no RNG.
            pieces = np.array_split(
                current, math.ceil(len(current) / config.max_group_size))
            out.extend(np.sort(piece) for piece in pieces if len(piece))
            continue
        k = min(config.fanout,
                math.ceil(len(current) / config.max_group_size))
        k = max(k, 2)
        labels, _centers = kmeans(feats, k, rng)
        for cluster in range(int(labels.max()) + 1):
            piece = current[labels == cluster]
            if len(piece) == 0:
                continue
            if len(piece) == len(current):  # no progress: chunk instead
                stack.extend(np.array_split(
                    piece, math.ceil(len(piece) / config.max_group_size)))
            else:
                stack.append(piece)
    return out


def aggregate_subscriptions(view: SLPView, config: AggregationConfig,
                            rng: np.random.Generator) -> Aggregation:
    """Partition a view's subscriptions into super-subscriptions.

    Groups never cross latency-feasibility signatures, so a group is
    feasible for a target iff every member is.  The identity cases
    (threshold ``<= 1`` or a small view) return **before any RNG use**,
    keeping the downstream random stream — and therefore the whole
    pipeline — bit-identical to the unaggregated run.
    """
    m = view.num_subscribers
    if not config.enabled or m <= config.min_subscribers:
        return _identity_aggregation(view)

    signatures = np.packbits(view.feasible, axis=0).T
    _uniq, signature_of = np.unique(signatures, axis=0, return_inverse=True)
    features = _joint_features(view.subscriptions, view.network_points)

    groups: list[np.ndarray] = []
    for sig in range(int(signature_of.max()) + 1):
        indices = np.flatnonzero(signature_of == sig)
        groups.extend(_split_indices(indices, features, config, rng))
    groups.sort(key=lambda g: int(g[0]))  # canonical order

    num_groups = len(groups)
    labels = np.empty(m, dtype=np.int64)
    weights = np.empty(num_groups, dtype=np.int64)
    lo = np.empty((num_groups, view.subscriptions.dim))
    hi = np.empty((num_groups, view.subscriptions.dim))
    network = np.empty((num_groups, view.network_points.shape[1]))
    representative = np.empty(num_groups, dtype=np.int64)
    for row, members in enumerate(groups):
        labels[members] = row
        weights[row] = len(members)
        lo[row] = view.subscriptions.lo[members].min(axis=0)
        hi[row] = view.subscriptions.hi[members].max(axis=0)
        network[row] = view.network_points[members].mean(axis=0)
        representative[row] = members[0]

    return Aggregation(
        labels=labels,
        members=groups,
        super_subs=RectSet(lo, hi, validate=False),
        network_points=network,
        weights=weights,
        feasible=view.feasible[:, representative],
        is_identity=False,
    )


def expand_assignment(aggregation: Aggregation,
                      group_targets: np.ndarray) -> np.ndarray:
    """Per-subscriber targets from per-group targets (lossless)."""
    return np.asarray(group_targets)[aggregation.labels]


def verify_aggregation(view: SLPView, aggregation: Aggregation) -> list[str]:
    """Check the aggregation invariants; returns violation descriptions.

    * the groups partition the subscription set (member expansion is
      lossless — every subscriber appears in exactly one group);
    * every super-subscription rectangle is exactly the minimum
      enclosing box of its members (no slack, no clipping);
    * weights equal member counts;
    * feasibility signatures are pure: each member's feasibility column
      equals its group's.
    """
    problems: list[str] = []
    m = view.num_subscribers
    labels = aggregation.labels
    if labels.shape != (m,):
        return [f"labels shape {labels.shape} != ({m},)"]

    seen = np.concatenate(aggregation.members) if aggregation.members \
        else np.empty(0, dtype=np.int64)
    if len(seen) != m or not np.array_equal(np.sort(seen), np.arange(m)):
        problems.append("members do not partition the subscription set")
    for row, members in enumerate(aggregation.members):
        if len(members) == 0:
            problems.append(f"group {row} is empty")
            continue
        if not np.all(labels[members] == row):
            problems.append(f"group {row}: labels disagree with members")
        if int(aggregation.weights[row]) != len(members):
            problems.append(
                f"group {row}: weight {int(aggregation.weights[row])} "
                f"!= {len(members)} members")
        member_lo = view.subscriptions.lo[members]
        member_hi = view.subscriptions.hi[members]
        if not (np.array_equal(aggregation.super_subs.lo[row],
                               member_lo.min(axis=0))
                and np.array_equal(aggregation.super_subs.hi[row],
                                   member_hi.max(axis=0))):
            problems.append(
                f"group {row}: super-subscription is not the exact "
                "member-union MEB")
        member_feasible = view.feasible[:, members]
        if not np.array_equal(
                member_feasible,
                np.repeat(aggregation.feasible[:, row][:, None],
                          len(members), axis=1)):
            problems.append(
                f"group {row}: mixed latency-feasibility signatures")
    return problems


def _repair_members(view: SLPView, filters: list[RectSet],
                    member_targets: np.ndarray,
                    info: dict[str, Any]) -> np.ndarray:
    """Exact member-level load repair after expansion.

    Group assignment packs indivisible groups, so a target can end up
    over its member-unit cap.  This evicts the overflow and re-routes it
    over member-level coverage with augmenting paths, escalating the lbf
    from ``beta`` to ``beta_max`` — the same machinery (and guarantees)
    as the multilevel global rebalance.
    """
    m = view.num_subscribers
    num_targets = view.num_targets
    kappas = view.kappas_effective

    def caps_at(b: float) -> np.ndarray:
        return np.maximum(np.floor(b * kappas * m), 0).astype(np.int64)

    betabar = view.beta
    hard_caps = caps_at(view.beta_max)
    loads = np.bincount(member_targets, minlength=num_targets)
    if (loads <= hard_caps).all():
        info["repaired"] = 0
        return member_targets

    coverage = view.coverage(filters)
    coverers: list[np.ndarray] = []
    for j in range(m):
        options = np.flatnonzero(coverage[:, j])
        if len(options) == 0:
            options = np.flatnonzero(view.feasible[:, j])
        if len(options) == 0:
            options = np.arange(num_targets)
        coverers.append(options)

    assigned = member_targets.copy()
    subs_of: list[set[int]] = [set() for _ in range(num_targets)]
    stranded: list[int] = []
    loads = np.zeros(num_targets, dtype=np.int64)
    for j in range(m):
        target = int(assigned[j])
        if loads[target] < hard_caps[target]:
            loads[target] += 1
            subs_of[target].add(j)
        else:
            assigned[j] = -1
            stranded.append(j)

    caps = caps_at(betabar)
    remaining = stranded
    csr = _CovererCSR(coverers)
    while remaining:
        still: list[int] = []
        saturated = np.zeros(num_targets, dtype=bool)
        for j in remaining:
            if not _augment(j, csr, assigned, loads, caps, subs_of,
                            num_targets, saturated=saturated):
                still.append(j)
        if not still:
            remaining = still
            break
        if betabar >= view.beta_max:
            remaining = still
            break
        betabar = min(betabar * 1.05, view.beta_max)
        caps = caps_at(betabar)
        remaining = still

    for j in remaining:  # best effort: least relative load
        options = coverers[j]
        relative = loads[options] / np.maximum(kappas[options], 1e-12)
        pick = int(options[relative.argmin()])
        assigned[j] = pick
        loads[pick] += 1

    info["repaired"] = len(stranded)
    info["repair_unrouted"] = len(remaining)
    return assigned


def distribute_aggregated(view: SLPView, rng: np.random.Generator,
                          config: FilterAssignConfig | None = None,
                          aggregation: AggregationConfig | None = None,
                          ) -> AggregatedDistribution:
    """One SLP1 core run (FilterAssign + assignment) with aggregation.

    When the aggregation is the identity this runs exactly the
    unaggregated pipeline — same calls, same spans, same RNG stream —
    so threshold-0 runs are bit-identical to it.
    """
    agg_config = aggregation or AggregationConfig()
    with span("aggregate"):
        agg = aggregate_subscriptions(view, agg_config, rng)

    if agg.is_identity:
        preliminary = filter_assign(view, rng, config)
        with span("assign"):
            outcome = assign_subscriptions(view, preliminary.filters)
        return AggregatedDistribution(
            target_of=outcome.target_of,
            fractional_objective=preliminary.fractional_objective,
            aggregation=agg,
            preliminary=preliminary,
            outcome=outcome,
            info={"groups": agg.num_groups, "identity": True},
        )

    agg_view = SLPView(
        subscriptions=agg.super_subs,
        network_points=agg.network_points,
        feasible=agg.feasible,
        kappas_effective=view.kappas_effective,
        alpha=view.alpha,
        beta=view.beta,
        beta_max=view.beta_max,
        weights=agg.weights.astype(np.float64),
    )
    preliminary = filter_assign(agg_view, rng, config)
    with span("assign"):
        outcome = assign_subscriptions_weighted(agg_view, preliminary.filters)

    info: dict[str, Any] = {
        "groups": agg.num_groups,
        "identity": False,
        "compression": view.num_subscribers / max(agg.num_groups, 1),
        "group_assignment": outcome.info,
    }
    with span("expand"):
        member_targets = expand_assignment(agg, outcome.target_of)
        member_targets = _repair_members(view, preliminary.filters,
                                         member_targets, info)
    return AggregatedDistribution(
        target_of=member_targets,
        fractional_objective=preliminary.fractional_objective,
        aggregation=agg,
        preliminary=preliminary,
        outcome=outcome,
        info=info,
    )
