"""LP relaxation and randomized rounding — LPRelax (paper Section IV-A.1).

The mixed integer program over Boolean ``x_ij`` (subscriber ``j`` served
by broker ``i``) and ``y_ik`` (rectangle ``k`` in broker ``i``'s filter):

    minimize    sum_{i,k} Vol(R_k) * y_ik
    subject to  (C1) sum_k y_ik <= alpha                      for each broker i
                (C2) sum_{i in B_j} x_ij >= 1                 for each j in Sa
                (C3) sum_{j in Sb} x_ij <= beta kappa_i |Sb|  for each broker i
                (C4) x_ij <= sum_{k in R_j} y_ik              for feasible (i, j)

is relaxed to an LP (variables in ``[0, 1]``) and solved with HiGHS via
``scipy.optimize.linprog`` on sparse matrices.  The fractional optimum is
the *lower bound* the paper uses as its yardstick by-product.  The ``y``
variables are then rounded: ``y_ik = 1`` with probability
``1 - (1 - yhat)^{2 ln |Sa|}``, re-rounding until the sample ``Sa`` is
covered (each attempt succeeds with probability >= 1/2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from ...geometry import RectSet
from ...perf.fastlp import active_lp_workspace, solve_bounded_lp
from ...perf.profiler import span

__all__ = ["LPOutcome", "lp_relax"]

#: Rounding attempts before deterministically force-covering the sample.
_MAX_ROUNDING_ATTEMPTS = 20


@dataclass
class LPOutcome:
    """Result of one LPRelax call.

    ``filters[i]`` is the preliminary rectangle set of broker ``i`` (its
    complexity may exceed ``alpha``; the adjustment step fixes that).
    ``fractional_objective`` is the LP lower bound with respect to the
    sample and candidate set.
    """

    filters: list[RectSet]
    fractional_objective: float
    y_fractional: np.ndarray          #: (num_brokers, num_rects)
    rounding_attempts: int
    forced_rects: int                 #: rects switched on by the fallback


def _coverage_possible(feasible: np.ndarray, contain: np.ndarray) -> np.ndarray:
    """Mask over the sample: does any (broker, rect) pair cover subscriber j?"""
    # feasible: (n, m); contain: (u, m).  j is coverable iff it has at least
    # one feasible broker and one containing rectangle (any broker may take
    # any rectangle, so the conditions separate).
    return feasible.any(axis=0) & contain.any(axis=0)


def _ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..c_0), [0..c_1), ...`` concatenated, for grouped gathers."""
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total) - np.repeat(starts, counts)


def _assemble_constraints(feasible: np.ndarray, sb_mask: np.ndarray,
                          contain: np.ndarray, num_y: int, u: int,
                          pair_broker: np.ndarray, pair_sub: np.ndarray,
                          kappas: np.ndarray, alpha: int, beta: float,
                          weights: np.ndarray | None = None,
                          ) -> tuple[sparse.csr_matrix, np.ndarray]:
    """Build ``A_ub x <= b_ub`` for C1-C4 with pure index arithmetic.

    Variable layout (matching the docstring): y variables broker-major
    (``y_ik -> i * u + k``), then one x variable per feasible (i, j) pair
    in ``np.nonzero(feasible)`` (broker-major) order.  Rows are C1, C2,
    C3, C4 in that order — the exact matrix the per-row Python loops used
    to produce, so the LP (and everything downstream of its optimum) is
    bit-identical to the pre-vectorization implementation.
    """
    num_brokers, m = feasible.shape
    num_x = len(pair_broker)

    # (C1) filter complexity: one row per broker over its y block.
    c1_rows = np.repeat(np.arange(num_brokers), u)
    c1_cols = np.arange(num_y)
    c1_vals = np.ones(num_y)
    c1_b = np.full(num_brokers, float(alpha))
    row = num_brokers

    # (C2) coverage, as -sum x <= -1: one row per sample subscriber over
    # its feasible x variables (stable sort keeps brokers ascending).
    by_sub = np.argsort(pair_sub, kind="stable")
    c2_rows = row + pair_sub[by_sub]
    c2_cols = num_y + by_sub
    c2_vals = -np.ones(num_x)
    c2_b = -np.ones(m)
    row += m

    # (C3) load balance over Sb: one row per broker with >= 1 Sb member.
    # With weights (aggregated super-subscriptions) each x variable
    # carries its member count and the budget runs over the represented
    # real subscribers; the unweighted branch is the exact original code.
    sb_count = int(sb_mask.sum())
    if sb_count:
        t_sb = np.flatnonzero(sb_mask[pair_sub])
        sb_brokers = pair_broker[t_sb]
        members_per_broker = np.bincount(sb_brokers, minlength=num_brokers)
        has_members = members_per_broker > 0
        compacted = np.cumsum(has_members) - 1 + row
        c3_rows = compacted[sb_brokers]
        c3_cols = num_y + t_sb
        if weights is None:
            c3_vals = np.ones(len(t_sb))
            c3_b = beta * kappas[has_members] * sb_count
        else:
            c3_vals = weights[pair_sub[t_sb]].astype(float)
            c3_b = beta * kappas[has_members] * float(weights[sb_mask].sum())
        row += int(has_members.sum())
    else:
        c3_rows = c3_cols = np.empty(0, dtype=int)
        c3_vals = c3_b = np.empty(0)

    # (C4) nesting: x_t - sum_{k: sigma_{j_t} in R_k} y_{i_t, k} <= 0.
    # Gather each pair's rectangle list from the (j, k) nonzeros of the
    # transposed containment matrix, which arrive sorted by j then k.
    nz_sub, nz_rect = np.nonzero(contain.T)
    rects_per_sub = np.bincount(nz_sub, minlength=m)
    rect_offsets = np.cumsum(rects_per_sub) - rects_per_sub
    rects_per_pair = rects_per_sub[pair_sub]
    c4_pos_rows = row + np.arange(num_x)
    c4_pos_cols = num_y + np.arange(num_x)
    gather = np.repeat(rect_offsets[pair_sub], rects_per_pair) \
        + _ranges(rects_per_pair)
    c4_neg_rows = np.repeat(c4_pos_rows, rects_per_pair)
    c4_neg_cols = np.repeat(pair_broker, rects_per_pair) * u + nz_rect[gather]
    row += num_x

    rows = np.concatenate([c1_rows, c2_rows, c3_rows, c4_pos_rows,
                           c4_neg_rows])
    cols = np.concatenate([c1_cols, c2_cols, c3_cols, c4_pos_cols,
                           c4_neg_cols])
    vals = np.concatenate([c1_vals, c2_vals, c3_vals, np.ones(num_x),
                           -np.ones(len(c4_neg_rows))])
    b_ub = np.concatenate([c1_b, c2_b, c3_b, np.zeros(num_x)])
    a_ub = sparse.coo_matrix((vals, (rows, cols)),
                             shape=(row, num_y + num_x)).tocsr()
    return a_ub, b_ub


def lp_relax(sub_rects: RectSet,
             feasible: np.ndarray,
             sb_mask: np.ndarray,
             rects: RectSet,
             kappas: np.ndarray,
             alpha: int,
             beta: float,
             rng: np.random.Generator,
             weights: np.ndarray | None = None) -> LPOutcome | None:
    """Solve the relaxed filter-assignment LP and round the filters.

    Parameters
    ----------
    sub_rects:
        Subscriptions of the sample ``Sa`` (size ``m``).
    feasible:
        ``(num_brokers, m)`` — latency feasibility of (broker, subscriber).
    sb_mask:
        ``(m,)`` — which sample members belong to the load-balance subset
        ``Sb`` (constraint C3 runs over these only).
    rects:
        Candidate rectangles ``R`` from FilterGen (size ``u``).
    kappas:
        Effective capacity fractions per broker (scaled by the caller for
        multi-level sub-problems).
    weights:
        Optional per-sample-member weights (member counts when the
        sample rows are super-subscriptions); C3 budgets then run in
        real-subscriber units.  ``None`` keeps the unweighted LP
        bit-identical to the original formulation.
    Returns ``None`` when the LP is infeasible.
    """
    num_brokers, m = feasible.shape
    u = len(rects)
    if m != len(sub_rects) or sb_mask.shape != (m,):
        raise ValueError("inconsistent sample shapes")

    contain = rects.containment_matrix(sub_rects)      # (u, m)
    if not _coverage_possible(feasible, contain).all():
        return None

    volumes = rects.volumes()

    # Variable layout: y variables first (broker-major, ``y_ik -> i*u+k``),
    # then x variables for each feasible (i, j) pair in nonzero order.
    num_y = num_brokers * u
    pair_broker, pair_sub = np.nonzero(feasible)
    num_x = len(pair_broker)

    cost = np.zeros(num_y + num_x)
    cost[:num_y] = np.tile(volumes, num_brokers)

    with span("lp_assemble"):
        a_ub, b_ub = _assemble_constraints(feasible, sb_mask, contain,
                                           num_y, u, pair_broker, pair_sub,
                                           kappas, alpha, beta, weights)
    workspace = active_lp_workspace()
    with span("lp_solve"):
        if workspace is not None:
            result = workspace.solve(cost, a_ub, b_ub)
        else:
            result = solve_bounded_lp(cost, a_ub, b_ub)
    if not result.success:
        return None

    y_hat = result.x[:num_y].reshape(num_brokers, u)
    fractional = float(result.fun)

    # Randomized rounding with the paper's amplification exponent.
    exponent = max(2.0 * math.log(max(m, 2)), 1.0)
    keep_probability = 1.0 - np.power(np.clip(1.0 - y_hat, 0.0, 1.0), exponent)

    forced = 0
    with span("lp_round"):
        for attempt in range(1, _MAX_ROUNDING_ATTEMPTS + 1):
            chosen = rng.random(y_hat.shape) < keep_probability
            if _rounded_covers(chosen, feasible, contain):
                return LPOutcome(
                    filters=[rects.take(np.flatnonzero(chosen[i]))
                             for i in range(num_brokers)],
                    fractional_objective=fractional,
                    y_fractional=y_hat,
                    rounding_attempts=attempt,
                    forced_rects=0,
                )

        # Deterministic fallback: for each uncovered subscriber, switch on
        # the (broker, rect) pair with the largest fractional support.
        chosen = rng.random(y_hat.shape) < keep_probability
        for j in range(m):
            if _subscriber_covered(j, chosen, feasible, contain):
                continue
            brokers_j = np.flatnonzero(feasible[:, j])
            ks = np.flatnonzero(contain[:, j])
            support = y_hat[np.ix_(brokers_j, ks)]
            best = np.unravel_index(int(support.argmax()), support.shape)
            chosen[brokers_j[best[0]], ks[best[1]]] = True
            forced += 1
    return LPOutcome(
        filters=[rects.take(np.flatnonzero(chosen[i]))
                 for i in range(num_brokers)],
        fractional_objective=fractional,
        y_fractional=y_hat,
        rounding_attempts=_MAX_ROUNDING_ATTEMPTS,
        forced_rects=forced,
    )


def _rounded_covers(chosen: np.ndarray, feasible: np.ndarray,
                    contain: np.ndarray) -> bool:
    """Does the rounded filter assignment cover every sample subscriber?"""
    # covered(i, j) = feasible(i, j) and exists k: chosen(i, k) and contain(k, j)
    per_broker = chosen.astype(float) @ contain.astype(float)  # (n, m)
    return bool(((per_broker > 0) & feasible).any(axis=0).all())


def _subscriber_covered(j: int, chosen: np.ndarray, feasible: np.ndarray,
                        contain: np.ndarray) -> bool:
    brokers_j = np.flatnonzero(feasible[:, j])
    if len(brokers_j) == 0:
        return False
    ks = np.flatnonzero(contain[:, j])
    if len(ks) == 0:
        return False
    return bool(chosen[np.ix_(brokers_j, ks)].any())
