"""LP relaxation and randomized rounding — LPRelax (paper Section IV-A.1).

The mixed integer program over Boolean ``x_ij`` (subscriber ``j`` served
by broker ``i``) and ``y_ik`` (rectangle ``k`` in broker ``i``'s filter):

    minimize    sum_{i,k} Vol(R_k) * y_ik
    subject to  (C1) sum_k y_ik <= alpha                      for each broker i
                (C2) sum_{i in B_j} x_ij >= 1                 for each j in Sa
                (C3) sum_{j in Sb} x_ij <= beta kappa_i |Sb|  for each broker i
                (C4) x_ij <= sum_{k in R_j} y_ik              for feasible (i, j)

is relaxed to an LP (variables in ``[0, 1]``) and solved with HiGHS via
``scipy.optimize.linprog`` on sparse matrices.  The fractional optimum is
the *lower bound* the paper uses as its yardstick by-product.  The ``y``
variables are then rounded: ``y_ik = 1`` with probability
``1 - (1 - yhat)^{2 ln |Sa|}``, re-rounding until the sample ``Sa`` is
covered (each attempt succeeds with probability >= 1/2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from ...geometry import RectSet

__all__ = ["LPOutcome", "lp_relax"]

#: Rounding attempts before deterministically force-covering the sample.
_MAX_ROUNDING_ATTEMPTS = 20


@dataclass
class LPOutcome:
    """Result of one LPRelax call.

    ``filters[i]`` is the preliminary rectangle set of broker ``i`` (its
    complexity may exceed ``alpha``; the adjustment step fixes that).
    ``fractional_objective`` is the LP lower bound with respect to the
    sample and candidate set.
    """

    filters: list[RectSet]
    fractional_objective: float
    y_fractional: np.ndarray          #: (num_brokers, num_rects)
    rounding_attempts: int
    forced_rects: int                 #: rects switched on by the fallback


def _coverage_possible(feasible: np.ndarray, contain: np.ndarray) -> np.ndarray:
    """Mask over the sample: does any (broker, rect) pair cover subscriber j?"""
    # feasible: (n, m); contain: (u, m).  j is coverable iff it has at least
    # one feasible broker and one containing rectangle (any broker may take
    # any rectangle, so the conditions separate).
    return feasible.any(axis=0) & contain.any(axis=0)


def lp_relax(sub_rects: RectSet,
             feasible: np.ndarray,
             sb_mask: np.ndarray,
             rects: RectSet,
             kappas: np.ndarray,
             alpha: int,
             beta: float,
             rng: np.random.Generator) -> LPOutcome | None:
    """Solve the relaxed filter-assignment LP and round the filters.

    Parameters
    ----------
    sub_rects:
        Subscriptions of the sample ``Sa`` (size ``m``).
    feasible:
        ``(num_brokers, m)`` — latency feasibility of (broker, subscriber).
    sb_mask:
        ``(m,)`` — which sample members belong to the load-balance subset
        ``Sb`` (constraint C3 runs over these only).
    rects:
        Candidate rectangles ``R`` from FilterGen (size ``u``).
    kappas:
        Effective capacity fractions per broker (scaled by the caller for
        multi-level sub-problems).
    Returns ``None`` when the LP is infeasible.
    """
    num_brokers, m = feasible.shape
    u = len(rects)
    if m != len(sub_rects) or sb_mask.shape != (m,):
        raise ValueError("inconsistent sample shapes")

    contain = rects.containment_matrix(sub_rects)      # (u, m)
    if not _coverage_possible(feasible, contain).all():
        return None

    volumes = rects.volumes()

    # Variable layout: y variables first (broker-major), then x variables
    # for each feasible (i, j) pair.
    def y_var(i: int, k: int) -> int:
        return i * u + k

    num_y = num_brokers * u
    pair_broker, pair_sub = np.nonzero(feasible)
    num_x = len(pair_broker)
    x_index = {(int(i), int(j)): num_y + t
               for t, (i, j) in enumerate(zip(pair_broker, pair_sub))}

    cost = np.zeros(num_y + num_x)
    cost[:num_y] = np.tile(volumes, num_brokers)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b_ub: list[float] = []
    row = 0

    # (C1) filter complexity.
    for i in range(num_brokers):
        rows.extend([row] * u)
        cols.extend(y_var(i, k) for k in range(u))
        vals.extend([1.0] * u)
        b_ub.append(float(alpha))
        row += 1

    # (C2) coverage, as -sum x <= -1.
    for j in range(m):
        brokers_j = np.flatnonzero(feasible[:, j])
        rows.extend([row] * len(brokers_j))
        cols.extend(x_index[(int(i), j)] for i in brokers_j)
        vals.extend([-1.0] * len(brokers_j))
        b_ub.append(-1.0)
        row += 1

    # (C3) load balance over Sb.
    sb_count = int(sb_mask.sum())
    if sb_count:
        for i in range(num_brokers):
            members = np.flatnonzero(feasible[i] & sb_mask)
            if len(members) == 0:
                continue
            rows.extend([row] * len(members))
            cols.extend(x_index[(i, int(j))] for j in members)
            vals.extend([1.0] * len(members))
            b_ub.append(beta * float(kappas[i]) * sb_count)
            row += 1

    # (C4) nesting: x_ij - sum_{k: sigma_j in R_k} y_ik <= 0.
    rect_lists = [np.flatnonzero(contain[:, j]) for j in range(m)]
    for t in range(num_x):
        i = int(pair_broker[t])
        j = int(pair_sub[t])
        ks = rect_lists[j]
        rows.append(row)
        cols.append(num_y + t)
        vals.append(1.0)
        rows.extend([row] * len(ks))
        cols.extend(y_var(i, int(k)) for k in ks)
        vals.extend([-1.0] * len(ks))
        b_ub.append(0.0)
        row += 1

    a_ub = sparse.coo_matrix((vals, (rows, cols)),
                             shape=(row, num_y + num_x)).tocsr()
    result = linprog(cost, A_ub=a_ub, b_ub=np.asarray(b_ub),
                     bounds=(0.0, 1.0), method="highs")
    if not result.success:
        return None

    y_hat = result.x[:num_y].reshape(num_brokers, u)
    fractional = float(result.fun)

    # Randomized rounding with the paper's amplification exponent.
    exponent = max(2.0 * math.log(max(m, 2)), 1.0)
    keep_probability = 1.0 - np.power(np.clip(1.0 - y_hat, 0.0, 1.0), exponent)

    forced = 0
    for attempt in range(1, _MAX_ROUNDING_ATTEMPTS + 1):
        chosen = rng.random(y_hat.shape) < keep_probability
        if _rounded_covers(chosen, feasible, contain):
            return LPOutcome(
                filters=[rects.take(np.flatnonzero(chosen[i]))
                         for i in range(num_brokers)],
                fractional_objective=fractional,
                y_fractional=y_hat,
                rounding_attempts=attempt,
                forced_rects=0,
            )

    # Deterministic fallback: for each uncovered subscriber, switch on the
    # (broker, rect) pair with the largest fractional support.
    chosen = rng.random(y_hat.shape) < keep_probability
    for j in range(m):
        if _subscriber_covered(j, chosen, feasible, contain):
            continue
        brokers_j = np.flatnonzero(feasible[:, j])
        ks = rect_lists[j]
        support = y_hat[np.ix_(brokers_j, ks)]
        best = np.unravel_index(int(support.argmax()), support.shape)
        chosen[brokers_j[best[0]], ks[best[1]]] = True
        forced += 1
    return LPOutcome(
        filters=[rects.take(np.flatnonzero(chosen[i]))
                 for i in range(num_brokers)],
        fractional_objective=fractional,
        y_fractional=y_hat,
        rounding_attempts=_MAX_ROUNDING_ATTEMPTS,
        forced_rects=forced,
    )


def _rounded_covers(chosen: np.ndarray, feasible: np.ndarray,
                    contain: np.ndarray) -> bool:
    """Does the rounded filter assignment cover every sample subscriber?"""
    # covered(i, j) = feasible(i, j) and exists k: chosen(i, k) and contain(k, j)
    per_broker = chosen.astype(float) @ contain.astype(float)  # (n, m)
    return bool(((per_broker > 0) & feasible).any(axis=0).all())


def _subscriber_covered(j: int, chosen: np.ndarray, feasible: np.ndarray,
                        contain: np.ndarray) -> bool:
    brokers_j = np.flatnonzero(feasible[:, j])
    if len(brokers_j) == 0:
        return False
    ks = np.flatnonzero(contain[:, j])
    if len(ks) == 0:
        return False
    return bool(chosen[np.ix_(brokers_j, ks)].any())
