"""SLP — the multi-level algorithm (paper Section V).

SLP applies SLP1 top-down: at each internal node it distributes the
node's subscriber subset among the node's children (each child standing
for its whole subtree), then recurses into every child with the subset
routed to it.  This follows the paper's argument that broker trees track
the network topology, so local decisions at each level are effective and
far cheaper than a flat SLP1 over all leaves.

Two quantities make a child ``C`` a valid target for subscriber ``S_j``
(see DESIGN.md Section 5):

* latency — the *optimistic* full path through ``C`` must fit the budget:
  ``lat(P -> C) + min over leaves L under C [lat(C -> L) + d(L, S_j)]
  <= delta_j``; for a leaf child this is the exact path latency;
* capacity — ``kappa(C)`` is the sum of the leaf capacity fractions under
  ``C``, scaled to the sub-problem's subscriber count.

The ``gamma`` threshold (from the technical-report version) short-cuts
the recursion: a subtree whose subscriber subset is at most ``gamma``
runs one SLP1 over its leaves directly.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from ...perf.cache import geometry_cache
from ...perf.fastlp import lp_workspace
from ...perf.profiler import span
from ..problem import SAProblem, SASolution, filters_from_assignment
from .aggregate import AggregationConfig, distribute_aggregated
from .assign_flow import _augment, _CovererCSR, assign_subscriptions
from .sampling import FilterAssignConfig, filter_assign
from .view import SLPView

__all__ = ["slp"]


def _subtree_kappa(problem: SAProblem, node: int) -> float:
    rows = problem.tree.subtree_leaf_rows(node)
    return float(problem.kappas[rows].sum())


def _child_feasibility(problem: SAProblem, children: list[int],
                       members: np.ndarray) -> np.ndarray:
    """(num_children, len(members)): optimistic latency feasibility."""
    tree = problem.tree
    points = problem.subscriber_points[members]
    budgets = problem.latency_budgets[members] * (1.0 + 1e-9)
    feasible = np.zeros((len(children), len(members)), dtype=bool)
    for row, child in enumerate(children):
        optimistic = tree.down_latency[child] + tree.best_completion(child, points)
        feasible[row] = optimistic <= budgets
    return feasible


def _leaf_feasibility(problem: SAProblem, leaf_rows: np.ndarray,
                      members: np.ndarray) -> np.ndarray:
    """Exact leaf-level feasibility restricted to a subscriber subset."""
    return problem.feasible_leaf[np.ix_(leaf_rows, members)]


def _distribute(view: SLPView, rng: np.random.Generator,
                config: FilterAssignConfig | None,
                info: dict[str, Any],
                aggregation: AggregationConfig | None = None) -> np.ndarray:
    """One SLP1 core run on a view; returns the target row per subscriber."""
    if aggregation is not None:
        dist = distribute_aggregated(view, rng, config, aggregation)
        preliminary = dist.preliminary
        outcome = dist.outcome
        target_of = dist.target_of
        if not dist.info.get("identity", True):
            info["aggregated_levels"] = info.get("aggregated_levels", 0) + 1
            info["aggregated_groups"] = info.get("aggregated_groups", 0) \
                + dist.info["groups"]
    else:
        preliminary = filter_assign(view, rng, config)
        with span("assign"):
            outcome = assign_subscriptions(view, preliminary.filters)
        target_of = outcome.target_of
    info["lp_calls"] += preliminary.info.get("lp_calls", 0)
    info["slp1_invocations"] += 1
    if preliminary.fractional_objective is not None:
        info["fractional_sum"] += preliminary.fractional_objective
        info["fractional_levels"] += 1
    if preliminary.used_fallback:
        info["fallbacks"] += 1
    if not outcome.feasible:
        info["infeasible_levels"] += 1
    return target_of


def _global_rebalance(problem: SAProblem, assignment: np.ndarray,
                      info: dict[str, Any]) -> np.ndarray:
    """Leaf-level load repair after the top-down recursion.

    The recursion's per-level feasibility is optimistic (a subtree looks
    usable if *some* leaf under it fits the budget), so a level can route
    more subscribers into a subtree than its leaves can balance.  This
    pass removes the excess from overloaded leaves and re-routes it over
    the exact leaf-level feasibility with augmenting paths, escalating
    the lbf from ``beta`` to ``beta_max`` only as needed.
    """
    tree = problem.tree
    m = problem.num_subscribers
    kappas = problem.kappas
    num_leaves = problem.num_leaf_brokers

    leaf_row_of = np.array([tree.leaf_row(int(a)) for a in assignment])
    coverers = [problem.candidate_leaf_rows(j) for j in range(m)]

    betabar = problem.params.beta
    beta_max = problem.params.beta_max

    def caps_at(b: float) -> np.ndarray:
        return np.maximum(np.floor(b * kappas * m), 0).astype(int)

    caps = caps_at(betabar)
    loads = np.bincount(leaf_row_of, minlength=num_leaves)
    if (loads <= caps_at(beta_max)).all():
        return assignment  # nothing to repair

    # Evict excess subscribers from overloaded leaves (beta_max caps).
    assigned = leaf_row_of.copy()
    subs_of: list[set[int]] = [set() for _ in range(num_leaves)]
    stranded: list[int] = []
    hard_caps = caps_at(beta_max)
    loads = np.zeros(num_leaves, dtype=int)
    for j in range(m):
        row = int(assigned[j])
        if loads[row] < hard_caps[row]:
            loads[row] += 1
            subs_of[row].add(j)
        else:
            assigned[j] = -1
            stranded.append(j)

    remaining = stranded
    csr = _CovererCSR(coverers)
    while remaining:
        still: list[int] = []
        saturated = np.zeros(num_leaves, dtype=bool)
        for j in remaining:
            if not _augment(j, csr, assigned, loads, caps, subs_of,
                            num_leaves, saturated=saturated):
                still.append(j)
        if not still:
            remaining = still
            break
        if betabar >= beta_max:
            remaining = still
            break
        betabar = min(betabar * 1.05, beta_max)
        caps = caps_at(betabar)
        remaining = still

    for j in remaining:  # best effort: least-loaded feasible leaf
        options = coverers[j]
        if len(options) == 0:
            options = np.arange(num_leaves)
        relative = loads[options] / np.maximum(kappas[options] * m, 1e-12)
        pick = int(options[relative.argmin()])
        assigned[j] = pick
        loads[pick] += 1

    info["rebalanced"] = len(stranded)
    info["rebalance_unrouted"] = len(remaining)
    return tree.leaves[assigned]


def slp(problem: SAProblem, *, seed: int = 0, gamma: int = 0,
        config: FilterAssignConfig | None = None,
        aggregation: AggregationConfig | None = None,
        lp_workers: int | None = None) -> SASolution:
    """Run multi-level SLP on an SA problem.

    ``gamma`` collapses the recursion: a node whose subscriber subset has
    at most ``gamma`` members assigns straight to its subtree's leaves
    with one SLP1 run (0 disables the shortcut except at the bottom
    level, which is always exact).

    ``aggregation`` compresses each level's view into super-subscriptions
    before its LP (see :mod:`.aggregate`); sub-views at or below the
    config's ``min_subscribers`` stay exact.  ``lp_workers`` fans
    decomposed LP blocks across a process pool.
    """
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    tree = problem.tree
    m = problem.num_subscribers
    assignment = np.full(m, -1, dtype=int)
    info: dict[str, Any] = {
        "algorithm": "SLP",
        "lp_calls": 0,
        "slp1_invocations": 0,
        "fractional_sum": 0.0,
        "fractional_levels": 0,
        "fallbacks": 0,
        "infeasible_levels": 0,
    }

    def solve_over_leaves(node: int, members: np.ndarray) -> None:
        """Assign members directly to the leaves under ``node``."""
        leaf_rows = tree.subtree_leaf_rows(node)
        view = SLPView(
            subscriptions=problem.subscriptions.take(members),
            network_points=problem.subscriber_points[members],
            feasible=_leaf_feasibility(problem, leaf_rows, members),
            kappas_effective=problem.kappas[leaf_rows] * (m / max(len(members), 1)),
            alpha=problem.params.alpha,
            beta=problem.params.beta,
            beta_max=problem.params.beta_max,
        )
        targets = _distribute(view, rng, config, info, aggregation)
        assignment[members] = tree.leaves[leaf_rows[targets]]

    def recurse(node: int, members: np.ndarray) -> None:
        if len(members) == 0:
            return
        children = tree.children(node)
        if not children:
            assignment[members] = node  # node is itself a leaf broker
            return
        if len(children) == 1:
            recurse(children[0], members)
            return
        leaf_rows = tree.subtree_leaf_rows(node)
        all_leaf_children = all(tree.is_leaf(c) for c in children)
        if all_leaf_children or (gamma and len(members) <= gamma) \
                or len(leaf_rows) == len(children):
            solve_over_leaves(node, members)
            return

        view = SLPView(
            subscriptions=problem.subscriptions.take(members),
            network_points=problem.subscriber_points[members],
            feasible=_child_feasibility(problem, children, members),
            kappas_effective=np.array(
                [_subtree_kappa(problem, c) for c in children])
            * (m / max(len(members), 1)),
            alpha=problem.params.alpha,
            beta=problem.params.beta,
            beta_max=problem.params.beta_max,
        )
        targets = _distribute(view, rng, config, info, aggregation)
        for row, child in enumerate(children):
            recurse(child, members[targets == row])

    with geometry_cache() as cache, lp_workspace(workers=lp_workers) as ws:
        recurse(0, np.arange(m))
        with span("rebalance"):
            assignment = _global_rebalance(problem, assignment, info)
        with span("adjust"):
            filters = filters_from_assignment(problem, assignment, rng)
        info["geometry_cache"] = cache.stats()
        info["lp_workspace"] = ws.stats()

    fractional = (info["fractional_sum"]
                  if info["fractional_levels"] else None)
    info["runtime_seconds"] = time.perf_counter() - started
    return SASolution(
        problem=problem,
        assignment=assignment,
        filters=filters,
        fractional_bandwidth=fractional,
        info=info,
    )
