"""Filter adjustment (paper Section IV-C).

Given the subscriber assignment, the preliminary filters are discarded in
favour of tight final filters: for each broker, cluster its assigned
subscriptions into at most ``alpha`` groups and take per-group MEBs.
Minimizing the union volume exactly is NP-hard (Bilò et al.), so the
paper — and this module — uses the clustering heuristic
(:func:`repro.geometry.alpha_meb_cover`).

For multi-level trees, interior filters are rebuilt bottom-up from the
children's rectangles, which re-establishes the nesting condition by
construction; that shared machinery lives in
:func:`repro.core.problem.filters_from_assignment` and is re-used here.
"""

from __future__ import annotations

import numpy as np

from ...pubsub.filters import Filter
from ..problem import SAProblem, filters_from_assignment

__all__ = ["adjust_filters"]


def adjust_filters(problem: SAProblem, assignment: np.ndarray,
                   rng: np.random.Generator) -> dict[int, Filter]:
    """Final nested filters of complexity <= alpha for the whole tree."""
    return filters_from_assignment(problem, assignment, rng)
