"""SLP: subscriber assignment by linear programming (paper Sections IV-V)."""

from .aggregate import (
    AggregatedDistribution,
    Aggregation,
    AggregationConfig,
    aggregate_subscriptions,
    distribute_aggregated,
    expand_assignment,
    verify_aggregation,
)
from .assign_flow import (
    AssignmentOutcome,
    assign_subscriptions,
    assign_subscriptions_weighted,
)
from .adjust import adjust_filters
from .filtergen import FilterGenConfig, generate_candidate_filters
from .lp_relax import LPOutcome, lp_relax
from .multilevel import slp
from .sampling import FilterAssignConfig, FilterAssignResult, filter_assign
from .slp1 import slp1
from .view import SLPView, view_from_problem

__all__ = [
    "slp1",
    "slp",
    "SLPView",
    "view_from_problem",
    "FilterAssignConfig",
    "FilterAssignResult",
    "filter_assign",
    "FilterGenConfig",
    "generate_candidate_filters",
    "LPOutcome",
    "lp_relax",
    "AssignmentOutcome",
    "assign_subscriptions",
    "assign_subscriptions_weighted",
    "adjust_filters",
    "AggregationConfig",
    "Aggregation",
    "AggregatedDistribution",
    "aggregate_subscriptions",
    "verify_aggregation",
    "expand_assignment",
    "distribute_aggregated",
]
