"""SLP: subscriber assignment by linear programming (paper Sections IV-V)."""

from .assign_flow import AssignmentOutcome, assign_subscriptions
from .adjust import adjust_filters
from .filtergen import FilterGenConfig, generate_candidate_filters
from .lp_relax import LPOutcome, lp_relax
from .multilevel import slp
from .sampling import FilterAssignConfig, FilterAssignResult, filter_assign
from .slp1 import slp1
from .view import SLPView, view_from_problem

__all__ = [
    "slp1",
    "slp",
    "SLPView",
    "view_from_problem",
    "FilterAssignConfig",
    "FilterAssignResult",
    "filter_assign",
    "FilterGenConfig",
    "generate_candidate_filters",
    "LPOutcome",
    "lp_relax",
    "AssignmentOutcome",
    "assign_subscriptions",
    "adjust_filters",
]
