"""Subscription assignment given preliminary filters (paper Section IV-B).

With the preliminary filters fixed, the paper assigns subscribers by
max-flow over *coverage* edges (nesting + latency), escalating the
load-balance factor from ``beta`` toward ``beta_max`` only as needed.

A maximum flow is rarely unique, and the paper leaves the choice of flow
algorithm open ("depending on the maximum flow algorithm employed...").
Among all maximum flows we prefer a *locality-preserving* one: each
subscriber is first seeded with the covering broker whose covering
rectangle is tightest (smallest volume), under the ``beta`` capacity; the
seed flow is then completed to a maximum flow with standard augmenting
paths.  Augmentation only reshuffles the minimum necessary, so the final
filters (rebuilt from the assignment by the adjustment step) stay tight.
:func:`assign_subscriptions_maxflow` keeps the plain Dinic variant for
the ablation benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from ...flow.bipartite import assign_by_flow
from ...geometry import RectSet
from .view import SLPView

__all__ = ["AssignmentOutcome", "assign_subscriptions",
           "assign_subscriptions_maxflow", "assign_subscriptions_weighted"]


@dataclass
class AssignmentOutcome:
    """Result of the flow-based assignment over a view."""

    target_of: np.ndarray        #: (m_view,) target row per subscriber
    achieved_beta: float
    feasible: bool               #: routed everyone within beta_max caps
    info: dict[str, Any]
    #: subscribers max-flow could not route within beta_max (before the
    #: best-effort completion); FilterAssign doubles their weights
    unrouted_subscribers: np.ndarray | None = None


def _coverage_costs(view: SLPView, filters: list[RectSet]) -> np.ndarray:
    """(n_targets, m): volume of the tightest covering rect, inf if none."""
    m = view.num_subscribers
    cost = np.full((view.num_targets, m), np.inf)
    for i, rects in enumerate(filters):
        if len(rects) == 0:
            continue
        contains = rects.containment_matrix(view.subscriptions)   # (u, m)
        volumes = rects.volumes()
        masked = np.where(contains, volumes[:, None], np.inf)
        cost[i] = np.where(view.feasible[i], masked.min(axis=0), np.inf)
    return cost


class _SlotState:
    """Incremental <= alpha rectangle slots per target (flat, no tree).

    The locality cost of adding a subscription to a target is the least
    volume enlargement over the target's slots — the same R-tree rule the
    greedy algorithms use, here restricted to the LP's coverage edges.
    """

    def __init__(self, num_targets: int, alpha: int, dim: int) -> None:
        self.alpha = alpha
        self.lo = np.full((num_targets, alpha, dim), np.inf)
        self.hi = np.full((num_targets, alpha, dim), -np.inf)
        self.count = np.zeros(num_targets, dtype=int)
        # Slot volumes, maintained on commit (0 for unused slots) so the
        # hot costs() path need not recompute a prod per slot per call.
        self.volume = np.zeros((num_targets, alpha))
        self._slot_index = np.arange(alpha)[None, :]

    def costs(self, targets: np.ndarray, rect_lo: np.ndarray,
              rect_hi: np.ndarray) -> np.ndarray:
        slot_lo = self.lo[targets]
        slot_hi = self.hi[targets]
        counts = self.count[targets]
        used = self._slot_index < counts[:, None]
        grown_lo = np.minimum(slot_lo, rect_lo[None, None, :])
        grown_hi = np.maximum(slot_hi, rect_hi[None, None, :])
        old = np.where(used, self.volume[targets], 0.0)
        new = np.prod(grown_hi - grown_lo, axis=2)
        enlargement = np.where(used, new - old, np.inf)
        best = enlargement.min(axis=1)
        rect_volume = float(np.prod(rect_hi - rect_lo))
        open_cost = np.where(counts < self.alpha, rect_volume, np.inf)
        return np.minimum(best, open_cost)

    def _refresh_volume(self, target: int, slot: int) -> None:
        self.volume[target, slot] = np.prod(np.maximum(
            self.hi[target, slot] - self.lo[target, slot], 0.0))

    def commit(self, target: int, rect_lo: np.ndarray, rect_hi: np.ndarray) -> None:
        n = int(self.count[target])
        if n:
            grown_lo = np.minimum(self.lo[target, :n], rect_lo)
            grown_hi = np.maximum(self.hi[target, :n], rect_hi)
            enlargement = np.prod(grown_hi - grown_lo, axis=1) \
                - self.volume[target, :n]
            slot = int(enlargement.argmin())
            best = float(enlargement[slot])
        else:
            slot, best = -1, np.inf
        if n < self.alpha and float(np.prod(rect_hi - rect_lo)) < best:
            self.lo[target, n] = rect_lo
            self.hi[target, n] = rect_hi
            self.count[target] += 1
            self._refresh_volume(target, n)
        else:
            self.lo[target, slot] = np.minimum(self.lo[target, slot], rect_lo)
            self.hi[target, slot] = np.maximum(self.hi[target, slot], rect_hi)
            self._refresh_volume(target, slot)


def _capacities(view: SLPView, betabar: float) -> np.ndarray:
    return np.floor(betabar * view.kappas_effective
                    * view.num_subscribers).astype(int)


def _grouped_ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..c_0), [0..c_1), ...`` concatenated, for grouped gathers."""
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total) - np.repeat(starts, counts)


class _CovererCSR:
    """Per-subscriber coverer lists flattened into one index array.

    ``flat[starts[j]:starts[j] + counts[j]]`` are subscriber ``j``'s
    coverers in their original order.  The flat form lets :func:`_augment`
    expand a whole frontier target with a handful of array operations
    instead of a Python loop over (subscriber, coverer) pairs.

    ``replace`` updates one subscriber's list without a rebuild: the new
    list is appended to spare capacity at the tail and the row redirected
    (the widening pass replaces rows one at a time, so rebuilding the
    whole structure there was quadratic).
    """

    __slots__ = ("flat", "starts", "counts", "_used")

    def __init__(self, coverers: list[np.ndarray], spare: int = 0) -> None:
        counts = np.fromiter((len(c) for c in coverers), dtype=np.int64,
                             count=len(coverers))
        total = int(counts.sum())
        starts = np.cumsum(counts) - counts
        flat = np.empty(total + spare, dtype=np.int64)
        if total:
            np.concatenate(coverers, out=flat[:total])
        self.flat = flat
        self.starts = starts
        self.counts = counts
        self._used = total

    def replace(self, j: int, new_list: np.ndarray) -> None:
        end = self._used + len(new_list)
        if end > len(self.flat):  # grow geometrically when spare runs out
            grown = np.empty(max(end, 2 * len(self.flat)), dtype=np.int64)
            grown[:self._used] = self.flat[:self._used]
            self.flat = grown
        self.flat[self._used:end] = new_list
        self.starts[j] = self._used
        self.counts[j] = len(new_list)
        self._used = end


def _augment(j: int, csr: _CovererCSR, assigned: np.ndarray,
             loads: np.ndarray, caps: np.ndarray,
             subs_of: list[set[int]], num_targets: int,
             start_override: np.ndarray | None = None,
             saturated: np.ndarray | None = None) -> bool:
    """Find an augmenting path for subscriber ``j`` and apply it.

    BFS over targets: start from ``j``'s coverers; traverse by bumping an
    already-assigned subscriber to another of its coverers; stop at any
    target with spare capacity.  Returns False when no path exists (the
    current flow is maximum for these capacities).

    Each frontier target is expanded in one batch: the coverers of all its
    assigned subscribers are gathered from the CSR layout and the first
    discoverer of each newly seen target is kept — exactly what the
    former ``for s in subs_of[t]: for t2 in coverers[s]`` double loop
    produced, in the same discovery order.

    ``saturated``, when given, is a mask of targets proven unreachable to
    spare capacity by an earlier failed search under the *same* caps (see
    :func:`assign_subscriptions`); a failed search marks its closure there
    so later searches starting inside it return immediately.
    """
    flat, starts, counts_of = csr.flat, csr.starts, csr.counts
    if start_override is not None:
        start_targets = np.asarray(start_override, dtype=np.int64)
    else:
        start_targets = flat[starts[j]:starts[j] + counts_of[j]]
    if len(start_targets) == 0:
        return False
    if saturated is not None and saturated[start_targets].all():
        # Every start lies in a component already proven saturated: the
        # BFS would re-explore it and fail.  Failure has no side effects,
        # so the skip leaves all state exactly as the search would.
        return False
    visited = np.zeros(num_targets, dtype=bool)
    parent_prev = np.empty(num_targets, dtype=np.int64)  # -1 = path start
    parent_sub = np.empty(num_targets, dtype=np.int64)   # subscriber moved in
    visited[start_targets] = True
    parent_prev[start_targets] = -1
    parent_sub[start_targets] = j
    queue: deque[int] = deque(start_targets.tolist())

    end = -1
    while queue:
        t = queue.popleft()
        if loads[t] < caps[t]:
            end = t
            break
        subs = subs_of[t]
        if not subs:
            continue
        subs_arr = np.fromiter(subs, dtype=np.int64, count=len(subs))
        counts = counts_of[subs_arr]
        total = int(counts.sum())
        if total == 0:
            continue
        gather = np.repeat(starts[subs_arr], counts) + _grouped_ranges(counts)
        t2s = flat[gather]
        unvisited = ~visited[t2s]
        if not unvisited.any():
            continue
        t2s = t2s[unvisited]
        sources = np.repeat(subs_arr, counts)[unvisited]
        uniq, first = np.unique(t2s, return_index=True)
        visited[uniq] = True
        parent_prev[uniq] = t
        parent_sub[uniq] = sources[first]
        queue.extend(uniq[np.argsort(first)].tolist())
    if end < 0:
        # The search exhausted a saturated component; its visited set is
        # expansion-closed, so it stays saturated until the caps change
        # (successful augments never touch targets inside it).
        if saturated is not None:
            saturated |= visited
        return False

    # Walk back, shifting each moved subscriber one target forward.  The
    # net load change lands entirely on the spare-capacity endpoint: every
    # intermediate target loses one subscriber and gains one.
    loads[end] += 1
    t = end
    while True:
        prev, moved = int(parent_prev[t]), int(parent_sub[t])
        if prev == -1:
            assigned[moved] = t
            subs_of[t].add(moved)
            break
        subs_of[prev].discard(moved)
        subs_of[t].add(moved)
        assigned[moved] = t
        t = prev
    return True


def assign_subscriptions(view: SLPView, filters: list[RectSet],
                         escalation_step: float = 1.05) -> AssignmentOutcome:
    """Locality-seeded maximum-flow assignment with lbf escalation."""
    m = view.num_subscribers
    cost = _coverage_costs(view, filters)
    covered = np.isfinite(cost)

    uncoverable = np.flatnonzero(~covered.any(axis=0))
    for j in uncoverable:
        # No covering target (possible after a fallback): offer every
        # latency-feasible target, or any target as a last resort, at a
        # cost that keeps these edges strictly last-choice.
        feasible_targets = np.flatnonzero(view.feasible[:, j])
        if len(feasible_targets) == 0:
            feasible_targets = np.arange(view.num_targets)
        cost[feasible_targets, j] = np.nanmax(
            np.where(np.isfinite(cost), cost, np.nan)) + 1.0 \
            if np.isfinite(cost).any() else 1.0
        covered[feasible_targets, j] = True

    coverers = [np.flatnonzero(covered[:, j]) for j in range(m)]

    betabar = view.beta
    caps = _capacities(view, betabar)
    loads = np.zeros(view.num_targets, dtype=int)
    assigned = np.full(m, -1, dtype=int)
    subs_of: list[set[int]] = [set() for _ in range(view.num_targets)]

    # Phase 1: assign each subscriber to the covering target with the
    # least incremental filter enlargement (under spare beta capacity),
    # fewest-options subscribers first — the locality-preserving choice
    # among the maximum flows.  Ties break toward the tightest covering
    # rect, then the least relative load.
    state = _SlotState(view.num_targets, view.alpha, view.subscriptions.dim)
    order = np.argsort([len(c) for c in coverers], kind="stable")
    stranded: list[int] = []
    for j in order:
        options = coverers[j]
        open_mask = loads[options] < caps[options]
        if open_mask.any():
            open_options = options[open_mask]
            sub_lo = view.subscriptions.lo[j]
            sub_hi = view.subscriptions.hi[j]
            enlargement = state.costs(open_options, sub_lo, sub_hi)
            ranked = np.lexsort((
                loads[open_options] / np.maximum(
                    view.kappas_effective[open_options], 1e-12),
                cost[open_options, j],
                enlargement))
            pick = int(open_options[ranked[0]])
            assigned[j] = pick
            subs_of[pick].add(int(j))
            loads[pick] += 1
            state.commit(pick, sub_lo, sub_hi)
        else:
            stranded.append(int(j))

    # Phase 2: complete to a maximum flow; escalate the lbf when stuck.
    # Within one round the caps are fixed, so each failed search proves
    # its explored component saturated and later searches confined to it
    # are skipped (``saturated`` resets when the lbf escalates).
    escalations = 0
    remaining = stranded
    csr = _CovererCSR(coverers, spare=view.num_targets)
    while remaining:
        still: list[int] = []
        saturated = np.zeros(view.num_targets, dtype=bool)
        for j in remaining:
            if not _augment(j, csr, assigned, loads, caps, subs_of,
                            view.num_targets, saturated=saturated):
                still.append(j)
        if not still:
            remaining = still
            break
        if betabar >= view.beta_max:
            remaining = still
            break
        betabar = min(betabar * escalation_step, view.beta_max)
        caps = _capacities(view, betabar)
        escalations += 1
        remaining = still

    # Widening pass: coverage edges are a preference, not a hard
    # constraint — the final filters are rebuilt from the assignment, so a
    # latency-feasible non-covering target is valid (it merely costs
    # bandwidth).  Let stranded subscribers use any latency-feasible
    # target and augment once more at the current cap before giving up.
    if remaining:
        widened = []
        for j in remaining:
            extra = np.flatnonzero(view.feasible[:, j])
            if len(extra):
                coverers[j] = np.union1d(coverers[j], extra)
            if _augment(j, csr, assigned, loads, caps, subs_of,
                        view.num_targets, start_override=coverers[j]):
                # j is now assigned, so its widened coverer list can matter
                # to later traversals — patch its CSR row.  Unassigned
                # subscribers are reached only through their own start set,
                # which is passed explicitly above.
                csr.replace(j, coverers[j])
            else:
                widened.append(j)
        remaining = widened

    # Best-effort completion for anyone max-flow could not route.
    feasible = not remaining and len(uncoverable) == 0
    unrouted = np.array(remaining, dtype=int)
    for j in remaining:
        options = coverers[j]
        relative = loads[options] / np.maximum(
            view.kappas_effective[options], 1e-12)
        pick = int(options[relative.argmin()])
        assigned[j] = pick
        loads[pick] += 1

    return AssignmentOutcome(
        target_of=assigned,
        achieved_beta=betabar,
        feasible=feasible,
        info={
            "stranded_after_seed": len(stranded),
            "unrouted": len(remaining),
            "uncoverable": len(uncoverable),
            "escalations": escalations,
        },
        unrouted_subscribers=unrouted,
    )


def assign_subscriptions_maxflow(view: SLPView, filters: list[RectSet],
                                 escalation_step: float = 1.05) -> AssignmentOutcome:
    """Plain Dinic max-flow assignment (ablation baseline; no locality)."""
    coverage = view.coverage(filters)
    candidates = [np.flatnonzero(coverage[:, j])
                  for j in range(view.num_subscribers)]
    uncoverable = [j for j, c in enumerate(candidates) if len(c) == 0]
    for j in uncoverable:
        feasible_targets = np.flatnonzero(view.feasible[:, j])
        candidates[j] = (feasible_targets if len(feasible_targets)
                         else np.arange(view.num_targets))

    flow = assign_by_flow(candidates, view.kappas_effective, view.beta,
                          view.beta_max, escalation_step=escalation_step)
    target_of = flow.assignment.copy()
    unrouted = np.flatnonzero(target_of < 0)
    if len(unrouted):
        loads = np.bincount(target_of[target_of >= 0],
                            minlength=view.num_targets).astype(float)
        for j in unrouted:
            options = candidates[j]
            relative = loads[options] / np.maximum(
                view.kappas_effective[options], 1e-12)
            pick = int(options[relative.argmin()])
            target_of[j] = pick
            loads[pick] += 1

    return AssignmentOutcome(
        target_of=target_of,
        achieved_beta=flow.achieved_beta,
        feasible=flow.feasible and not uncoverable,
        info={
            "stranded_after_seed": int(len(unrouted)),
            "unrouted": int(len(unrouted)),
            "uncoverable": len(uncoverable),
            "escalations": 0,
        },
    )


def assign_subscriptions_weighted(view: SLPView, filters: list[RectSet],
                                  escalation_step: float = 1.05
                                  ) -> AssignmentOutcome:
    """Assignment for weighted views (super-subscriptions).

    Groups are indivisible, so this is bin packing rather than max-flow:
    a best-fit-decreasing greedy with the same locality rule as
    :func:`assign_subscriptions` (least filter enlargement under spare
    capacity, ties toward the tightest covering rect then the least
    relative load), escalating the load-balance factor toward
    ``beta_max`` for whatever will not fit.  Capacities are expressed in
    *member* units (``floor(betabar * kappa_i * total_weight)``) —
    exactly the caps the expanded member-level problem has — and any
    residual overload is repaired exactly at member granularity by the
    aggregation driver after expansion.
    """
    if view.weights is None:
        raise ValueError("weighted assignment requires view.weights")
    weights = view.weights.astype(np.int64)
    m = view.num_subscribers
    total = float(weights.sum())
    cost = _coverage_costs(view, filters)
    covered = np.isfinite(cost)

    uncoverable = np.flatnonzero(~covered.any(axis=0))
    for j in uncoverable:
        feasible_targets = np.flatnonzero(view.feasible[:, j])
        if len(feasible_targets) == 0:
            feasible_targets = np.arange(view.num_targets)
        cost[feasible_targets, j] = np.nanmax(
            np.where(np.isfinite(cost), cost, np.nan)) + 1.0 \
            if np.isfinite(cost).any() else 1.0
        covered[feasible_targets, j] = True

    coverers = [np.flatnonzero(covered[:, j]) for j in range(m)]

    def caps_at(b: float) -> np.ndarray:
        return np.floor(b * view.kappas_effective * total).astype(np.int64)

    betabar = view.beta
    caps = caps_at(betabar)
    loads = np.zeros(view.num_targets, dtype=np.int64)
    assigned = np.full(m, -1, dtype=int)

    # Fewest options first, heaviest first within a tie: the constrained
    # heavy groups claim capacity while every bin is still open.
    num_options = np.fromiter((len(c) for c in coverers), dtype=np.int64,
                              count=m)
    order = np.lexsort((-weights, num_options))

    state = _SlotState(view.num_targets, view.alpha, view.subscriptions.dim)
    stranded: list[int] = []
    for j in order:
        options = coverers[j]
        open_mask = loads[options] + weights[j] <= caps[options]
        if open_mask.any():
            open_options = options[open_mask]
            sub_lo = view.subscriptions.lo[j]
            sub_hi = view.subscriptions.hi[j]
            enlargement = state.costs(open_options, sub_lo, sub_hi)
            ranked = np.lexsort((
                loads[open_options] / np.maximum(
                    view.kappas_effective[open_options], 1e-12),
                cost[open_options, j],
                enlargement))
            pick = int(open_options[ranked[0]])
            assigned[j] = pick
            loads[pick] += weights[j]
            state.commit(pick, sub_lo, sub_hi)
        else:
            stranded.append(int(j))

    # Escalate the lbf for whatever would not fit; groups stay whole, so
    # only the caps move (a path-augmenting exchange of unequal weights
    # is not a flow — the member-level repair handles the remainder).
    escalations = 0
    remaining = stranded
    while remaining and betabar < view.beta_max:
        betabar = min(betabar * escalation_step, view.beta_max)
        caps = caps_at(betabar)
        escalations += 1
        still: list[int] = []
        for j in remaining:
            options = coverers[j]
            open_mask = loads[options] + weights[j] <= caps[options]
            if open_mask.any():
                open_options = options[open_mask]
                relative = loads[open_options] / np.maximum(
                    view.kappas_effective[open_options], 1e-12)
                ranked = np.lexsort((relative, cost[open_options, j]))
                pick = int(open_options[ranked[0]])
                assigned[j] = pick
                loads[pick] += weights[j]
            else:
                still.append(j)
        remaining = still

    feasible = not remaining and len(uncoverable) == 0
    unrouted = np.array(remaining, dtype=int)
    for j in remaining:  # best effort: least relative load among coverers
        options = coverers[j]
        relative = loads[options] / np.maximum(
            view.kappas_effective[options], 1e-12)
        pick = int(options[relative.argmin()])
        assigned[j] = pick
        loads[pick] += weights[j]

    return AssignmentOutcome(
        target_of=assigned,
        achieved_beta=betabar,
        feasible=feasible,
        info={
            "stranded_after_seed": len(stranded),
            "unrouted": len(remaining),
            "uncoverable": len(uncoverable),
            "escalations": escalations,
        },
        unrouted_subscribers=unrouted,
    )
