"""Name-to-algorithm registry used by benches and examples.

Every algorithm shares the signature ``fn(problem, **kwargs) -> SASolution``.
Names follow the paper: Gr, Gr*, Gr-no-latency (Gr¬l), Closest,
Closest-no-balance (Closest¬b), Balance, SLP1, SLP.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .baselines import balance_assignment, closest_broker
from .greedy import offline_greedy, online_greedy
from .problem import SAProblem, SASolution
from .slp import slp, slp1

__all__ = ["ALGORITHMS", "get_algorithm", "algorithm_names"]

AlgorithmFn = Callable[..., SASolution]


def _gr(problem: SAProblem, **kwargs: Any) -> SASolution:
    return online_greedy(problem, **kwargs)


def _gr_no_latency(problem: SAProblem, **kwargs: Any) -> SASolution:
    return online_greedy(problem, respect_latency=False, **kwargs)


def _gr_star(problem: SAProblem, **kwargs: Any) -> SASolution:
    return offline_greedy(problem, **kwargs)


def _closest(problem: SAProblem, **kwargs: Any) -> SASolution:
    return closest_broker(problem, enforce_load_cap=True, **kwargs)


def _closest_no_balance(problem: SAProblem, **kwargs: Any) -> SASolution:
    return closest_broker(problem, enforce_load_cap=False, **kwargs)


ALGORITHMS: dict[str, AlgorithmFn] = {
    "Gr": _gr,
    "Gr*": _gr_star,
    "Gr-no-latency": _gr_no_latency,
    "Closest": _closest,
    "Closest-no-balance": _closest_no_balance,
    "Balance": balance_assignment,
    "SLP1": slp1,
    "SLP": slp,
}


def get_algorithm(name: str) -> AlgorithmFn:
    try:
        return ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None


def algorithm_names() -> list[str]:
    return list(ALGORITHMS)
