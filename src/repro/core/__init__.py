"""Core: the SA problem, greedy algorithms, baselines, and SLP."""

from .baselines import balance_assignment, closest_broker
from .greedy import offline_greedy, online_greedy
from .problem import (
    SAParameters,
    SAProblem,
    SASolution,
    ValidationReport,
    filters_from_assignment,
)
from .registry import ALGORITHMS, algorithm_names, get_algorithm
from .slp import FilterAssignConfig, FilterGenConfig, slp, slp1

__all__ = [
    "SAParameters",
    "SAProblem",
    "SASolution",
    "ValidationReport",
    "filters_from_assignment",
    "online_greedy",
    "offline_greedy",
    "closest_broker",
    "balance_assignment",
    "slp1",
    "slp",
    "FilterAssignConfig",
    "FilterGenConfig",
    "ALGORITHMS",
    "get_algorithm",
    "algorithm_names",
]
