"""The subscriber assignment (SA) problem and its solutions.

This module defines the problem instance handed to every algorithm in the
library, plus the solution container and a full constraint validator.

Latency semantics (paper Section VI, "Problem Settings"): constraints are
specified by a *maximum delay* ``D``.  The delay experienced by subscriber
``S`` is ``delta / Delta - 1`` where ``delta`` is the latency of the path
publisher -> leaf -> subscriber actually used and ``Delta`` the shortest
achievable such latency; an assignment is valid iff every subscriber's
delay is at most ``D``, i.e. ``delta_j <= (1 + D) * Delta_j``.

The alternative ``last_hop`` mode (paper Section II, "Our approach can be
extended ...") bounds only the leaf-to-subscriber distance relative to the
closest broker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..geometry import RectSet, alpha_meb_cover
from ..network.tree import BrokerTree
from ..pubsub.filters import Filter

__all__ = ["SAParameters", "SAProblem", "SASolution", "ValidationReport",
           "filters_from_assignment"]

#: Relative tolerance for latency feasibility checks (floating point slack).
LATENCY_RTOL = 1e-9


@dataclass(frozen=True)
class SAParameters:
    """User-facing knobs of the SA problem (paper Section II)."""

    alpha: int = 3             #: max rectangles per broker filter
    max_delay: float = 0.3     #: D; latency budget is (1 + D) * shortest
    beta: float = 1.5          #: desired load-balance factor
    beta_max: float = 1.8      #: hard cap on the load-balance factor
    latency_mode: str = "path"  #: "path" (default) or "last_hop"

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError("alpha must be at least 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if not (0 < self.beta <= self.beta_max):
            raise ValueError("need 0 < beta <= beta_max")
        if self.latency_mode not in ("path", "last_hop"):
            raise ValueError("latency_mode must be 'path' or 'last_hop'")


class SAProblem:
    """An SA instance: tree, subscribers, subscriptions, constraints.

    All derived latency structures are computed once at construction:
    the per-leaf latency matrix, shortest achievable latencies ``Delta_j``,
    latency budgets ``delta_j``, and the leaf-feasibility matrix.
    """

    def __init__(self,
                 tree: BrokerTree,
                 subscriber_points: np.ndarray,
                 subscriptions: RectSet,
                 params: SAParameters | None = None,
                 kappas: np.ndarray | None = None,
                 latency_budgets: np.ndarray | None = None) -> None:
        points = np.ascontiguousarray(subscriber_points, dtype=float)
        if points.ndim != 2:
            raise ValueError("subscriber_points must have shape (m, d)")
        if points.shape[1] != tree.network_dim:
            raise ValueError("subscriber points must live in the tree's network space")
        if len(subscriptions) != points.shape[0]:
            raise ValueError("one subscription per subscriber required")

        self.tree = tree
        self.subscriber_points = points
        self.subscriptions = subscriptions
        self.params = params or SAParameters()

        num_leaves = tree.num_leaves
        if kappas is None:
            kappas = np.full(num_leaves, 1.0 / num_leaves)
        else:
            kappas = np.asarray(kappas, dtype=float)
            if kappas.shape != (num_leaves,):
                raise ValueError("one capacity fraction per leaf broker required")
            if np.any(kappas <= 0) or not np.isclose(kappas.sum(), 1.0):
                raise ValueError("capacity fractions must be positive and sum to 1")
        self.kappas = kappas

        # (num_leaves, m): latency of serving subscriber j via leaf row i.
        if self.params.latency_mode == "path":
            self.leaf_latency = tree.subscriber_latencies(points)
        else:
            from ..network.space import pairwise_distances
            self.leaf_latency = pairwise_distances(tree.leaf_positions(), points)

        #: Delta_j — the best achievable latency per subscriber.
        self.shortest_latency = self.leaf_latency.min(axis=0)

        if latency_budgets is not None:
            budgets = np.asarray(latency_budgets, dtype=float)
            if budgets.shape != (points.shape[0],):
                raise ValueError("one latency budget per subscriber required")
            self.latency_budgets = budgets
        else:
            self.latency_budgets = (1.0 + self.params.max_delay) * self.shortest_latency

        slack = 1.0 + LATENCY_RTOL
        #: (num_leaves, m) boolean: leaf row i may serve subscriber j.
        self.feasible_leaf = self.leaf_latency <= self.latency_budgets[None, :] * slack

    # -- convenience accessors ------------------------------------------------

    @property
    def num_subscribers(self) -> int:
        return self.subscriber_points.shape[0]

    @property
    def num_leaf_brokers(self) -> int:
        return self.tree.num_leaves

    @property
    def event_dim(self) -> int:
        return self.subscriptions.dim

    def candidate_leaf_rows(self, subscriber: int) -> np.ndarray:
        """Leaf rows (into ``tree.leaves``) satisfying subscriber's latency."""
        return np.flatnonzero(self.feasible_leaf[:, subscriber])

    def candidate_counts(self) -> np.ndarray:
        """Per-subscriber count of latency-feasible leaves (Gr* ordering key)."""
        return self.feasible_leaf.sum(axis=0)

    def delays(self, assignment: np.ndarray) -> np.ndarray:
        """Per-subscriber delay ``delta / Delta - 1`` under ``assignment``.

        ``assignment`` maps subscribers to leaf *node ids*; unassigned
        entries (-1) get ``inf``.
        """
        assignment = np.asarray(assignment, dtype=int)
        delays = np.full(self.num_subscribers, np.inf)
        assigned = assignment >= 0
        if assigned.any():
            rows = np.array([self.tree.leaf_row(a) for a in assignment[assigned]])
            used = self.leaf_latency[rows, np.flatnonzero(assigned)]
            base = self.shortest_latency[assigned]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = np.where(base > 0, used / np.where(base > 0, base, 1.0), 1.0)
            delays[assigned] = ratio - 1.0
        return delays

    def loads(self, assignment: np.ndarray) -> np.ndarray:
        """Subscribers per leaf broker (canonical leaf order)."""
        assignment = np.asarray(assignment, dtype=int)
        loads = np.zeros(self.num_leaf_brokers, dtype=int)
        for leaf_node in assignment[assignment >= 0]:
            loads[self.tree.leaf_row(int(leaf_node))] += 1
        return loads

    def load_balance_factor(self, assignment: np.ndarray) -> float:
        """``max_i m_i / (kappa_i m)`` — the paper's lbf."""
        loads = self.loads(assignment)
        return float((loads / (self.kappas * self.num_subscribers)).max())

    def __repr__(self) -> str:
        return (f"SAProblem(m={self.num_subscribers}, "
                f"leaves={self.num_leaf_brokers}, "
                f"event_dim={self.event_dim}, params={self.params})")


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of checking a solution against every constraint."""

    all_assigned: bool
    latency_ok: bool
    nesting_ok: bool
    complexity_ok: bool
    lbf: float
    lbf_within_max: bool
    num_latency_violations: int
    num_nesting_violations: int

    @property
    def feasible(self) -> bool:
        return (self.all_assigned and self.latency_ok and self.nesting_ok
                and self.complexity_ok and self.lbf_within_max)


@dataclass
class SASolution:
    """An assignment plus broker filters, with optional solver metadata."""

    problem: SAProblem
    assignment: np.ndarray                 #: (m,) leaf node ids, -1 = unassigned
    filters: dict[int, Filter]             #: broker node id -> filter
    fractional_bandwidth: float | None = None  #: LP lower bound (SLP only)
    info: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> ValidationReport:
        problem = self.problem
        assignment = np.asarray(self.assignment, dtype=int)
        assigned = assignment >= 0
        all_assigned = bool(assigned.all())

        delays = problem.delays(assignment)
        tolerance = problem.params.max_delay + 1e-6
        latency_violations = int(np.sum(delays[assigned] > tolerance))

        complexity_ok = all(
            f.complexity <= problem.params.alpha for f in self.filters.values())

        nesting_violations = self._count_nesting_violations()

        lbf = problem.load_balance_factor(assignment)
        return ValidationReport(
            all_assigned=all_assigned,
            latency_ok=latency_violations == 0,
            nesting_ok=nesting_violations == 0,
            complexity_ok=complexity_ok,
            lbf=lbf,
            lbf_within_max=lbf <= problem.params.beta_max + 1e-9,
            num_latency_violations=latency_violations,
            num_nesting_violations=nesting_violations,
        )

    def _count_nesting_violations(self) -> int:
        """Subscriptions not covered by their leaf filter, plus child filters
        not contained in their parent filter (as point sets)."""
        problem = self.problem
        tree = problem.tree
        violations = 0

        # Leaf level: each assigned subscription must be covered.
        for j in range(problem.num_subscribers):
            leaf = int(self.assignment[j])
            if leaf < 0:
                continue
            leaf_filter = self.filters.get(leaf)
            if leaf_filter is None or not leaf_filter.contains_subscription(
                    problem.subscriptions.rect(j)):
                violations += 1

        # Interior: child filter must nest inside the parent filter.
        for node in range(1, tree.num_nodes):
            parent = int(tree.parents[node])
            if parent == 0:
                continue  # the publisher forwards everything
            child_filter = self.filters.get(node)
            parent_filter = self.filters.get(parent)
            if child_filter is None or child_filter.is_empty():
                continue
            if parent_filter is None or not parent_filter.covers_filter(child_filter):
                violations += 1
        return violations


def filters_from_assignment(problem: SAProblem, assignment: np.ndarray,
                            rng: np.random.Generator) -> dict[int, Filter]:
    """Build nested filters bottom-up from a subscriber assignment.

    Leaf filters cover their assigned subscriptions with at most ``alpha``
    MEBs (the paper's filter-adjustment heuristic); each interior filter
    covers the union of its children's rectangles the same way.  The
    result satisfies nesting and complexity by construction.
    """
    tree = problem.tree
    alpha = problem.params.alpha
    assignment = np.asarray(assignment, dtype=int)
    filters: dict[int, Filter] = {}

    # Process leaves first, then interior nodes deepest-first.
    nodes_by_depth = sorted(range(1, tree.num_nodes),
                            key=tree.depth, reverse=True)
    for node in nodes_by_depth:
        if tree.is_leaf(node):
            members = np.flatnonzero(assignment == node)
            if len(members) == 0:
                filters[node] = Filter.empty(problem.event_dim)
            else:
                subs = problem.subscriptions.take(members)
                filters[node] = Filter(alpha_meb_cover(subs, alpha, rng))
        else:
            child_rects = [filters[c].rects for c in tree.children(node)
                           if not filters[c].is_empty()]
            if not child_rects:
                filters[node] = Filter.empty(problem.event_dim)
            else:
                merged = child_rects[0]
                for extra in child_rects[1:]:
                    merged = merged.concat(extra)
                filters[node] = Filter(alpha_meb_cover(merged, alpha, rng))
    return filters
