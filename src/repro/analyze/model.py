"""Data model of the static analyzer: modules, rules, violations.

A :class:`SourceModule` is one parsed file plus everything a rule needs
to inspect it (the AST, the raw source lines for pragma lookup, and the
package it belongs to, which scopes rule applicability).  A
:class:`Rule` turns a module into :class:`Violation` records; the engine
in :mod:`repro.analyze.engine` owns file discovery, scoping, and the
pragma allowlist.

Violations are identified by ``(rule, file, line)`` and aggregated into
``file::rule`` ratchet keys — the unit the committed baseline counts and
the CI gate compares (see :mod:`repro.analyze.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Violation", "SourceModule", "Rule", "PRAGMA_RE",
           "import_aliases", "dotted_name"]

#: Inline waiver: ``# analyze: allow[DET003] provenance timestamps are
#: wall-clock by design``.  ``allow[*]`` waives every rule on the line.
#: The pragma is honoured on the flagged line or the line directly above,
#: so multi-line statements can carry the waiver next to the reason.
PRAGMA_RE = re.compile(r"#\s*analyze:\s*allow\[([A-Z0-9*,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule: str          #: rule id, e.g. ``DET001``
    path: str          #: path relative to the scanned root's parent
    line: int          #: 1-indexed source line
    col: int           #: 0-indexed column
    message: str       #: human-readable description of the hazard

    @property
    def ratchet_key(self) -> str:
        """The ``file::rule`` bucket the baseline counts."""
        return f"{self.path}::{self.rule}"

    def as_dict(self) -> dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class SourceModule:
    """One parsed source file, ready for rule inspection."""

    path: Path              #: absolute path on disk
    relpath: str            #: path relative to the scan root's parent
    package: str            #: first package segment under the root ("" = root)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, relpath: str, package: str) -> "SourceModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path=path, relpath=relpath, package=package,
                   source=source, lines=source.splitlines(), tree=tree)

    @classmethod
    def from_source(cls, source: str, relpath: str = "snippet.py",
                    package: str = "") -> "SourceModule":
        """Parse from a string — the unit-test entry point."""
        tree = ast.parse(source, filename=relpath)
        return cls(path=Path(relpath), relpath=relpath, package=package,
                   source=source, lines=source.splitlines(), tree=tree)

    def allowed_rules(self, line: int) -> set[str]:
        """Rules waived by an ``analyze: allow[...]`` pragma at ``line``.

        Looks at the flagged line and the one above it.
        """
        waived: set[str] = set()
        for idx in (line - 1, line - 2):  # 0-indexed: same line, line above
            if 0 <= idx < len(self.lines):
                match = PRAGMA_RE.search(self.lines[idx])
                if match:
                    waived.update(part.strip()
                                  for part in match.group(1).split(","))
        return waived


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import numpy as np`` yields ``{"np": "numpy"}``; ``from datetime
    import datetime`` yields ``{"datetime": "datetime.datetime"}``.  The
    map lets rules match calls like ``np.random.rand()`` against
    canonical patterns (``numpy.random.rand``) regardless of how the
    module spells its imports.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = \
                    f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str] | None = None) -> str | None:
    """The canonical dotted name of a Name/Attribute chain, or ``None``.

    ``np.random.default_rng`` resolves through the module's import
    aliases to ``numpy.random.default_rng``; non-name expressions (calls,
    subscripts) yield ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases and root in aliases:
        root = aliases[root]
    parts.append(root)
    return ".".join(reversed(parts))


class Rule:
    """Base class for one analysis rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``packages`` scopes applicability: ``None`` applies everywhere,
    otherwise only to modules whose first package segment is listed.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    packages: frozenset[str] | None = None

    def applies_to(self, module: SourceModule) -> bool:
        return self.packages is None or module.package in self.packages

    def check(self, module: SourceModule) -> list[Violation]:
        raise NotImplementedError

    def violation(self, module: SourceModule, node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule=self.rule_id, path=module.relpath,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message)
