"""Determinism & async-safety static analysis with a ratcheted CI gate.

An AST-based rule engine tuned to this codebase's correctness story:

* **determinism rules** (DET0xx) over the result-bearing packages —
  unseeded RNGs, global RNG state, wall-clock reads, hash-salted set
  iteration, float equality in invariant code;
* **async-safety rules** (ASY0xx) over :mod:`repro.serve` — un-awaited
  coroutines, untracked tasks, blocking calls on the event loop, and
  shared-state writes straddling an ``await``;
* **contract rules** (CON0xx) — fully annotated public APIs in the
  mypy-strict packages, no bare or silent exception handlers.

``python -m repro analyze`` runs the engine; ``--check-against
analyze_baseline.json`` enforces the ratchet (violations may only
decrease) and exits 2 on regression.  Intentional exceptions carry an
inline ``# analyze: allow[RULE] reason`` pragma, so every waiver is
visible at the offending line.  See DESIGN.md section 8.
"""

from .baseline import RatchetResult, check_ratchet, load_baseline, write_baseline
from .engine import (
    ALL_RULES,
    ANALYZE_SCHEMA_VERSION,
    AnalysisReport,
    analyze_module,
    default_rules,
    run_analysis,
)
from .model import Rule, SourceModule, Violation

__all__ = [
    "ALL_RULES",
    "ANALYZE_SCHEMA_VERSION",
    "AnalysisReport",
    "RatchetResult",
    "Rule",
    "SourceModule",
    "Violation",
    "analyze_module",
    "check_ratchet",
    "default_rules",
    "load_baseline",
    "run_analysis",
    "write_baseline",
]
