"""The analysis engine: file discovery, rule dispatch, report payload.

``run_analysis`` walks a source root (``src/repro`` by default), parses
every ``*.py`` file once, applies each registered rule to the modules in
its package scope, filters waived findings through the inline
``# analyze: allow[RULE]`` pragma, and returns an :class:`AnalysisReport`
whose JSON payload carries the same ``schema_version`` + git/host
provenance block as the bench payloads — analyzer runs are comparable
artifacts, exactly like perf numbers.

The committed ratchet baseline (see :mod:`repro.analyze.baseline`) is
keyed on the report's per-``file::rule`` violation counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..bench.harness import run_metadata
from .asyncsafety import (
    AwaitStraddleRule,
    BlockingCallRule,
    UnawaitedCoroutineRule,
    UntrackedTaskRule,
)
from .contracts import BareExceptRule, MissingAnnotationsRule, SilentHandlerRule
from .determinism import (
    FloatEqualityRule,
    GlobalRngRule,
    SetOrderRule,
    UnseededRngRule,
    WallClockRule,
)
from .model import Rule, SourceModule, Violation

__all__ = ["ANALYZE_SCHEMA_VERSION", "ALL_RULES", "AnalysisReport",
           "default_rules", "analyze_module", "run_analysis"]

#: Version of the analyzer report payload layout.
ANALYZE_SCHEMA_VERSION = 1

#: Every registered rule class, in catalog order.
ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRngRule, GlobalRngRule, WallClockRule, SetOrderRule,
    FloatEqualityRule,
    UnawaitedCoroutineRule, UntrackedTaskRule, BlockingCallRule,
    AwaitStraddleRule,
    MissingAnnotationsRule, BareExceptRule, SilentHandlerRule,
)


def default_rules(selected: list[str] | None = None) -> list[Rule]:
    """Instantiate the rule catalog, optionally filtered by id prefix.

    ``selected`` entries match whole ids (``DET004``) or families
    (``DET``); unknown selectors raise so CI typos fail loudly.
    """
    rules = [cls() for cls in ALL_RULES]
    if selected is None:
        return rules
    known = {r.rule_id for r in rules} | {r.rule_id[:3] for r in rules}
    unknown = [s for s in selected if s not in known]
    if unknown:
        raise ValueError(f"unknown rule selector(s) {unknown}; "
                         f"known: {sorted(known)}")
    return [r for r in rules
            if r.rule_id in selected or r.rule_id[:3] in selected]


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced."""

    root: str
    files_scanned: int
    violations: list[Violation]
    allowlisted: list[Violation]
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def counts(self) -> dict[str, int]:
        """Violations per ``file::rule`` — the ratchet currency."""
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.ratchet_key] = out.get(violation.ratchet_key, 0) + 1
        return dict(sorted(out.items()))

    def by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return dict(sorted(out.items()))

    def as_payload(self, rules: list[Rule]) -> dict[str, object]:
        """The JSON report, schema-versioned and provenance-stamped."""
        return {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "tool": "repro.analyze",
            "root": self.root,
            "files_scanned": self.files_scanned,
            "total_violations": len(self.violations),
            "total_allowlisted": len(self.allowlisted),
            "counts": self.counts(),
            "by_rule": self.by_rule(),
            "violations": [v.as_dict() for v in sorted(
                self.violations, key=lambda v: (v.path, v.line, v.rule))],
            "allowlisted": [v.as_dict() for v in sorted(
                self.allowlisted, key=lambda v: (v.path, v.line, v.rule))],
            "parse_errors": list(self.parse_errors),
            "rule_catalog": [
                {"id": r.rule_id, "title": r.title,
                 "packages": (sorted(r.packages) if r.packages is not None
                              else "all"),
                 "rationale": r.rationale}
                for r in rules],
            "metadata": run_metadata(),
        }


def analyze_module(module: SourceModule,
                   rules: list[Rule]) -> tuple[list[Violation], list[Violation]]:
    """Apply the in-scope rules to one module; split out pragma waivers."""
    kept: list[Violation] = []
    waived: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for violation in rule.check(module):
            allowed = module.allowed_rules(violation.line)
            if violation.rule in allowed or "*" in allowed:
                waived.append(violation)
            else:
                kept.append(violation)
    return kept, waived


def discover(root: Path) -> list[tuple[Path, str, str]]:
    """``(path, relpath, package)`` for every source file under ``root``.

    ``relpath`` is rooted at the scanned package directory (e.g.
    ``repro/core/problem.py``) so baseline keys are stable no matter
    where the checkout lives or what the CWD is.
    """
    root = root.resolve()
    entries = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        relpath = (Path(root.name) / rel).as_posix()
        package = rel.parts[0] if len(rel.parts) > 1 else ""
        entries.append((path, relpath, package))
    return entries


def run_analysis(root: Path | str | None = None,
                 rules: list[Rule] | None = None) -> AnalysisReport:
    """Analyze every module under ``root`` with the given rules."""
    if root is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"analysis root {root} is not a directory")
    if rules is None:
        rules = default_rules()

    violations: list[Violation] = []
    allowlisted: list[Violation] = []
    parse_errors: list[str] = []
    entries = discover(root)
    for path, relpath, package in entries:
        try:
            module = SourceModule.parse(path, relpath, package)
        except (SyntaxError, UnicodeDecodeError) as exc:
            parse_errors.append(f"{relpath}: {exc}")
            continue
        kept, waived = analyze_module(module, rules)
        violations.extend(kept)
        allowlisted.extend(waived)

    return AnalysisReport(root=str(root), files_scanned=len(entries),
                          violations=violations, allowlisted=allowlisted,
                          parse_errors=parse_errors)
