"""Determinism rules (DET0xx): seed discipline, clocks, iteration order.

Every oracle in this repository (runtime-vs-simulator equality, the
parallel-vs-serial bench, the property suite's replayable case ids)
assumes that the same seed produces the same bits.  These rules flag the
source-level constructs that silently break that contract:

``DET001``  unseeded RNG construction — ``random.Random()`` or
            ``np.random.default_rng()`` with no arguments draws entropy
            from the OS.
``DET002``  module-level RNG convenience calls — ``random.random()``,
            ``np.random.rand()`` etc. mutate hidden global state shared
            across the whole process (and across threads).
``DET003``  wall-clock reads — ``time.time()`` / ``datetime.now()`` in
            result-bearing code make outputs depend on when they ran.
``DET004``  set iteration feeding ordering-sensitive sinks — ``set``
            order is salted per process; materializing or accumulating
            it unsorted bakes that salt into results.
``DET005``  float equality in invariant code — ``x == 0.3`` moves with
            rounding; invariant checks must use exact sentinels or
            explicit tolerances.
"""

from __future__ import annotations

import ast

from .model import Rule, SourceModule, Violation, dotted_name, import_aliases

__all__ = ["UnseededRngRule", "GlobalRngRule", "WallClockRule",
           "SetOrderRule", "FloatEqualityRule", "DETERMINISM_PACKAGES"]

#: Result-bearing packages held to seed-for-seed determinism.  ``perf``,
#: ``bench`` and ``serve`` are excluded on purpose: profiling and live
#: latency measurement are wall-clock by nature.
DETERMINISM_PACKAGES = frozenset({
    "core", "flow", "geometry", "workloads", "verify",
    "pubsub", "network", "dynamic", "metrics", "runtime", "shard",
})

#: Constructors that must receive an explicit seed (or spawned generator).
_RNG_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",   # Generator(BitGenerator()) seeds implicitly
}

#: Module-level convenience functions backed by hidden global RNG state.
_GLOBAL_RNG_CALLS = {
    f"random.{name}" for name in (
        "random", "randint", "randrange", "uniform", "gauss", "normalvariate",
        "choice", "choices", "sample", "shuffle", "seed", "betavariate",
        "expovariate", "getrandbits", "triangular", "vonmisesvariate",
    )
} | {
    f"numpy.random.{name}" for name in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "uniform", "normal", "standard_normal", "choice",
        "shuffle", "permutation", "seed", "exponential", "poisson",
        "binomial", "beta", "gamma", "integers",
    )
}

#: Clock reads that tie results to the moment of execution.  Monotonic
#: timers (``perf_counter`` etc.) are deliberately absent: they only ever
#: feed timing telemetry, never result payloads, in this codebase.
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


class UnseededRngRule(Rule):
    rule_id = "DET001"
    title = "unseeded-rng"
    rationale = ("RNG constructed without an explicit seed draws OS entropy; "
                 "every generator must derive from a caller-provided seed")
    packages = DETERMINISM_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        aliases = import_aliases(module.tree)
        found = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _RNG_CONSTRUCTORS and not node.args and not node.keywords:
                found.append(self.violation(
                    module, node,
                    f"{name}() constructed without a seed; pass an explicit "
                    f"seed (or a spawned child generator)"))
        return found


class GlobalRngRule(Rule):
    rule_id = "DET002"
    title = "global-rng"
    rationale = ("module-level random.* / np.random.* calls share hidden "
                 "process-global state; use a passed-in Generator instead")
    packages = DETERMINISM_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        aliases = import_aliases(module.tree)
        found = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _GLOBAL_RNG_CALLS:
                found.append(self.violation(
                    module, node,
                    f"{name}() uses the process-global RNG; thread a seeded "
                    f"np.random.Generator through instead"))
        return found


class WallClockRule(Rule):
    rule_id = "DET003"
    title = "wall-clock"
    rationale = ("wall-clock reads in result-bearing code make outputs "
                 "depend on execution time; clocks belong in telemetry "
                 "and provenance layers only")
    packages = DETERMINISM_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        aliases = import_aliases(module.tree)
        found = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _WALL_CLOCK_CALLS:
                found.append(self.violation(
                    module, node,
                    f"{name}() read in result-bearing code; results must "
                    f"not depend on when they were computed"))
        return found


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Is this expression statically known to produce a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return False


#: Calls that materialize their iterable in iteration order.
_ORDER_SINK_CALLS = {"list", "tuple", "enumerate"}

#: Calls that consume iteration order but produce order-free results.
_ORDER_FREE_CALLS = {"sorted", "len", "sum", "min", "max", "any", "all",
                     "set", "frozenset"}


class SetOrderRule(Rule):
    rule_id = "DET004"
    title = "set-iteration-order"
    rationale = ("set iteration order is hash-salted per process; feeding "
                 "it unsorted into ordering-sensitive sinks bakes the salt "
                 "into results — wrap in sorted() first")
    packages = DETERMINISM_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        found: list[Violation] = []
        for scope in self._scopes(module.tree):
            found.extend(self._check_scope(module, scope))
        return found

    @staticmethod
    def _scopes(tree: ast.Module) -> list[ast.AST]:
        scopes: list[ast.AST] = [tree]
        scopes.extend(node for node in ast.walk(tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        return scopes

    def _check_scope(self, module: SourceModule,
                     scope: ast.AST) -> list[Violation]:
        # Names bound to set-typed expressions anywhere in this scope
        # (ignoring nested function bodies, which form their own scope).
        set_names: set[str] = set()
        for node in self._walk_shallow(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) \
                    and node.value is not None \
                    and _is_set_expr(node.value, set_names):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)

        found = []
        for node in self._walk_shallow(scope):
            if isinstance(node, ast.For) \
                    and _is_set_expr(node.iter, set_names) \
                    and self._body_is_order_sensitive(node):
                found.append(self.violation(
                    module, node.iter,
                    "iterating a set in an order-sensitive loop; iterate "
                    "sorted(...) for a stable order"))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                fn = node.func.id
                if fn in _ORDER_SINK_CALLS and node.args \
                        and _is_set_expr(node.args[0], set_names):
                    found.append(self.violation(
                        module, node,
                        f"{fn}() materializes a set in hash order; use "
                        f"sorted(...) for a stable order"))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, set_names) \
                            and not self._inside_order_free_call(scope, node):
                        found.append(self.violation(
                            module, gen.iter,
                            "comprehension iterates a set in hash order; "
                            "iterate sorted(...) for a stable order"))
        return found

    @staticmethod
    def _walk_shallow(scope: ast.AST) -> list[ast.AST]:
        """Walk a scope without entering nested function scopes.

        Nested ``def``s are separate scopes analyzed on their own pass;
        descending into them here would double-count their findings.
        """
        body = scope.body if hasattr(scope, "body") else []
        out: list[ast.AST] = []
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    @staticmethod
    def _body_is_order_sensitive(loop: ast.For) -> bool:
        """Does the loop body accumulate into an ordered container?"""
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("append", "extend", "insert",
                                           "put_nowait", "write"):
                return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        return True
        return False

    @staticmethod
    def _inside_order_free_call(scope: ast.AST, comp: ast.AST) -> bool:
        """Is the comprehension the direct argument of sorted()/sum()/...?"""
        for node in ast.walk(scope):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in _ORDER_FREE_CALLS \
                    and any(arg is comp for arg in node.args):
                return True
        return False


class FloatEqualityRule(Rule):
    rule_id = "DET005"
    title = "float-equality"
    rationale = ("invariant checks comparing floats with == / != move with "
                 "rounding; use explicit tolerances (exact-zero and inf "
                 "sentinels are exempt)")
    # Invariant code only: the verifier and the core validator.
    packages = frozenset({"verify", "core"})

    #: Exactly representable sentinels routinely compared by identity.
    _EXEMPT = (0.0, 1.0, -1.0, float("inf"), float("-inf"))

    def check(self, module: SourceModule) -> list[Violation]:
        found = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in (node.left, *node.comparators):
                if isinstance(operand, ast.Constant) \
                        and isinstance(operand.value, float) \
                        and operand.value not in self._EXEMPT:
                    found.append(self.violation(
                        module, node,
                        f"float equality against {operand.value!r}; compare "
                        f"with an explicit tolerance instead"))
                    break
        return found
