"""Async-safety rules (ASY0xx) for the live service layer.

The :mod:`repro.serve` daemon multiplexes every connection, pump task,
and the background reoptimizer on one event loop.  That model is only
safe under two disciplines these rules enforce at the source level:
nothing blocks the loop, and shared state is never left half-updated
across a suspension point.

``ASY001``  un-awaited coroutine call — a bare ``foo()`` statement where
            ``foo`` is a coroutine function creates a coroutine object
            that never runs.
``ASY002``  untracked task — ``asyncio.create_task(...)`` whose result
            is discarded can be garbage-collected mid-flight; retain a
            reference.
``ASY003``  blocking call in ``async def`` — ``time.sleep``, file I/O,
            subprocess or LP solves freeze every connection; offload
            with ``asyncio.to_thread``.
``ASY004``  shared-state write straddling ``await`` — an attribute read
            before a suspension point and written after it is a lost-
            update race with every other task; hold a lock or restructure
            to a single-assignment snapshot swap.
"""

from __future__ import annotations

import ast

from .model import Rule, SourceModule, Violation, dotted_name, import_aliases

__all__ = ["UnawaitedCoroutineRule", "UntrackedTaskRule",
           "BlockingCallRule", "AwaitStraddleRule", "ASYNC_PACKAGES"]

#: Packages holding asyncio code these rules apply to.
ASYNC_PACKAGES = frozenset({"serve"})

#: Well-known coroutine functions outside the scanned module.
_KNOWN_COROUTINES = {
    "asyncio.sleep", "asyncio.wait", "asyncio.wait_for", "asyncio.gather",
    "asyncio.to_thread", "asyncio.open_connection", "asyncio.start_server",
}

#: Task-spawning calls whose return value must be retained (matched on
#: the final attribute so ``loop.create_task`` is covered too).
_TASK_SPAWNERS = {"create_task", "ensure_future"}

#: Calls that block the event loop.  LP solves are listed explicitly:
#: this codebase's re-optimizations run HiGHS for tens of milliseconds
#: to seconds, which must go through ``asyncio.to_thread``.
_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen",
    "socket.create_connection",
    "scipy.optimize.linprog",
}
#: Bare names (builtins / solver entry points) that block when called
#: directly inside ``async def``.
_BLOCKING_NAMES = {"open", "input", "linprog", "lp_solve", "solve_lp"}


def _module_async_defs(tree: ast.Module) -> set[str]:
    """Names of module-level ``async def`` functions."""
    return {node.name for node in tree.body
            if isinstance(node, ast.AsyncFunctionDef)}


def _class_async_methods(cls: ast.ClassDef) -> set[str]:
    """Names of ``async def`` methods defined directly on ``cls``."""
    return {node.name for node in cls.body
            if isinstance(node, ast.AsyncFunctionDef)}


def _call_tail(node: ast.Call) -> str | None:
    """The final name segment of the callee (``self.foo()`` -> ``foo``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class UnawaitedCoroutineRule(Rule):
    rule_id = "ASY001"
    title = "unawaited-coroutine"
    rationale = ("a coroutine called without await never executes; the "
                 "statement silently does nothing")
    packages = ASYNC_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        aliases = import_aliases(module.tree)
        module_async = _module_async_defs(module.tree)
        found = []
        # Only bare expression statements are flagged: a call whose value
        # is awaited, assigned, passed on, or returned is someone else's
        # responsibility, and gather(*coros) arguments are legitimate.
        # Receiver-aware matching: ``foo()`` matches module-level async
        # defs, ``self.foo()`` matches async methods of the *enclosing*
        # class — ``other.foo()`` is never assumed to be a coroutine just
        # because some class here has an async ``foo``.
        for stmt in ast.walk(module.tree):
            if not (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)):
                continue
            call = stmt.value
            name = dotted_name(call.func, aliases)
            if name in _KNOWN_COROUTINES or (
                    isinstance(call.func, ast.Name)
                    and call.func.id in module_async):
                found.append(self.violation(
                    module, call,
                    f"coroutine {_call_tail(call) or name}() called "
                    f"without await; the call never runs"))
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            class_async = _class_async_methods(cls)
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                for stmt in ast.walk(method):
                    if not (isinstance(stmt, ast.Expr)
                            and isinstance(stmt.value, ast.Call)):
                        continue
                    call = stmt.value
                    if isinstance(call.func, ast.Attribute) \
                            and isinstance(call.func.value, ast.Name) \
                            and call.func.value.id == "self" \
                            and call.func.attr in class_async:
                        found.append(self.violation(
                            module, call,
                            f"coroutine self.{call.func.attr}() called "
                            f"without await; the call never runs"))
        return found


class UntrackedTaskRule(Rule):
    rule_id = "ASY002"
    title = "untracked-task"
    rationale = ("a task without a retained reference may be garbage-"
                 "collected before it completes; keep the handle")
    packages = ASYNC_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        found = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call) \
                    and _call_tail(node.value) in _TASK_SPAWNERS:
                found.append(self.violation(
                    module, node.value,
                    f"{_call_tail(node.value)}() result discarded; retain "
                    f"the task reference (store it or await it)"))
        return found


class BlockingCallRule(Rule):
    rule_id = "ASY003"
    title = "blocking-in-async"
    rationale = ("synchronous sleeps, file I/O, subprocesses and LP solves "
                 "inside async def stall every task on the loop; use "
                 "asyncio primitives or asyncio.to_thread")
    packages = ASYNC_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        aliases = import_aliases(module.tree)
        found = []
        for fn in ast.walk(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in _walk_async_body(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func, aliases)
                bare = (isinstance(node.func, ast.Name)
                        and node.func.id in _BLOCKING_NAMES)
                if name in _BLOCKING_CALLS or bare:
                    label = name or node.func.id  # type: ignore[union-attr]
                    found.append(self.violation(
                        module, node,
                        f"blocking call {label}() inside async def "
                        f"{fn.name}; offload with asyncio.to_thread"))
        return found


def _walk_async_body(fn: ast.AsyncFunctionDef) -> list[ast.AST]:
    """Walk an async function without entering nested sync functions.

    Nested ``def``/``lambda`` bodies execute wherever they are later
    called (often a worker thread), so blocking calls there are not the
    event loop's problem.
    """
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(reversed(fn.body))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        out.append(node)
        stack.extend(reversed(list(ast.iter_child_nodes(node))))
    return out


class AwaitStraddleRule(Rule):
    rule_id = "ASY004"
    title = "await-straddling-write"
    rationale = ("reading shared state, awaiting, then writing it back is "
                 "a lost-update race with every other task; guard with a "
                 "lock or snapshot-swap in one step")
    packages = ASYNC_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        found = []
        for fn in ast.walk(module.tree):
            if isinstance(fn, ast.AsyncFunctionDef):
                found.extend(self._check_function(module, fn))
        return found

    def _check_function(self, module: SourceModule,
                        fn: ast.AsyncFunctionDef) -> list[Violation]:
        # Linearize the body into (kind, attr-path, node, locked) events in
        # source order: "await" markers, and reads/writes of self.* paths.
        events: list[tuple[str, str | None, ast.AST, bool]] = []
        self._collect(fn.body, events, locked=False)

        # The hazard is check-then-set: a READ of shared state, an await
        # (anyone may run), then a write that clobbers whatever happened
        # meanwhile.  Atomic read-modify-writes (``self.x += 1``) emit
        # adjacent read+write events, so no await fits between and they
        # never fire; writes after writes are last-write-wins, not races.
        found = []
        last_read: dict[str, int] = {}
        await_indices: list[int] = []
        for idx, (kind, attr, node, locked) in enumerate(events):
            if kind == "await":
                await_indices.append(idx)
                continue
            assert attr is not None
            if kind == "write" and not locked:
                read_at = last_read.get(attr)
                if read_at is not None and any(read_at < a < idx
                                               for a in await_indices):
                    found.append(self.violation(
                        module, node,
                        f"{attr} written after an await that follows an "
                        f"earlier read in async def {fn.name}; the "
                        f"read-await-write window loses concurrent updates"))
            if kind == "read":
                last_read[attr] = idx
        return found

    def _collect(self, body: list[ast.stmt],
                 events: list[tuple[str, str | None, ast.AST, bool]],
                 locked: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate execution context
            if isinstance(stmt, ast.AsyncWith):
                # async with acquires a lock (or another async context
                # manager) — treat everything under it as guarded.
                for item in stmt.items:
                    self._collect_expr(item.context_expr, events, locked)
                self._collect(stmt.body, events, locked=True)
                continue
            if isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                                 ast.With, ast.Try)):
                for node in ast.iter_child_nodes(stmt):
                    if isinstance(node, ast.expr):
                        self._collect_expr(node, events, locked)
                for attr in ("body", "orelse", "finalbody"):
                    self._collect(getattr(stmt, attr, []) or [], events,
                                  locked)
                for handler in getattr(stmt, "handlers", []) or []:
                    self._collect(handler.body, events, locked)
                continue
            self._collect_expr(stmt, events, locked)

    def _collect_expr(self, node: ast.AST,
                      events: list[tuple[str, str | None, ast.AST, bool]],
                      locked: bool) -> None:
        # Assignments evaluate their value (which may await) before the
        # store, so visit in that order; elsewhere the walk order is an
        # approximation of evaluation order, which is close enough for a
        # statement-granular heuristic.
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)) \
                and node.value is not None:
            self._collect_expr(node.value, events, locked)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._collect_expr(target, events, locked)
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Await):
                events.append(("await", None, sub, locked))
            elif isinstance(sub, ast.Attribute):
                path = _self_path(sub)
                if path is None:
                    continue
                kind = ("write" if isinstance(sub.ctx, (ast.Store, ast.Del))
                        else "read")
                events.append((kind, path, sub, locked))


def _self_path(node: ast.Attribute) -> str | None:
    """Dotted path of a ``self.x[.y]`` attribute chain, else ``None``."""
    parts = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name) and value.id == "self":
        parts.append("self")
        return ".".join(reversed(parts))
    return None
