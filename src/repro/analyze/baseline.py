"""The ratchet: a committed baseline that violation counts may only cut.

``analyze_baseline.json`` freezes the per-``file::rule`` violation
counts at the moment it was written.  The CI gate compares a fresh run
against it:

* any bucket **above** its baseline count (or any new bucket) is a
  regression — exit 2;
* buckets **below** their baseline count are improvements — the run
  stays green, and the report nudges toward re-writing the baseline so
  the gains lock in (the ratchet clicks one tooth tighter);
* a baseline bucket whose file has since disappeared counts as an
  improvement, not an error.

This mirrors the perf-regression gate's philosophy (compare against a
committed artifact, exit non-zero on drift) applied to static hazards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..bench.harness import run_metadata
from .engine import ANALYZE_SCHEMA_VERSION, AnalysisReport

__all__ = ["RatchetResult", "load_baseline", "write_baseline",
           "check_ratchet"]


@dataclass
class RatchetResult:
    """Outcome of comparing a run against the committed baseline."""

    regressions: list[str] = field(default_factory=list)   #: human lines
    improvements: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = []
        if self.regressions:
            lines.append("ratchet REGRESSIONS (new or increased violations):")
            lines.extend(f"  {line}" for line in self.regressions)
        if self.improvements:
            lines.append("ratchet improvements (re-write the baseline to "
                         "lock these in):")
            lines.extend(f"  {line}" for line in self.improvements)
        if not lines:
            lines.append("ratchet clean: violation counts match the baseline")
        return "\n".join(lines)


def load_baseline(path: Path | str) -> dict[str, int]:
    """The committed ``file::rule`` counts; validates the schema version."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    version = payload.get("schema_version")
    if version != ANALYZE_SCHEMA_VERSION:
        raise ValueError(
            f"baseline {path} has schema_version {version!r}; this analyzer "
            f"writes {ANALYZE_SCHEMA_VERSION} — regenerate with "
            f"--write-baseline")
    counts = payload.get("counts")
    if not isinstance(counts, dict):
        raise ValueError(f"baseline {path} has no counts mapping")
    return {str(key): int(value) for key, value in counts.items()}


def write_baseline(path: Path | str, report: AnalysisReport) -> dict[str, object]:
    """Freeze the report's counts as the new committed baseline."""
    payload = {
        "schema_version": ANALYZE_SCHEMA_VERSION,
        "tool": "repro.analyze",
        "counts": report.counts(),
        "total": len(report.violations),
        "metadata": run_metadata(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return payload


def check_ratchet(report: AnalysisReport,
                  baseline: dict[str, int]) -> RatchetResult:
    """Compare a fresh run's counts against the committed baseline."""
    current = report.counts()
    result = RatchetResult()
    for key in sorted(set(current) | set(baseline)):
        now = current.get(key, 0)
        then = baseline.get(key, 0)
        if now > then:
            result.regressions.append(f"{key}: {then} -> {now}")
        elif now < then:
            result.improvements.append(f"{key}: {then} -> {now}")
    return result
