"""Contract rules (CON0xx): typed public APIs, honest error handling.

``CON001``  missing annotations — public functions in the contract
            packages (``core``, ``verify``, ``geometry``, ``flow``) must
            annotate every parameter and the return type, so mypy can
            hold callers to the same contract the docstrings promise.
``CON002``  bare ``except:`` — catches ``SystemExit`` and
            ``KeyboardInterrupt`` and hides the exception type from the
            reader; name what you expect.
``CON003``  silent broad handler — ``except Exception: pass`` swallows
            every failure with no trace; either narrow the type, log, or
            re-raise.
"""

from __future__ import annotations

import ast

from .model import Rule, SourceModule, Violation

__all__ = ["MissingAnnotationsRule", "BareExceptRule", "SilentHandlerRule",
           "CONTRACT_PACKAGES"]

#: Packages whose public API must be fully annotated (the mypy-strict
#: targets plus the verifier, whose reports gate live re-optimization).
CONTRACT_PACKAGES = frozenset({"core", "verify", "geometry", "flow"})


def _public_functions(tree: ast.Module) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Public module-level functions and public methods of public classes."""
    out: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                out.append(node)
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and not item.name.startswith("_"):
                    out.append(item)
    return out


class MissingAnnotationsRule(Rule):
    rule_id = "CON001"
    title = "missing-annotations"
    rationale = ("unannotated public functions leave the API contract "
                 "implicit and blind mypy to caller mistakes")
    packages = CONTRACT_PACKAGES

    def check(self, module: SourceModule) -> list[Violation]:
        found = []
        for fn in _public_functions(module.tree):
            missing = self._missing_parts(fn)
            if missing:
                found.append(self.violation(
                    module, fn,
                    f"public function {fn.name} missing annotations: "
                    f"{', '.join(missing)}"))
        return found

    @staticmethod
    def _missing_parts(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        missing = []
        args = fn.args
        params = list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs)
        for index, arg in enumerate(params):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if fn.returns is None:
            missing.append("return")
        return missing


class BareExceptRule(Rule):
    rule_id = "CON002"
    title = "bare-except"
    rationale = ("bare except catches SystemExit/KeyboardInterrupt and "
                 "hides the failure mode; name the exception type")
    packages = None  # everywhere

    def check(self, module: SourceModule) -> list[Violation]:
        return [self.violation(module, node,
                               "bare except:; name the exception type")
                for node in ast.walk(module.tree)
                if isinstance(node, ast.ExceptHandler) and node.type is None]


class SilentHandlerRule(Rule):
    rule_id = "CON003"
    title = "silent-handler"
    rationale = ("except Exception: pass swallows every failure without "
                 "a trace; narrow the type, log, or re-raise")
    packages = None  # everywhere

    _BROAD = ("Exception", "BaseException")

    def check(self, module: SourceModule) -> list[Violation]:
        found = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not (len(node.body) == 1 and isinstance(node.body[0], ast.Pass)):
                continue
            broad = node.type is None or (
                isinstance(node.type, ast.Name) and node.type.id in self._BROAD)
            if broad:
                label = (node.type.id if isinstance(node.type, ast.Name)
                         else "bare")
                found.append(self.violation(
                    module, node,
                    f"silent {label} except handler (body is just pass); "
                    f"narrow the type, log, or re-raise"))
        return found
