"""The dissemination tree ``T``: publisher root plus broker nodes.

Node 0 is always the publisher.  Every other node is a broker; brokers with
no children are *leaf brokers*, the only valid targets of a subscriber
assignment.  Edge latency is the Euclidean distance between the endpoint
positions in the network space.

The class precomputes the quantities every algorithm in the library needs:

* ``down_latency[v]`` — path latency from the publisher to node ``v``;
* ``subtree_leaves[v]`` — leaf brokers underneath ``v`` (including ``v``
  itself when it is a leaf);
* shortest achievable publisher-to-subscriber latencies ``Delta_j`` and
  per-node *best completion* latencies used by the multi-level algorithm.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .space import pairwise_distances

__all__ = ["BrokerTree"]

PUBLISHER = 0


class BrokerTree:
    """An immutable rooted tree over network points.

    Parameters
    ----------
    positions:
        ``(n_nodes, d)`` array of network coordinates; row 0 is the
        publisher.
    parents:
        ``(n_nodes,)`` integer array; ``parents[0] == -1`` and
        ``parents[v]`` is the parent node of broker ``v``.
    """

    def __init__(self, positions: np.ndarray, parents: Sequence[int] | np.ndarray):
        pos = np.ascontiguousarray(positions, dtype=float)
        par = np.asarray(parents, dtype=int)
        if pos.ndim != 2:
            raise ValueError("positions must have shape (n_nodes, d)")
        if par.shape != (pos.shape[0],):
            raise ValueError("parents must have one entry per node")
        if pos.shape[0] < 2:
            raise ValueError("a tree needs the publisher and at least one broker")
        if par[PUBLISHER] != -1:
            raise ValueError("node 0 must be the publisher root (parent -1)")
        if np.any(par[1:] < 0) or np.any(par[1:] >= pos.shape[0]):
            raise ValueError("broker parents must be valid node indices")

        self._positions = pos
        self._parents = par
        self._children: list[list[int]] = [[] for _ in range(pos.shape[0])]
        for v in range(1, pos.shape[0]):
            self._children[par[v]].append(v)

        self._down_latency = self._compute_down_latencies()
        self._leaves = np.array(
            [v for v in range(1, pos.shape[0]) if not self._children[v]], dtype=int)
        if len(self._leaves) == 0:
            raise ValueError("tree has no leaf brokers")
        self._leaf_row = {int(v): i for i, v in enumerate(self._leaves)}
        self._subtree_leaf_rows = self._compute_subtree_leaves()

        pos.setflags(write=False)
        par.setflags(write=False)
        self._down_latency.setflags(write=False)
        self._leaves.setflags(write=False)

    def _compute_down_latencies(self) -> np.ndarray:
        n = self.num_nodes
        order = self._topological_order()
        latency = np.zeros(n)
        for v in order[1:]:
            p = self._parents[v]
            latency[v] = latency[p] + float(
                np.linalg.norm(self._positions[v] - self._positions[p]))
        return latency

    def _topological_order(self) -> list[int]:
        """Nodes ordered root-first; also validates acyclicity/connectivity."""
        order = [PUBLISHER]
        seen = {PUBLISHER}
        stack = [PUBLISHER]
        while stack:
            v = stack.pop()
            for child in self._children[v]:
                if child in seen:
                    raise ValueError("parents array contains a cycle")
                seen.add(child)
                order.append(child)
                stack.append(child)
        if len(order) != self.num_nodes:
            raise ValueError("tree is not connected: unreachable nodes exist")
        return order

    def _compute_subtree_leaves(self) -> list[np.ndarray]:
        rows: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for row, leaf in enumerate(self._leaves):
            v = int(leaf)
            while v != -1:
                rows[v].append(row)
                v = int(self._parents[v])
        return [np.array(r, dtype=int) for r in rows]

    # -- basic accessors ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._positions.shape[0]

    @property
    def num_brokers(self) -> int:
        return self.num_nodes - 1

    @property
    def network_dim(self) -> int:
        return self._positions.shape[1]

    @property
    def positions(self) -> np.ndarray:
        return self._positions

    @property
    def publisher_position(self) -> np.ndarray:
        return self._positions[PUBLISHER]

    @property
    def parents(self) -> np.ndarray:
        return self._parents

    def children(self, node: int) -> list[int]:
        return list(self._children[node])

    @property
    def leaves(self) -> np.ndarray:
        """Leaf broker node ids, in a fixed canonical order."""
        return self._leaves

    @property
    def num_leaves(self) -> int:
        return len(self._leaves)

    def leaf_row(self, node: int) -> int:
        """Index of a leaf node in the canonical :attr:`leaves` order."""
        return self._leaf_row[int(node)]

    def is_leaf(self, node: int) -> bool:
        return node != PUBLISHER and not self._children[node]

    @property
    def down_latency(self) -> np.ndarray:
        """Path latency from the publisher to each node."""
        return self._down_latency

    def subtree_leaf_rows(self, node: int) -> np.ndarray:
        """Rows (into :attr:`leaves`) of the leaf brokers under ``node``."""
        return self._subtree_leaf_rows[node]

    def path_to_root(self, node: int) -> list[int]:
        """Nodes from ``node`` up to and including the publisher."""
        path = [node]
        while path[-1] != PUBLISHER:
            path.append(int(self._parents[path[-1]]))
        return path

    def depth(self, node: int) -> int:
        return len(self.path_to_root(node)) - 1

    @property
    def height(self) -> int:
        return max(self.depth(int(v)) for v in self._leaves)

    # -- latency computations ------------------------------------------------

    def leaf_positions(self) -> np.ndarray:
        return self._positions[self._leaves]

    def subscriber_latencies(self, subscriber_points: np.ndarray) -> np.ndarray:
        """Matrix ``L[i, j]``: full path latency publisher -> leaf ``i`` -> subscriber ``j``.

        Row order follows :attr:`leaves`.
        """
        last_hop = pairwise_distances(self.leaf_positions(), subscriber_points)
        return self._down_latency[self._leaves][:, None] + last_hop

    def shortest_latencies(self, subscriber_points: np.ndarray) -> np.ndarray:
        """``Delta_j``: the best achievable latency to each subscriber through T."""
        return self.subscriber_latencies(subscriber_points).min(axis=0)

    def best_completion(self, node: int, subscriber_points: np.ndarray) -> np.ndarray:
        """Best achievable remaining latency from ``node`` to each subscriber.

        ``min over leaves L under node of [lat(node -> L) + d(L, S_j)]``;
        the multi-level algorithm uses ``down_latency[node] + best_completion``
        as the optimistic full-path latency when routing through ``node``.
        """
        rows = self._subtree_leaf_rows[node]
        if len(rows) == 0:
            raise ValueError(f"node {node} has no leaves beneath it")
        leaf_nodes = self._leaves[rows]
        descent = self._down_latency[leaf_nodes] - self._down_latency[node]
        last_hop = pairwise_distances(self._positions[leaf_nodes], subscriber_points)
        return (descent[:, None] + last_hop).min(axis=0)

    def __repr__(self) -> str:
        return (f"BrokerTree(nodes={self.num_nodes}, leaves={self.num_leaves}, "
                f"height={self.height}, dim={self.network_dim})")
