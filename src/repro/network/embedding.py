"""Synthetic internet latency embeddings.

The paper maps hosts into ``N = R^5`` with a measurement-based embedding
(Vivaldi-style); Euclidean distance approximates latency.  We do not have
measurement data, so we *generate* embedded points directly with the same
structure the embedding would produce: geographic regions form tight
clusters that are far from each other, so intra-region latencies are small
and inter-region latencies are large.

Workload set #1 places subscribers across Asia, North America, and Europe
with ratio 4 : 1 : 4 and draws broker locations from (roughly) the same
distribution; :class:`RegionModel` captures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Region", "RegionModel", "default_world_regions"]


@dataclass(frozen=True)
class Region:
    """A geographic region embedded as a Gaussian cluster in ``N``."""

    name: str
    center: tuple[float, ...]
    spread: float

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        center = np.asarray(self.center, dtype=float)
        return rng.normal(loc=center, scale=self.spread, size=(count, center.shape[0]))


@dataclass(frozen=True)
class RegionModel:
    """A weighted mixture of regions used to draw host positions."""

    regions: tuple[Region, ...]
    weights: tuple[float, ...]
    _cumulative: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.regions) != len(self.weights) or not self.regions:
            raise ValueError("regions and weights must be non-empty and aligned")
        w = np.asarray(self.weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
        object.__setattr__(self, "_cumulative", np.cumsum(w / w.sum()))

    @property
    def dim(self) -> int:
        return len(self.regions[0].center)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` host positions; rows are shuffled across regions."""
        picks = np.searchsorted(self._cumulative, rng.random(count), side="right")
        points = np.empty((count, self.dim))
        for index, region in enumerate(self.regions):
            mask = picks == index
            if mask.any():
                points[mask] = region.sample(rng, int(mask.sum()))
        return points

    def sample_region(self, rng: np.random.Generator, region_name: str,
                      count: int) -> np.ndarray:
        for region in self.regions:
            if region.name == region_name:
                return region.sample(rng, count)
        raise KeyError(f"unknown region {region_name!r}")

    def region_index(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample region indices only (used to correlate interests with location)."""
        return np.searchsorted(self._cumulative, rng.random(count), side="right")


def default_world_regions(dim: int = 5, *, scale: float = 100.0,
                          spread: float = 8.0) -> RegionModel:
    """Asia / North America / Europe at ratio 4 : 1 : 4, as in workload set #1.

    Region centers sit on coordinate axes ``scale`` apart, so inter-region
    latency is ~``scale * sqrt(2)`` while intra-region latency is ~``spread``
    — the structure real embeddings exhibit.
    """
    def axis_center(axis: int) -> tuple[float, ...]:
        center = [0.0] * dim
        center[axis] = scale
        return tuple(center)

    regions = (
        Region("asia", axis_center(0), spread),
        Region("north-america", axis_center(1), spread),
        Region("europe", axis_center(2), spread),
    )
    return RegionModel(regions, (4.0, 1.0, 4.0))
