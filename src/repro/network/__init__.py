"""Network substrate: latency space, dissemination trees, embeddings."""

from .builders import build_hierarchical_tree, build_one_level_tree
from .embedding import Region, RegionModel, default_world_regions
from .space import distance, distances_from_point, pairwise_distances
from .tree import PUBLISHER, BrokerTree

__all__ = [
    "BrokerTree",
    "PUBLISHER",
    "build_one_level_tree",
    "build_hierarchical_tree",
    "Region",
    "RegionModel",
    "default_world_regions",
    "distance",
    "distances_from_point",
    "pairwise_distances",
]
