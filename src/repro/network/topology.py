"""Joint optimization of the dissemination topology (paper future work).

The paper assumes the broker tree ``T`` is given and names "drop[ping]
the assumption that a broker tree is given in advance, and jointly
optimiz[ing] subscriber assignment, broker placement, as well as the
dissemination network topology" as future work (Section VIII).  This
module provides a pragmatic version of that: local search over tree
topologies, scoring each candidate by actually solving the subscriber
assignment on it with a fast algorithm (Gr\\* by default).

Moves considered from the current tree:

* **reattach** — detach a broker (with its subtree) from its parent and
  attach it under another node, subject to the out-degree bound;
* **promote** — move a leaf one level up (a special reattach).

The search is plain first-improvement hill climbing with a move budget;
it is deliberately simple — the point is the *joint* evaluation loop
(topology move -> re-solve assignment -> compare total cost), which is
exactly what the future-work sentence calls for.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..core.problem import SAParameters, SAProblem, SASolution
from .tree import BrokerTree

__all__ = ["TopologySearchResult", "optimize_topology", "reattach"]


def reattach(tree: BrokerTree, node: int, new_parent: int) -> BrokerTree | None:
    """A copy of the tree with ``node``'s subtree attached under ``new_parent``.

    Returns ``None`` for illegal moves: moving the publisher, attaching a
    node under itself or one of its descendants, or a no-op.
    """
    if node == 0 or new_parent == node:
        return None
    if int(tree.parents[node]) == new_parent:
        return None
    # new_parent must not live inside node's subtree.
    probe = new_parent
    while probe != -1:
        if probe == node:
            return None
        probe = int(tree.parents[probe])
    parents = tree.parents.copy()
    parents[node] = new_parent
    return BrokerTree(tree.positions, parents)


@dataclass
class TopologySearchResult:
    """Outcome of the joint topology/assignment search."""

    tree: BrokerTree
    solution: SASolution
    objective: float
    initial_objective: float
    moves_tried: int
    moves_accepted: int
    runtime_seconds: float
    history: list[float]

    @property
    def improvement(self) -> float:
        """Relative objective reduction versus the initial tree."""
        if self.initial_objective == 0:
            return 0.0
        return 1.0 - self.objective / self.initial_objective


def _default_objective(solution: SASolution) -> float:
    """Total bandwidth, with an infeasibility penalty.

    Constraint violations dominate any bandwidth difference, so the
    search never trades feasibility for bandwidth.
    """
    from ..metrics.bandwidth import total_bandwidth
    report = solution.validate()
    penalty = 0.0 if report.feasible else 1e18 * (1 + report.lbf)
    return total_bandwidth(solution.filters) + penalty


def optimize_topology(initial_tree: BrokerTree,
                      subscriber_points: np.ndarray,
                      subscriptions,
                      params: SAParameters,
                      solver: Callable[[SAProblem], SASolution],
                      *,
                      max_out_degree: int = 8,
                      move_budget: int = 40,
                      seed: int = 0,
                      objective: Callable[[SASolution], float] | None = None,
                      ) -> TopologySearchResult:
    """Hill-climb tree topologies, re-solving the assignment per candidate.

    Parameters
    ----------
    solver:
        Builds a solution for a candidate problem; a fast algorithm
        (e.g. ``offline_greedy``) keeps the search affordable, with a
        final SLP pass on the winning topology left to the caller.
    move_budget:
        Number of candidate moves to evaluate (each costs one solve).
    """
    started = time.perf_counter()
    rng = np.random.default_rng(seed)
    score = objective or _default_objective

    def solve(tree: BrokerTree) -> tuple[SASolution, float]:
        problem = SAProblem(tree, subscriber_points, subscriptions, params)
        solution = solver(problem)
        return solution, score(solution)

    current_tree = initial_tree
    current_solution, current_objective = solve(current_tree)
    initial_objective = current_objective
    history = [current_objective]

    tried = 0
    accepted = 0
    while tried < move_budget:
        tried += 1
        num_nodes = current_tree.num_nodes
        node = int(rng.integers(1, num_nodes))
        new_parent = int(rng.integers(0, num_nodes))
        if len(current_tree.children(new_parent)) >= max_out_degree:
            continue
        candidate_tree = reattach(current_tree, node, new_parent)
        if candidate_tree is None:
            continue
        try:
            candidate_solution, candidate_objective = solve(candidate_tree)
        except ValueError:
            continue  # degenerate candidate (e.g. no leaves)
        if candidate_objective < current_objective:
            current_tree = candidate_tree
            current_solution = candidate_solution
            current_objective = candidate_objective
            accepted += 1
        history.append(current_objective)

    return TopologySearchResult(
        tree=current_tree,
        solution=current_solution,
        objective=current_objective,
        initial_objective=initial_objective,
        moves_tried=tried,
        moves_accepted=accepted,
        runtime_seconds=time.perf_counter() - started,
        history=history,
    )
