"""Constructors for dissemination trees.

The paper evaluates two shapes:

* a **one-level** network — every broker attached directly to the
  publisher (Section VI, "Solution Quality for a One-Level Broker
  Network");
* a **multi-level** network — brokers organized in a tree that follows the
  topology of the underlying network, with a bounded out-degree
  (out-degree <= 15 for 200 brokers in the paper).

The hierarchical builder clusters broker positions recursively (k-means in
the network space), promoting the broker nearest each cluster's centroid
to be the cluster's internal node.  This mirrors the paper's assumption
that "broker trees often follow the topology of the underlying network".
"""

from __future__ import annotations

import numpy as np

from ..geometry.clustering import kmeans
from .tree import BrokerTree

__all__ = ["build_one_level_tree", "build_hierarchical_tree"]


def build_one_level_tree(publisher_position: np.ndarray,
                         broker_positions: np.ndarray) -> BrokerTree:
    """A star: every broker is a leaf child of the publisher."""
    pub = np.asarray(publisher_position, dtype=float)[None, :]
    brokers = np.asarray(broker_positions, dtype=float)
    if brokers.ndim != 2 or brokers.shape[0] == 0:
        raise ValueError("broker_positions must be a non-empty (n, d) array")
    positions = np.vstack([pub, brokers])
    parents = np.zeros(positions.shape[0], dtype=int)
    parents[0] = -1
    return BrokerTree(positions, parents)


def build_hierarchical_tree(publisher_position: np.ndarray,
                            broker_positions: np.ndarray,
                            max_out_degree: int,
                            rng: np.random.Generator) -> BrokerTree:
    """A topology-following multi-level tree with bounded out-degree.

    Recursively k-means the broker positions into at most
    ``max_out_degree`` clusters; the broker closest to each cluster's
    centroid becomes an internal broker (child of the current root), and
    the rest of the cluster is attached underneath it.  Clusters that fit
    within the out-degree bound attach all their brokers as leaves.
    """
    if max_out_degree < 2:
        raise ValueError("max_out_degree must be at least 2")
    pub = np.asarray(publisher_position, dtype=float)[None, :]
    brokers = np.asarray(broker_positions, dtype=float)
    if brokers.ndim != 2 or brokers.shape[0] == 0:
        raise ValueError("broker_positions must be a non-empty (n, d) array")

    positions = np.vstack([pub, brokers])
    parents = np.full(positions.shape[0], -1, dtype=int)

    def attach(parent_node: int, broker_nodes: np.ndarray) -> None:
        """Attach the given broker node ids (tree indices) under parent_node."""
        if len(broker_nodes) == 0:
            return
        if len(broker_nodes) <= max_out_degree:
            parents[broker_nodes] = parent_node
            return
        pts = positions[broker_nodes]
        labels, centers = kmeans(pts, max_out_degree, rng)
        for cluster in np.unique(labels):
            members = broker_nodes[labels == cluster]
            # Promote the member closest to the centroid as subtree root.
            deltas = positions[members] - centers[cluster]
            head = members[int(np.linalg.norm(deltas, axis=1).argmin())]
            parents[head] = parent_node
            rest = members[members != head]
            attach(int(head), rest)

    attach(0, np.arange(1, positions.shape[0]))
    return BrokerTree(positions, parents)
