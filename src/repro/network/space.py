"""The network space ``N``: a Euclidean latency embedding.

Following the paper (Section II), network locations are points in a
multi-dimensional Euclidean space produced by internet embedding techniques
(Vivaldi and friends); the Euclidean distance between two points
approximates the network latency between the corresponding hosts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["distance", "pairwise_distances", "distances_from_point"]


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Latency between two network points (Euclidean distance)."""
    return float(np.linalg.norm(np.asarray(a, dtype=float) - np.asarray(b, dtype=float)))


def distances_from_point(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Latencies from one point to each row of ``points`` (shape ``(n,)``)."""
    deltas = np.asarray(points, dtype=float) - np.asarray(point, dtype=float)
    return np.linalg.norm(deltas, axis=1)


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Latency matrix ``M[i, j] = d(a_i, b_j)`` of shape ``(len(a), len(b))``.

    Uses the expanded-square identity to avoid materializing the full
    ``(n, m, d)`` difference tensor.
    """
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    a_sq = np.sum(a_arr ** 2, axis=1)[:, None]
    b_sq = np.sum(b_arr ** 2, axis=1)[None, :]
    cross = a_arr @ b_arr.T
    squared = np.maximum(a_sq + b_sq - 2.0 * cross, 0.0)
    return np.sqrt(squared)
