"""Cover-filtered matchers: the shard data plane's matching indexes.

Three compositions of the :class:`~repro.pubsub.matching.Matcher`
protocol, all *exact* (the cover filter is a proven superset of every
guarded subscription, so pre-filtering events against it never changes
an answer — it only skips per-subscription work for events no member
can match):

* :class:`CoverMatcher` — an inner matcher over a subscription subset,
  guarded by the subset's aggregate cover.  Rows are local to the
  subset; shard engine workers use this directly.
* :class:`SubgroupMatcher` — a cover matcher whose rows are scattered
  back to full-population indices (zero outside the subgroup).
* :class:`ShardedMatcher` — the full population decomposed along a
  :class:`~repro.shard.plan.ShardPlan`: one cover-guarded index per
  shard, answers assembled from disjoint row blocks.  This is what the
  live broker plugs in for ``--shards N`` serving.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet
from ..pubsub.filters import Filter
from ..pubsub.matching import Matcher, best_matcher
from .plan import ShardPlan, plan_shards

__all__ = ["CoverMatcher", "SubgroupMatcher", "ShardedMatcher"]


class CoverMatcher:
    """An exact matcher over a subscription subset behind a cover filter."""

    def __init__(self, inner: Matcher, cover: Filter, num_rows: int):
        self._inner = inner
        self._cover = cover
        self._num_rows = int(num_rows)

    def match_point(self, point: np.ndarray) -> np.ndarray:
        if not self._cover.contains_point(point):
            return np.empty(0, dtype=int)
        return np.asarray(self._inner.match_point(point), dtype=int)

    def match_points(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        out = np.zeros((self._num_rows, pts.shape[0]), dtype=bool)
        inside = self._cover.contains_points(pts)
        if inside.any():
            out[:, inside] = self._inner.match_points(pts[inside])
        return out


class SubgroupMatcher:
    """A subgroup's cover matcher with rows in full-population indices."""

    def __init__(self, subscriptions: RectSet, members: np.ndarray, *,
                 cover: Filter | None = None, domain: Rect | None = None):
        self._num_subscriptions = len(subscriptions)
        self._members = np.asarray(members, dtype=int)
        subset = subscriptions.take(self._members)
        if cover is None:
            cover = (Filter.from_rects([subset.meb()]) if len(subset)
                     else Filter.empty(subscriptions.dim))
        self._local = CoverMatcher(best_matcher(subset, domain), cover,
                                   len(self._members))

    def match_point(self, point: np.ndarray) -> np.ndarray:
        local = self._local.match_point(point)
        return np.sort(self._members[local])

    def match_points(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        out = np.zeros((self._num_subscriptions, pts.shape[0]), dtype=bool)
        if len(self._members):
            out[self._members] = self._local.match_points(pts)
        return out


class ShardedMatcher:
    """The full population matched through per-shard cover-guarded indexes."""

    def __init__(self, subscriptions: RectSet,
                 plan: ShardPlan | None = None, *,
                 num_shards: int | None = None,
                 domain: Rect | None = None):
        if plan is None:
            if num_shards is None:
                raise ValueError("pass a ShardPlan or num_shards")
            plan = plan_shards(subscriptions, num_shards)
        self.plan = plan
        self._num_subscriptions = len(subscriptions)
        self._parts: list[tuple[np.ndarray, CoverMatcher]] = []
        for members, cover in zip(plan.members, plan.covers):
            if len(members) == 0:
                continue
            inner = best_matcher(subscriptions.take(members), domain)
            self._parts.append((members,
                                CoverMatcher(inner, cover, len(members))))

    def match_point(self, point: np.ndarray) -> np.ndarray:
        hits = [members[part.match_point(point)]
                for members, part in self._parts]
        if not hits:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(hits))

    def match_points(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        out = np.zeros((self._num_subscriptions, pts.shape[0]), dtype=bool)
        for members, part in self._parts:
            out[members] = part.match_points(pts)
        return out
