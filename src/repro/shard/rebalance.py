"""Re-shard under churn with minimal migration, via max-flow.

The rebalance contract: given the current plan and a changed population
signature (subscribers arrived/left, or a re-optimization moved them to
different leaves), produce a new balanced plan that **moves as few
subscribers as possible**.  The mechanism is the same two-phase trick
the paper's assignment step uses with its escalating load bound — Dinic
keeps the residual network between calls, so flow routed in an earlier
phase is never torn up:

1. *Stay-home phase*: the flow network has one edge per subgroup to its
   **home shard** (the shard owning the majority of the subgroup's
   members under the old plan) and per-shard sink capacities of
   ``ceil(total / num_shards)``.  Max-flow routes every subgroup that
   still fits where it already lives.
2. *Overflow phase*: cross edges from every subgroup to every other
   shard are added and the flow is resumed — only the overflow that
   phase 1 could not place migrates.

Flow may split a subgroup fractionally; the integral assignment takes
each subgroup's argmax-flow shard (ties: home first, then lowest shard
id), so the capacity bound is respected up to one subgroup's weight —
the same slack the paper's rounding step accepts.  Deterministic
throughout: edge insertion order is canonical and ties break by index.
"""

from __future__ import annotations

import numpy as np

from ..flow.dinic import Dinic
from ..geometry import RectSet
from .plan import MAX_COVER_RECTS, ShardPlan, _build_cover, plan_shards

__all__ = ["rebalance_groups", "replan_shards"]


def rebalance_groups(weights: np.ndarray,
                     home: np.ndarray,
                     num_shards: int,
                     *,
                     capacity: int | None = None) -> np.ndarray:
    """Assign weighted groups to shards, keeping each at home when possible.

    Returns the shard index per group.  ``capacity`` defaults to the
    tightest uniform bound ``ceil(total_weight / num_shards)``.
    """
    weights = np.asarray(weights, dtype=np.int64)
    home = np.asarray(home, dtype=int)
    if weights.shape != home.shape:
        raise ValueError("weights and home must align")
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    num_groups = len(weights)
    if num_groups == 0:
        return np.empty(0, dtype=int)
    if num_shards == 1:
        return np.zeros(num_groups, dtype=int)
    if (home < 0).any() or (home >= num_shards).any():
        raise ValueError("home shard indices out of range")
    total = int(weights.sum())
    if capacity is None:
        capacity = -(-total // num_shards)

    source = 0
    group_node = 1
    shard_node = 1 + num_groups
    sink = 1 + num_groups + num_shards
    dinic = Dinic(sink + 1)
    for i in range(num_groups):
        dinic.add_edge(source, group_node + i, int(weights[i]))
    edge_ids = np.full((num_groups, num_shards), -1, dtype=int)
    for i in range(num_groups):
        edge_ids[i, home[i]] = dinic.add_edge(
            group_node + i, shard_node + int(home[i]), int(weights[i]))
    for s in range(num_shards):
        dinic.add_edge(shard_node + s, sink, int(capacity))

    dinic.max_flow(source, sink)          # phase 1: keep groups at home
    for i in range(num_groups):
        for s in range(num_shards):
            if s != home[i]:
                edge_ids[i, s] = dinic.add_edge(
                    group_node + i, shard_node + s, int(weights[i]))
    dinic.max_flow(source, sink)          # phase 2: only overflow migrates

    assigned = np.empty(num_groups, dtype=int)
    for i in range(num_groups):
        flows = np.array([dinic.edge_flow(int(edge_ids[i, s]))
                          for s in range(num_shards)], dtype=np.int64)
        best = int(flows.max())
        # Ties: prefer home, then the lowest shard id — deterministic.
        if flows[home[i]] == best:
            assigned[i] = home[i]
        else:
            assigned[i] = int(np.argmax(flows))
    return assigned


def replan_shards(subscriptions: RectSet,
                  plan: ShardPlan,
                  *,
                  assignment: np.ndarray | None = None,
                  feasible: np.ndarray | None = None,
                  num_shards: int | None = None,
                  max_group_size: int | None = None,
                  max_cover_rects: int = MAX_COVER_RECTS,
                  ) -> tuple[ShardPlan, int]:
    """Re-shard after churn, minimizing subscriber migration.

    Regroups the population under the new dissemination signature (see
    :func:`~repro.shard.plan.plan_shards`), anchors each new subgroup to
    the shard owning the majority of its members under the old ``plan``,
    and lets :func:`rebalance_groups` move only the overflow.  Returns
    the new plan and the number of subscribers whose shard changed.
    """
    if num_shards is None:
        num_shards = plan.num_shards
    fresh = plan_shards(subscriptions, num_shards, assignment=assignment,
                        feasible=feasible, max_group_size=max_group_size,
                        max_cover_rects=max_cover_rects)
    old_owner = plan.shard_of()
    effective = fresh.num_shards

    homes = np.zeros(len(fresh.groups), dtype=int)
    for i, group in enumerate(fresh.groups):
        owners = old_owner[group]
        owners = owners[owners >= 0]
        owners = owners[owners < effective]
        if len(owners) == 0:
            homes[i] = 0
            continue
        counts = np.bincount(owners, minlength=effective)
        homes[i] = int(np.argmax(counts))  # argmax ties to the lowest id

    weights = np.array([len(g) for g in fresh.groups], dtype=np.int64)
    group_shard = rebalance_groups(weights, homes, effective)

    members = []
    covers = []
    for shard in range(effective):
        shard_groups = [fresh.groups[i]
                        for i in np.flatnonzero(group_shard == shard)]
        owned = (np.sort(np.concatenate(shard_groups))
                 if shard_groups else np.empty(0, dtype=int))
        members.append(owned)
        covers.append(_build_cover(subscriptions, shard_groups,
                                   max_cover_rects))
    new_plan = ShardPlan(num_subscribers=fresh.num_subscribers,
                         num_shards=effective, members=tuple(members),
                         groups=fresh.groups, group_shard=group_shard,
                         covers=tuple(covers))
    new_owner = new_plan.shard_of()
    moved = int(np.sum((old_owner >= 0) & (new_owner >= 0)
                       & (old_owner != new_owner)))
    return new_plan, moved
