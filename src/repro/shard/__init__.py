"""Sharded dissemination: subscription subgrouping across worker processes.

The scaling step past one core (ROADMAP: "Sharded dissemination with
subscription subgrouping").  The population is partitioned into
signature subgroups with one aggregate cover filter per shard
(:mod:`~repro.shard.plan`), matched through cover-guarded indexes
(:mod:`~repro.shard.matcher`), run as full-control-plane engine
replicas restricted to their subgroup and merged deterministically
(:mod:`~repro.shard.runner`), and re-sharded under churn with minimal
migration via max-flow (:mod:`~repro.shard.rebalance`).  Multi-process
runs are sha256-bit-identical to single-process runs — enforced by
``shard_oracle`` under ``repro verify`` and the property suite.
"""

from .matcher import CoverMatcher, ShardedMatcher, SubgroupMatcher
from .plan import MAX_COVER_RECTS, ShardPlan, plan_shards
from .rebalance import rebalance_groups, replan_shards
from .runner import ShardRun, run_dissemination, simulate_sharded

__all__ = [
    "CoverMatcher",
    "ShardedMatcher",
    "SubgroupMatcher",
    "MAX_COVER_RECTS",
    "ShardPlan",
    "plan_shards",
    "rebalance_groups",
    "replan_shards",
    "ShardRun",
    "run_dissemination",
    "simulate_sharded",
]
