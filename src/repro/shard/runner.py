"""Sharded dissemination: replicated control plane, partitioned delivery.

The engine's message plane — forwarding decisions, queues, backpressure,
link-loss RNG draws, crashes, failover repair, churn replay — depends
only on the tree, filters, assignment, and fault schedule, never on
*which* subscribers are being accounted.  So every shard worker runs the
**full** engine over the complete problem and restricts only the
delivery plane to its subgroup (``delivery_members``): matched/delivery
counters, latency groups, and the per-shard cover-filtered matcher.
The parent then

1. asserts the control planes agree bit-for-bit (node entries, duration,
   queue peaks, abort flag) — any divergence is a determinism bug;
2. scatter-sums the disjoint per-subscriber counters;
3. folds every shard's deferred ``(event, leaf)`` latency groups in the
   one canonical order the unsharded engine uses — concatenated pieces
   of a group are re-sorted by subscriber index, so the float additions
   (and the latency histogram) are *identical* to a single-process run.

That construction makes ``--shards N`` sha256-bit-identical to
``--shards 1`` for every configuration except per-event trace spans
(``trace_events > 0`` attributes deliveries to spans mid-run, which is
subscriber-dependent; the runner refuses that combination).

Worker dispatch goes through :func:`repro.perf.parallel.run_tasks`,
which is itself proven seed-for-seed equal between serial and
process-pool execution — so worker count never affects results, only
wall clock.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.problem import SAProblem
from ..dynamic.churn import ChurnTrace
from ..perf.parallel import run_tasks
from ..pubsub.events import EventDistribution
from ..pubsub.filters import Filter
from ..pubsub.matching import best_matcher
from ..pubsub.simulator import SimulationResult, simulate_dissemination
from ..runtime.engine import (DisseminationEngine, RuntimeConfig,
                              RuntimeResult)
from ..runtime.faults import FaultPlan, apply_fault_plan
from ..runtime.replay import ReplayConfig, prepare_replay, replay_churn
from ..runtime.telemetry import Telemetry
from .matcher import CoverMatcher, SubgroupMatcher
from .plan import ShardPlan, plan_shards

__all__ = ["ShardRun", "run_dissemination", "simulate_sharded"]


@dataclass(frozen=True)
class ShardRun:
    """A dissemination run's result plus the sharding diagnostics."""

    result: RuntimeResult
    plan: ShardPlan | None            #: None for unsharded runs
    workers: int                      #: worker processes actually used
    shard_seconds: tuple[float, ...]  #: per-shard wall clock (critical path)


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to replay the full run, picklable."""

    problem: SAProblem
    filters: dict[int, Filter] | None
    assignment: np.ndarray | None
    config: RuntimeConfig
    distribution: EventDistribution
    rng: np.random.Generator
    num_events: int
    chunk_size: int
    fault_plan: FaultPlan | None
    failover: bool
    trace: ChurnTrace | None
    replay_config: ReplayConfig | None
    manager_seed: int
    members: np.ndarray | None
    cover: Filter | None


def _engine_kwargs(task: _ShardTask) -> dict[str, Any]:
    kwargs: dict[str, Any] = {}
    if task.members is None:
        return kwargs
    kwargs["delivery_members"] = task.members
    kwargs["defer_delivery_fold"] = True
    if task.config.epoch_batch > 0 and len(task.members):
        inner = best_matcher(
            task.problem.subscriptions.take(task.members),
            task.distribution.domain)
        cover = task.cover
        if cover is None:
            cover = Filter.from_rects(
                [task.problem.subscriptions.take(task.members).meb()])
        kwargs["epoch_matcher"] = CoverMatcher(inner, cover,
                                               len(task.members))
    return kwargs


def _run_shard(task: _ShardTask) -> dict[str, Any]:
    """Run the full engine with delivery accounting restricted to a shard."""
    started = time.perf_counter()
    kwargs = _engine_kwargs(task)
    if task.trace is not None:
        engine, _system = prepare_replay(
            task.problem, task.trace, task.num_events,
            engine_config=task.config, replay_config=task.replay_config,
            fault_plan=task.fault_plan, failover=task.failover,
            manager_seed=task.manager_seed, engine_kwargs=kwargs)
    else:
        engine = DisseminationEngine(
            task.problem.tree, task.filters, task.assignment,
            task.problem.subscriptions, config=task.config,
            subscriber_points=task.problem.subscriber_points, **kwargs)
        if task.fault_plan is not None:
            apply_fault_plan(engine, task.fault_plan,
                             task.problem if task.failover else None,
                             failover=task.failover)
    result = engine.run(task.distribution, task.rng, task.num_events,
                        task.chunk_size)
    partial: dict[str, Any] = {"result": result}
    if task.members is not None:
        partial["groups"] = engine.drain_delivery_groups()
    partial["seconds"] = time.perf_counter() - started
    return partial


def _merge_partials(partials: list[dict[str, Any]]) -> RuntimeResult:
    """Deterministic shard merge; see the module docstring for the proof."""
    base = partials[0]["result"]
    for index, partial in enumerate(partials[1:], start=1):
        other = partial["result"]
        if (not np.array_equal(other.node_entries, base.node_entries)
                or other.duration != base.duration
                or other.aborted != base.aborted
                or not np.array_equal(other.queue_peaks, base.queue_peaks)):
            raise RuntimeError(
                f"shard {index}'s control plane diverged from shard 0's — "
                "the run is not deterministic (this is a bug)")

    deliveries = np.sum([p["result"].deliveries for p in partials], axis=0)
    missed = np.sum([p["result"].missed for p in partials], axis=0)

    # One global canonical fold over every shard's deferred groups: sort
    # by (event, leaf), and inside a group split across shards re-sort
    # the concatenated latencies by subscriber index — that reproduces
    # exactly the float-addition sequence of the unsharded engine.
    merged: dict[tuple[int, int], list[tuple[np.ndarray, np.ndarray]]] = {}
    for partial in partials:
        for event, leaf, receivers, latency in partial["groups"]:
            merged.setdefault((event, leaf), []).append((receivers, latency))
    telemetry = base.telemetry
    total_latency = 0.0
    histogram = telemetry.histogram("delivery_latency") if merged else None
    for key in sorted(merged):
        pieces = merged[key]
        if len(pieces) == 1:
            latency = pieces[0][1]
        else:
            receivers = np.concatenate([r for r, _lat in pieces])
            latency = np.concatenate([lat for _r, lat in pieces])
            latency = latency[np.argsort(receivers, kind="stable")]
        total_latency += float(latency.sum())
        histogram.observe_many(latency)

    # Shard 0's telemetry carries the (identical) control-plane metrics;
    # patch in the global delivery accounting the deferred fold skipped.
    total_deliveries = int(deliveries.sum())
    if total_deliveries:
        telemetry.counter("deliveries").reset_to(total_deliveries)
    telemetry.counter("missed_deliveries").inc(int(missed.sum()))

    return RuntimeResult(
        num_events=base.num_events,
        node_entries=base.node_entries,
        deliveries=deliveries,
        missed=missed,
        total_delivery_latency=total_latency,
        duration=base.duration,
        queue_peaks=base.queue_peaks,
        telemetry=telemetry,
        aborted=base.aborted)


def run_dissemination(problem: SAProblem,
                      distribution: EventDistribution,
                      rng: np.random.Generator,
                      num_events: int,
                      *,
                      config: RuntimeConfig | None = None,
                      shards: int = 1,
                      workers: int | None = None,
                      filters: dict[int, Filter] | None = None,
                      assignment: np.ndarray | None = None,
                      fault_plan: FaultPlan | None = None,
                      failover: bool = True,
                      trace: ChurnTrace | None = None,
                      replay_config: ReplayConfig | None = None,
                      manager_seed: int = 0,
                      chunk_size: int = 512,
                      plan: ShardPlan | None = None,
                      telemetry: Telemetry | None = None) -> ShardRun:
    """Run the dissemination engine, optionally sharded across processes.

    ``shards <= 1`` is *literally* the single-process path (one engine,
    or one churn replay); ``shards > 1`` partitions the population with
    :func:`plan_shards` (by assigned leaf, or by feasibility signature
    under churn where the assignment evolves), runs one full-control
    engine per shard restricted to its subgroup, and merges — the
    result is bit-identical by construction regardless of ``workers``.
    """
    config = config or RuntimeConfig()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if trace is None and (filters is None or assignment is None):
        raise ValueError("pass filters+assignment, or a churn trace")
    if shards > 1:
        if config.trace_events > 0:
            raise ValueError(
                "sharded runs do not support trace_events: per-event "
                "trace spans attribute deliveries mid-run, which is "
                "subscriber-dependent; run --shards 1 to trace")
        if telemetry is not None:
            raise ValueError("sharded runs own their telemetry; the "
                             "merged result carries it")

    if shards <= 1:
        started = time.perf_counter()
        if trace is not None:
            result, _system = replay_churn(
                problem, trace, distribution, rng, num_events,
                engine_config=config, replay_config=replay_config,
                fault_plan=fault_plan, failover=failover,
                manager_seed=manager_seed, telemetry=telemetry)
        else:
            engine = DisseminationEngine(
                problem.tree, filters, assignment, problem.subscriptions,
                config=config, subscriber_points=problem.subscriber_points,
                telemetry=telemetry)
            if fault_plan is not None:
                apply_fault_plan(engine, fault_plan,
                                 problem if failover else None,
                                 failover=failover)
            result = engine.run(distribution, rng, num_events, chunk_size)
        return ShardRun(result=result, plan=None, workers=1,
                        shard_seconds=(time.perf_counter() - started,))

    if plan is None:
        plan = plan_shards(
            problem.subscriptions, shards,
            # Under churn the assignment evolves mid-run; group by the
            # static feasibility signature instead.
            assignment=None if trace is not None else assignment,
            feasible=problem.feasible_leaf if trace is not None else None)
    tasks = [
        _ShardTask(problem=problem, filters=filters, assignment=assignment,
                   config=config, distribution=distribution,
                   # Every shard consumes the identical stream: each gets
                   # a private copy of the caller's generator state.
                   rng=copy.deepcopy(rng),
                   num_events=num_events, chunk_size=chunk_size,
                   fault_plan=fault_plan, failover=failover, trace=trace,
                   replay_config=replay_config, manager_seed=manager_seed,
                   members=members, cover=cover)
        for members, cover in zip(plan.members, plan.covers)]
    if workers is None:
        workers = min(len(tasks), os.cpu_count() or 1)
    partials = run_tasks(_run_shard, tasks, workers=workers)
    result = _merge_partials(partials)
    return ShardRun(result=result, plan=plan, workers=workers,
                    shard_seconds=tuple(p["seconds"] for p in partials))


# -- sharded batch simulation ------------------------------------------------


@dataclass(frozen=True)
class _SimShardTask:
    """One shard's slice of a batch simulation, picklable."""

    problem: SAProblem
    filters: dict[int, Filter]
    assignment: np.ndarray
    distribution: EventDistribution
    rng: np.random.Generator
    num_events: int
    chunk_size: int
    members: np.ndarray
    cover: Filter


def _run_sim_shard(task: _SimShardTask) -> dict[str, Any]:
    # Mask non-members out of the assignment: the filter traversal (and
    # so node entries) is unchanged, but deliveries/misses accrue only
    # to this shard's subgroup.  The matcher scatters subgroup rows into
    # full-population indices, so the simulator needs no shard logic.
    started = time.perf_counter()
    assignment = np.asarray(task.assignment, dtype=int).copy()
    mask = np.zeros(len(assignment), dtype=bool)
    mask[task.members] = True
    assignment[~mask] = -1
    matcher = SubgroupMatcher(task.problem.subscriptions, task.members,
                              cover=task.cover,
                              domain=task.distribution.domain)
    result = simulate_dissemination(
        task.problem.tree, task.filters, assignment,
        task.problem.subscriptions, task.distribution, task.rng,
        num_events=task.num_events, chunk_size=task.chunk_size,
        subscriber_points=task.problem.subscriber_points, matcher=matcher)
    return {"result": result, "seconds": time.perf_counter() - started}


def simulate_sharded(problem: SAProblem,
                     filters: dict[int, Filter],
                     assignment: np.ndarray,
                     distribution: EventDistribution,
                     rng: np.random.Generator,
                     num_events: int,
                     *,
                     shards: int = 1,
                     workers: int | None = None,
                     chunk_size: int = 512,
                     plan: ShardPlan | None = None,
                     ) -> tuple[SimulationResult, ShardPlan | None]:
    """Batch simulation partitioned across shards, bit-identical merge.

    The total delivery latency is *recomputed* from the merged delivery
    counts — the batch simulator derives it as ``(deliveries *
    path_latency).sum()``, so summing per-shard floats would change the
    addition order; re-deriving from exact integer counts reproduces the
    single-process float bit-for-bit.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if shards <= 1:
        result = simulate_dissemination(
            problem.tree, filters, assignment, problem.subscriptions,
            distribution, rng, num_events=num_events, chunk_size=chunk_size,
            subscriber_points=problem.subscriber_points)
        return result, None
    if plan is None:
        plan = plan_shards(problem.subscriptions, shards,
                           assignment=assignment)
    tasks = [
        _SimShardTask(problem=problem, filters=filters,
                      assignment=assignment, distribution=distribution,
                      rng=copy.deepcopy(rng), num_events=num_events,
                      chunk_size=chunk_size, members=members, cover=cover)
        for members, cover in zip(plan.members, plan.covers)]
    if workers is None:
        workers = min(len(tasks), os.cpu_count() or 1)
    partials = run_tasks(_run_sim_shard, tasks, workers=workers)

    base = partials[0]["result"]
    for index, partial in enumerate(partials[1:], start=1):
        if not np.array_equal(partial["result"].node_entries,
                              base.node_entries):
            raise RuntimeError(
                f"shard {index}'s node entries diverged from shard 0's — "
                "the run is not deterministic (this is a bug)")
    deliveries = np.sum([p["result"].deliveries for p in partials], axis=0)
    missed = np.sum([p["result"].missed for p in partials], axis=0)
    assignment = np.asarray(assignment, dtype=int)
    last_hop = np.zeros(len(assignment))
    if problem.subscriber_points is not None:
        last_hop = np.linalg.norm(
            problem.tree.positions[assignment] - problem.subscriber_points,
            axis=1)
    path_latency = problem.tree.down_latency[assignment].astype(float) \
        + last_hop
    total_latency = float((deliveries * path_latency).sum())
    return SimulationResult(
        num_events=base.num_events,
        node_entries=base.node_entries,
        deliveries=deliveries,
        missed=missed,
        total_delivery_latency=total_latency), plan
