"""Shard planning: subscription subgroups, covers, and deterministic packing.

A shard plan partitions the subscriber population into *subgroups* of
similar subscriptions (Shafique's subscription subgrouping) and packs
the subgroups onto ``num_shards`` workers.  Subgroups reuse the
feasibility-signature discipline of :mod:`repro.core.slp.aggregate`:
subscribers sharing a dissemination signature — the assigned leaf when
an assignment exists, otherwise the packed row of the latency-feasible
leaf set — route identically through the tree, so grouping them onto
one shard minimizes inter-shard coupling.

Each shard also carries one *aggregate cover filter*: the union of its
subgroups' minimum enclosing boxes.  Every member subscription lies
inside the cover, so an event outside it cannot match any member —
shard matchers pre-filter event batches against the cover before any
per-subscription work (see :class:`repro.shard.matcher.CoverMatcher`).

Everything here is deterministic — no RNG, no hashing of unordered
containers — because sharded runs must be seed-for-seed bit-identical
to single-process runs regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import RectSet
from ..pubsub.filters import Filter

__all__ = ["ShardPlan", "plan_shards", "MAX_COVER_RECTS"]

#: Cap on a shard cover filter's rectangle count; beyond it consecutive
#: subgroup boxes are coalesced (the cover only grows, so it stays a
#: superset of every member subscription).
MAX_COVER_RECTS = 64


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the subscriber population.

    ``groups`` lists the subgroups in canonical order (ascending first
    member); ``group_shard[i]`` is the shard owning ``groups[i]``;
    ``members[s]`` is the sorted union of shard ``s``'s subgroups; and
    ``covers[s]`` is the shard's aggregate cover filter.
    """

    num_subscribers: int
    num_shards: int
    members: tuple[np.ndarray, ...]
    groups: tuple[np.ndarray, ...]
    group_shard: np.ndarray
    covers: tuple[Filter, ...]

    def shard_of(self) -> np.ndarray:
        """Shard index per subscriber (every subscriber is owned once)."""
        owner = np.full(self.num_subscribers, -1, dtype=int)
        for shard, members in enumerate(self.members):
            owner[members] = shard
        return owner

    def loads(self) -> np.ndarray:
        """Subscribers per shard."""
        return np.array([len(m) for m in self.members], dtype=np.int64)


def _signature_ids(num_subscribers: int,
                   assignment: np.ndarray | None,
                   feasible: np.ndarray | None) -> np.ndarray:
    """Dense subgroup-signature id per subscriber, deterministic.

    The assigned leaf dominates when available (subscribers on one leaf
    share the whole dissemination path); otherwise the packed feasible
    leaf set (the aggregation signature of ``slp.aggregate``); otherwise
    a single signature.
    """
    if assignment is not None:
        sig = np.asarray(assignment, dtype=int)
        if sig.shape != (num_subscribers,):
            raise ValueError("assignment must have one entry per subscriber")
        _uniq, ids = np.unique(sig, return_inverse=True)
        return ids
    if feasible is not None:
        packed = np.packbits(np.asarray(feasible, dtype=bool), axis=0).T
        if packed.shape[0] != num_subscribers:
            raise ValueError("feasible must have one column per subscriber")
        _uniq, ids = np.unique(packed, axis=0, return_inverse=True)
        return ids
    return np.zeros(num_subscribers, dtype=int)


def _build_cover(subscriptions: RectSet,
                 shard_groups: list[np.ndarray],
                 max_cover_rects: int) -> Filter:
    """Union of per-subgroup MEBs, coalesced down to the rect cap."""
    if not shard_groups:
        return Filter.empty(subscriptions.dim)
    if len(shard_groups) > max_cover_rects:
        # Coalesce consecutive subgroups (canonical order) so the cover
        # stays within the cap; a merged MEB still encloses every member.
        chunks = np.array_split(np.arange(len(shard_groups)),
                                max_cover_rects)
        shard_groups = [np.concatenate([shard_groups[i] for i in chunk])
                        for chunk in chunks if len(chunk)]
    return Filter.from_rects(
        subscriptions.take(group).meb() for group in shard_groups)


def plan_shards(subscriptions: RectSet,
                num_shards: int,
                *,
                assignment: np.ndarray | None = None,
                feasible: np.ndarray | None = None,
                max_group_size: int | None = None,
                max_cover_rects: int = MAX_COVER_RECTS) -> ShardPlan:
    """Partition ``subscriptions`` into at most ``num_shards`` shards.

    Subgroups are formed by dissemination signature, split into chunks
    of at most ``max_group_size`` (default: enough granularity for ~8
    subgroups per shard, so longest-processing-time packing balances),
    ordered canonically, and packed LPT onto the least-loaded shard
    (ties to the lowest shard id).  The effective shard count is capped
    at the subgroup count — tiny populations simply use fewer workers.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    m = len(subscriptions)
    if max_group_size is None:
        max_group_size = max(1, -(-m // (num_shards * 8)))
    if max_group_size < 1:
        raise ValueError("max_group_size must be at least 1")

    ids = _signature_ids(m, assignment, feasible)
    groups: list[np.ndarray] = []
    for sid in range(int(ids.max()) + 1 if m else 0):
        indices = np.flatnonzero(ids == sid)
        if len(indices) == 0:
            continue
        pieces = -(-len(indices) // max_group_size)
        groups.extend(np.array_split(indices, pieces))
    groups.sort(key=lambda g: int(g[0]))

    effective = max(1, min(num_shards, len(groups)))
    group_shard = np.zeros(len(groups), dtype=int)
    load = np.zeros(effective, dtype=np.int64)
    order = sorted(range(len(groups)),
                   key=lambda i: (-len(groups[i]), int(groups[i][0])))
    for i in order:
        shard = int(np.argmin(load))  # argmin ties to the lowest index
        group_shard[i] = shard
        load[shard] += len(groups[i])

    members = []
    covers = []
    for shard in range(effective):
        shard_groups = [groups[i] for i in np.flatnonzero(group_shard == shard)]
        owned = (np.sort(np.concatenate(shard_groups))
                 if shard_groups else np.empty(0, dtype=int))
        members.append(owned)
        covers.append(_build_cover(subscriptions, shard_groups,
                                   max_cover_rects))
    return ShardPlan(num_subscribers=m, num_shards=effective,
                     members=tuple(members), groups=tuple(groups),
                     group_shard=group_shard, covers=tuple(covers))
