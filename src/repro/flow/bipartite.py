"""Subscriber-to-broker assignment as bipartite max-flow (paper Section IV-B).

The graph is ``source -> brokers -> subscribers -> sink``:

* ``source -> broker i`` with capacity ``floor(betabar * kappa_i * m)``;
* ``broker i -> subscriber j`` (capacity 1) whenever broker ``i`` *covers*
  subscriber ``j`` — the caller provides these cover edges;
* ``subscriber j -> sink`` with capacity 1.

``betabar`` starts at the desired load-balance factor ``beta`` and is
escalated multiplicatively until either every subscriber routes or the cap
``beta_max`` is hit.  The residual network is reused across escalations, so
each step only augments the missing flow.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .dinic import Dinic

__all__ = ["FlowAssignment", "assign_by_flow", "min_feasible_lbf"]


@dataclass(frozen=True)
class FlowAssignment:
    """Outcome of a flow-based assignment attempt.

    ``assignment[j]`` is the broker index serving subscriber ``j`` (or -1
    when ``j`` could not be routed).  ``achieved_beta`` is the escalated
    ``betabar`` in force when the search stopped; ``feasible`` says whether
    every subscriber was assigned.
    """

    assignment: np.ndarray
    achieved_beta: float
    flow: int
    feasible: bool

    @property
    def unassigned(self) -> np.ndarray:
        return np.flatnonzero(self.assignment < 0)


def _broker_capacities(kappas: np.ndarray, total: int, betabar: float) -> list[int]:
    return [int(math.floor(betabar * kappa * total)) for kappa in kappas]


def assign_by_flow(candidates: Sequence[np.ndarray],
                   kappas: np.ndarray,
                   beta: float,
                   beta_max: float,
                   escalation_step: float = 1.05) -> FlowAssignment:
    """Assign each subscriber to one of its candidate brokers.

    Parameters
    ----------
    candidates:
        ``candidates[j]`` lists the broker indices allowed to serve
        subscriber ``j`` (cover + latency already checked by the caller).
    kappas:
        Capacity fractions per broker, summing to 1.
    beta, beta_max:
        Desired and maximum load-balance factors; the effective factor is
        escalated from ``beta`` toward ``beta_max`` in multiplicative steps
        until all subscribers route.
    """
    kappa_arr = np.asarray(kappas, dtype=float)
    num_brokers = kappa_arr.shape[0]
    num_subscribers = len(candidates)
    if beta <= 0 or beta_max < beta:
        raise ValueError("need 0 < beta <= beta_max")
    if escalation_step <= 1.0:
        raise ValueError("escalation_step must exceed 1")

    source = 0
    sink = 1 + num_brokers + num_subscribers
    solver = Dinic(sink + 1)

    def broker_node(i: int) -> int:
        return 1 + i

    def subscriber_node(j: int) -> int:
        return 1 + num_brokers + j

    betabar = beta
    capacities = _broker_capacities(kappa_arr, num_subscribers, betabar)
    source_edges = [solver.add_edge(source, broker_node(i), capacities[i])
                    for i in range(num_brokers)]
    cover_edges: list[tuple[int, int, int]] = []  # (edge_id, broker, subscriber)
    for j, brokers in enumerate(candidates):
        solver.add_edge(subscriber_node(j), sink, 1)
        for i in np.asarray(brokers, dtype=int):
            edge_id = solver.add_edge(broker_node(int(i)), subscriber_node(j), 1)
            cover_edges.append((edge_id, int(i), j))

    flow = solver.max_flow(source, sink)
    while flow < num_subscribers and betabar < beta_max:
        betabar = min(betabar * escalation_step, beta_max)
        for i, edge_id in enumerate(source_edges):
            solver.set_capacity(
                edge_id, int(math.floor(betabar * kappa_arr[i] * num_subscribers)))
        flow += solver.max_flow(source, sink)

    assignment = np.full(num_subscribers, -1, dtype=int)
    for edge_id, broker, subscriber in cover_edges:
        if solver.edge_flow(edge_id) == 1:
            assignment[subscriber] = broker
    return FlowAssignment(assignment=assignment, achieved_beta=betabar,
                          flow=flow, feasible=flow == num_subscribers)


def min_feasible_lbf(candidates: Sequence[np.ndarray],
                     kappas: np.ndarray,
                     beta_hi: float = 64.0,
                     tolerance: float = 1e-3) -> FlowAssignment:
    """The smallest load-balance factor admitting a full assignment.

    Used by the ``Balance`` baseline (Section VI): binary search on the
    factor, with a fresh max-flow per probe.  Returns the assignment at the
    smallest feasible factor found (``feasible=False`` if even ``beta_hi``
    does not route everyone).
    """
    probe_hi = assign_by_flow(candidates, kappas, beta_hi, beta_hi)
    if not probe_hi.feasible:
        return probe_hi

    lo, hi = 0.0, beta_hi
    best = probe_hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        probe = assign_by_flow(candidates, kappas, mid, mid)
        if probe.feasible:
            best = probe
            hi = mid
        else:
            lo = mid
    return best
