"""Dinic's maximum-flow algorithm on integer-capacity graphs.

This is the flow substrate behind the paper's subscription-assignment step
(Section IV-B) and the ``Balance`` baseline.  The implementation keeps the
residual network between calls, so callers may *raise* capacities (the
paper escalates the load-balance factor from ``beta`` to ``beta_max``) and
resume augmenting without recomputing the flow found so far.

Pure Python, adjacency lists of edge ids, BFS level graph + DFS blocking
flow with current-arc pointers — ``O(E sqrt(V))`` on the unit-capacity
bipartite graphs the library builds.
"""

from __future__ import annotations

from collections import deque

__all__ = ["Dinic"]

_INF = float("inf")


class Dinic:
    """A max-flow solver over a mutable residual network."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError("a flow network needs at least two nodes")
        self.num_nodes = num_nodes
        # Parallel edge arrays; edge 2k and 2k+1 are a forward/backward pair.
        self._to: list[int] = []
        self._cap: list[int] = []
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge and return its id (for later capacity updates)."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise ValueError("edge endpoints out of range")
        edge_id = len(self._to)
        self._to.append(v)
        self._cap.append(capacity)
        self._adj[u].append(edge_id)
        self._to.append(u)
        self._cap.append(0)
        self._adj[v].append(edge_id + 1)
        return edge_id

    def set_capacity(self, edge_id: int, capacity: int) -> None:
        """Raise (or lower, if unused) an edge's capacity.

        The residual capacity becomes ``capacity - flow``; lowering below
        the current flow would create a negative residual and is rejected.
        """
        flow = self.edge_flow(edge_id)
        if capacity < flow:
            raise ValueError("cannot reduce capacity below the flow already routed")
        self._cap[edge_id] = capacity - flow
        # Backward edge keeps its accumulated flow; nothing else changes.

    def edge_flow(self, edge_id: int) -> int:
        """Flow currently routed on a forward edge (= its backward residual)."""
        return self._cap[edge_id ^ 1]

    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge_id in self._adj[u]:
                v = self._to[edge_id]
                if self._cap[edge_id] > 0 and levels[v] < 0:
                    levels[v] = levels[u] + 1
                    queue.append(v)
        return levels if levels[sink] >= 0 else None

    def _blocking_flow(self, source: int, sink: int, levels: list[int]) -> int:
        iters = [0] * self.num_nodes
        total = 0
        # Iterative DFS: stack of (node, edge pushed to reach it).
        while True:
            path: list[int] = []
            u = source
            while True:
                if u == sink:
                    # Push the bottleneck along the path.
                    pushed = min(self._cap[e] for e in path)
                    for e in path:
                        self._cap[e] -= pushed
                        self._cap[e ^ 1] += pushed
                    total += pushed
                    # Retreat to the first saturated edge on the path.
                    for index, e in enumerate(path):
                        if self._cap[e] == 0:
                            path = path[:index]
                            break
                    u = self._to[path[-1]] if path else source
                    continue
                advanced = False
                while iters[u] < len(self._adj[u]):
                    edge_id = self._adj[u][iters[u]]
                    v = self._to[edge_id]
                    if self._cap[edge_id] > 0 and levels[v] == levels[u] + 1:
                        path.append(edge_id)
                        u = v
                        advanced = True
                        break
                    iters[u] += 1
                if advanced:
                    continue
                if u == source:
                    return total
                levels[u] = -1  # dead end; prune
                u_edge = path.pop()
                u = self._to[u_edge ^ 1]
                iters[u] += 1

    def max_flow(self, source: int, sink: int) -> int:
        """Augment to a maximum flow; returns the *additional* flow routed.

        Because the residual network persists, calling this after raising
        capacities continues from the previous flow.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        added = 0
        while True:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                return added
            added += self._blocking_flow(source, sink, levels)
