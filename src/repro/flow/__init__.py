"""Max-flow substrate: Dinic's algorithm and bipartite assignment."""

from .bipartite import FlowAssignment, assign_by_flow, min_feasible_lbf
from .dinic import Dinic

__all__ = ["Dinic", "FlowAssignment", "assign_by_flow", "min_feasible_lbf"]
