"""Subscription churn traces for the dynamic SA problem.

The paper's conclusion names the *dynamic* version of subscriber
assignment — "where subscriptions come and go" — as immediate future
work, and positions SLP for "initial subscriber assignment [and]
periodical re-optimization".  This module provides the workload side of
that experiment: a churn trace over a fixed subscriber population.

A trace is a sequence of steps; each step carries subscriber arrivals
and departures drawn from Poisson processes.  Arrivals are sampled from
the inactive part of the population (so their interests/locations follow
the generating workload's distribution), departures uniformly from the
active part.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChurnStep", "ChurnTrace", "generate_churn_trace"]


@dataclass(frozen=True)
class ChurnStep:
    """One step of churn: who arrives and who departs."""

    step: int
    arrivals: np.ndarray     #: population indices becoming active
    departures: np.ndarray   #: population indices becoming inactive


@dataclass(frozen=True)
class ChurnTrace:
    """A full churn schedule plus the initial active set."""

    population_size: int
    initially_active: np.ndarray   #: boolean mask over the population
    steps: tuple[ChurnStep, ...] = field(default=())

    @property
    def horizon(self) -> int:
        return len(self.steps)

    def active_after(self, step_count: int) -> np.ndarray:
        """Boolean active mask after applying the first ``step_count`` steps."""
        active = self.initially_active.copy()
        for step in self.steps[:step_count]:
            active[step.arrivals] = True
            active[step.departures] = False
        return active


def generate_churn_trace(population_size: int,
                         horizon: int,
                         rng: np.random.Generator,
                         *,
                         initial_active_fraction: float = 0.5,
                         arrival_rate: float = 5.0,
                         departure_rate: float = 5.0) -> ChurnTrace:
    """A Poisson churn trace over a population of candidate subscribers.

    ``arrival_rate`` / ``departure_rate`` are expected events per step;
    equal rates keep the active count roughly stationary, unequal rates
    model growth or decay.
    """
    if not (0.0 < initial_active_fraction <= 1.0):
        raise ValueError("initial_active_fraction must be in (0, 1]")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")

    active = np.zeros(population_size, dtype=bool)
    initial_count = max(1, int(round(initial_active_fraction * population_size)))
    active[rng.choice(population_size, size=initial_count, replace=False)] = True
    initially_active = active.copy()

    steps = []
    for step in range(horizon):
        inactive_pool = np.flatnonzero(~active)
        n_arrive = min(int(rng.poisson(arrival_rate)), len(inactive_pool))
        arrivals = (rng.choice(inactive_pool, size=n_arrive, replace=False)
                    if n_arrive else np.empty(0, dtype=int))
        active[arrivals] = True

        active_pool = np.flatnonzero(active)
        n_depart = min(int(rng.poisson(departure_rate)), len(active_pool) - 1)
        n_depart = max(n_depart, 0)
        departures = (rng.choice(active_pool, size=n_depart, replace=False)
                      if n_depart else np.empty(0, dtype=int))
        active[departures] = False

        steps.append(ChurnStep(step=step, arrivals=arrivals,
                               departures=departures))
    return ChurnTrace(population_size=population_size,
                      initially_active=initially_active,
                      steps=tuple(steps))
