"""Online subscriber assignment with periodic re-optimization.

This implements the deployment story the paper sketches for SLP
(Section I / VIII): arrivals are assigned *online* with the greedy rule
(cheap, incremental), filters only ever grow between optimizations —
so solution quality drifts as subscribers come and go — and a periodic
**re-optimization** with SLP1 (or any registered algorithm) restores
quality at the cost of migrating some subscribers between brokers.

The manager tracks both:

* the *online* filters — the grow-only rectangles maintained by the
  greedy rule, which determine current bandwidth; and
* the *migration cost* of each re-optimization — how many active
  subscribers changed brokers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.greedy import _greedy_assign_one, _TreeFilterState
from ..core.problem import SAProblem, filters_from_assignment
from ..core.registry import get_algorithm
from ..metrics.bandwidth import total_bandwidth
from .churn import ChurnStep

__all__ = ["DynamicSnapshot", "DynamicPubSub"]


@dataclass(frozen=True)
class DynamicSnapshot:
    """Metrics of the running system at one point in time."""

    step: int
    active_count: int
    bandwidth: float          #: with the current (grow-only) filters
    tight_bandwidth: float    #: if filters were re-tightened right now
    lbf: float
    total_migrations: int


class DynamicPubSub:
    """A running pub/sub system over a fixed candidate population.

    ``problem`` describes the *population*: every subscriber that may
    ever arrive, with precomputed latency structures.  At any moment a
    subset is active; arrivals are placed by the online greedy rule and
    departures simply free capacity (filters keep their extent until the
    next re-optimization — the realistic drift the dynamic problem is
    about).
    """

    def __init__(self, problem: SAProblem, *, seed: int = 0):
        self._problem = problem
        self._rng = np.random.default_rng(seed)
        m = problem.num_subscribers
        self._assignment = np.full(m, -1, dtype=int)   # leaf node ids
        self._loads = np.zeros(problem.num_leaf_brokers, dtype=int)
        self._state = _TreeFilterState(problem)
        self._lbf_stages = (problem.params.beta, problem.params.beta_max)
        self.total_migrations = 0
        self._step = 0

    # -- membership ---------------------------------------------------------

    @property
    def problem(self) -> SAProblem:
        return self._problem

    @property
    def active_mask(self) -> np.ndarray:
        return self._assignment >= 0

    @property
    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self._assignment >= 0)

    @property
    def active_count(self) -> int:
        return int(self.active_mask.sum())

    @property
    def assignment(self) -> np.ndarray:
        """Leaf node per population member (-1 = inactive)."""
        return self._assignment.copy()

    # -- online operations ----------------------------------------------------

    def arrive(self, subscriber: int) -> int:
        """Assign an arriving subscriber with the online greedy rule."""
        if self._assignment[subscriber] >= 0:
            raise ValueError(f"subscriber {subscriber} is already active")
        # Load caps scale with the *current* active population.
        row, _ok = _greedy_assign_one(
            self._problem, self._state, self._loads, subscriber,
            True, self._lbf_stages, population=self.active_count + 1)
        leaf = int(self._problem.tree.leaves[row])
        self._assignment[subscriber] = leaf
        self._loads[row] += 1
        self._state.commit(row, self._problem.subscriptions.lo[subscriber],
                           self._problem.subscriptions.hi[subscriber])
        return leaf

    def depart(self, subscriber: int) -> None:
        """Deactivate a subscriber; its broker's filter does not shrink."""
        leaf = int(self._assignment[subscriber])
        if leaf < 0:
            raise ValueError(f"subscriber {subscriber} is not active")
        self._loads[self._problem.tree.leaf_row(leaf)] -= 1
        self._assignment[subscriber] = -1

    def apply(self, step: ChurnStep) -> None:
        """Apply one churn step (arrivals first, then departures — the
        order the trace generator samples them in, so a same-step arrival
        may also depart)."""
        for j in step.arrivals:
            self.arrive(int(j))
        for j in step.departures:
            self.depart(int(j))
        self._step = step.step + 1

    # -- metrics ----------------------------------------------------------------

    def current_filters(self):
        """The grow-only online filters (drifted between optimizations)."""
        return self._state.to_filters(self._problem.event_dim)

    def tight_filters(self):
        """Filters re-tightened around the currently active assignment."""
        return filters_from_assignment(self._problem, self._assignment,
                                       self._rng)

    def bandwidth(self, *, tight: bool = False) -> float:
        filters = self.tight_filters() if tight else self.current_filters()
        return total_bandwidth(filters)

    def load_balance_factor(self) -> float:
        active = self.active_count
        if active == 0:
            return 0.0
        return float((self._loads
                      / (self._problem.kappas * active)).max())

    def snapshot(self) -> DynamicSnapshot:
        return DynamicSnapshot(
            step=self._step,
            active_count=self.active_count,
            bandwidth=self.bandwidth(),
            tight_bandwidth=self.bandwidth(tight=True),
            lbf=self.load_balance_factor(),
            total_migrations=self.total_migrations,
        )

    # -- re-optimization -----------------------------------------------------------

    def reoptimize(self, algorithm: str = "SLP1", *,
                   precommit: Any = None, **kwargs: Any) -> dict[str, Any]:
        """Reassign all active subscribers with a full (offline) algorithm.

        Returns a summary including the migration count.  The online
        filter state is re-seeded from the optimizer's adjusted filters,
        so subsequent arrivals grow tight filters rather than drifted
        ones.

        ``precommit``, when given, is called as ``precommit(sub_problem,
        solution)`` *before* any state changes; a falsy return vetoes
        the re-optimization — nothing is migrated, the summary carries
        ``committed: False`` — which is how the live service refuses to
        swap in a solution that fails invariant verification.
        """
        active = self.active_indices
        if len(active) == 0:
            return {"migrations": 0, "active": 0, "committed": False}

        sub_problem = SAProblem(
            self._problem.tree,
            self._problem.subscriber_points[active],
            self._problem.subscriptions.take(active),
            self._problem.params,
            kappas=self._problem.kappas,
        )
        solution = get_algorithm(algorithm)(sub_problem, **kwargs)
        if precommit is not None and not precommit(sub_problem, solution):
            return {"migrations": 0, "active": int(len(active)),
                    "algorithm": algorithm, "committed": False}

        old = self._assignment[active]
        new = np.asarray(solution.assignment, dtype=int)
        migrations = int((old != new).sum())
        self.total_migrations += migrations

        self._assignment[active] = new
        self._loads = self._problem.loads(self._assignment)
        self._state.load_filters(solution.filters)
        return {
            "migrations": migrations,
            "active": int(len(active)),
            "algorithm": algorithm,
            "bandwidth": total_bandwidth(solution.filters),
            "fractional": solution.fractional_bandwidth,
            "committed": True,
        }
