"""Dynamic subscriber assignment: churn, online placement, re-optimization.

Implements the paper's named future-work direction ("a principled
approach ... for the dynamic version of the subscriber assignment
problem, where subscriptions come and go") using the pieces the paper
already provides: the online greedy rule for arrivals and periodic
re-optimization with SLP1.
"""

from .churn import ChurnStep, ChurnTrace, generate_churn_trace
from .manager import DynamicPubSub, DynamicSnapshot

__all__ = [
    "ChurnStep",
    "ChurnTrace",
    "generate_churn_trace",
    "DynamicPubSub",
    "DynamicSnapshot",
]
