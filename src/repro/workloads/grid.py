"""Workload set #3: grid-cell hot spots, interests independent of location
(paper Section VI; mimics Sub-2-Sub [19] and related evaluations).

The event space is partitioned into a 10x10 grid of 100 cells.  Cells are
ranked in random order and a subscription's center is the center of a
cell drawn Zipf(0.5) by rank — creating hot spots in E.  Subscription
widths per dimension come from a predefined width set, also Zipf(0.5).
Each subscriber sits at one of a pool of network locations chosen
uniformly — interests and locations are *independent*, so the paper
tightens the load-balance factors to ``beta = 1.3`` / ``beta_max = 1.5``
(random locations make balancing easy).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet
from ..network import RegionModel, default_world_regions
from .base import Workload, stratified_broker_points

__all__ = ["GridConfig", "generate_grid"]


class GridConfig:
    """Shape parameters (paper values by default, sizes scaled down)."""

    def __init__(self, *,
                 num_subscribers: int = 2000,
                 num_brokers: int = 20,
                 cells_per_axis: int = 10,
                 zipf_exponent: float = 0.5,
                 width_fractions: tuple[float, ...] = (0.02, 0.04, 0.08, 0.16, 0.32),
                 num_locations: int = 50,
                 event_extent: float = 100.0,
                 regions: RegionModel | None = None):
        self.num_subscribers = num_subscribers
        self.num_brokers = num_brokers
        self.cells_per_axis = cells_per_axis
        self.zipf_exponent = zipf_exponent
        self.width_fractions = width_fractions
        self.num_locations = num_locations
        self.event_extent = event_extent
        self.regions = regions or default_world_regions()


def _zipf(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_grid(seed: int, config: GridConfig | None = None) -> Workload:
    """Generate one workload-set-#3 instance."""
    config = config or GridConfig()
    rng = np.random.default_rng(seed)
    extent = config.event_extent
    cells = config.cells_per_axis

    # Rank the grid cells in random order; hot cells attract more centers.
    num_cells = cells * cells
    cell_order = rng.permutation(num_cells)
    cell_probabilities = np.empty(num_cells)
    cell_probabilities[cell_order] = _zipf(num_cells, config.zipf_exponent)

    chosen_cells = rng.choice(num_cells, size=config.num_subscribers,
                              p=cell_probabilities)
    cell_size = extent / cells
    cell_x = (chosen_cells % cells + 0.5) * cell_size
    cell_y = (chosen_cells // cells + 0.5) * cell_size
    centers = np.column_stack([cell_x, cell_y])

    # Widths per dimension from the predefined set, Zipf-weighted.
    width_probabilities = _zipf(len(config.width_fractions),
                                config.zipf_exponent)
    width_values = np.asarray(config.width_fractions) * extent
    widths = width_values[rng.choice(len(width_values),
                                     size=(config.num_subscribers, 2),
                                     p=width_probabilities)]
    lo = np.clip(centers - widths / 2, 0.0, extent)
    hi = np.clip(centers + widths / 2, 0.0, extent)
    subscriptions = RectSet(lo, hi)

    # Locations independent of interests: a shared uniform pool.
    locations = config.regions.sample(rng, config.num_locations)
    subscriber_points = locations[rng.integers(config.num_locations,
                                               size=config.num_subscribers)]

    # Brokers track the subscriber location pool (see rss.py for the
    # rationale: independent broker placement can make load balance
    # structurally infeasible at small broker counts).
    broker_points = stratified_broker_points(rng, subscriber_points,
                                             config.num_brokers)
    publisher = np.zeros(config.regions.dim)

    return Workload(
        name="grid",
        publisher=publisher,
        broker_points=broker_points,
        subscriber_points=subscriber_points,
        subscriptions=subscriptions,
        event_domain=Rect([0.0, 0.0], [extent, extent]),
        default_beta=1.3,
        default_beta_max=1.5,
        metadata={
            "set": 3,
            "cells": num_cells,
            "num_locations": config.num_locations,
            "seed": seed,
        },
    )
