"""Workload generators: the paper's three evaluation sets plus adversarial."""

from .adversarial import generate_clustered_shuffle
from .base import Workload, multilevel_problem, one_level_problem
from .googlegroups import (
    VARIANTS,
    GoogleGroupsConfig,
    generate_google_groups,
    variant_name,
)
from .grid import GridConfig, generate_grid
from .rss import RssConfig, generate_rss

__all__ = [
    "Workload",
    "one_level_problem",
    "multilevel_problem",
    "GoogleGroupsConfig",
    "generate_google_groups",
    "VARIANTS",
    "variant_name",
    "RssConfig",
    "generate_rss",
    "GridConfig",
    "generate_grid",
    "generate_clustered_shuffle",
]
