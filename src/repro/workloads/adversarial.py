"""Adversarial instances where greedy assignment fails badly.

The paper (Section VI, Discussion) notes that the technical report shows
"several instances for which Gr* performs orders of magnitude worse than
SLP" — the motivation for having a principled yardstick at all.  This
module constructs such an instance:

* subscriptions form ``k`` tight, well-separated clusters in the event
  space, but arrive in *shuffled* order;
* there are exactly ``k`` brokers with hard per-broker capacity
  (``beta = beta_max = 1``), all latency-equivalent;
* filter complexity ``alpha = 1``.

The optimal solution sends one cluster to each broker (total bandwidth ~=
``k`` x cluster volume).  Greedy, seeing a shuffled stream, seeds brokers
with rectangles from arbitrary clusters and then grows every filter
across multiple clusters — bandwidth explodes by orders of magnitude.
SLP's candidate filters include the per-cluster MEBs, so its LP recovers
the tiling.
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet
from ..network import default_world_regions
from .base import Workload

__all__ = ["generate_clustered_shuffle"]


def generate_clustered_shuffle(seed: int, *,
                               num_clusters: int = 8,
                               subscribers_per_cluster: int = 50,
                               event_extent: float = 1000.0,
                               cluster_width_fraction: float = 0.02) -> Workload:
    """The shuffled-clusters trap for greedy algorithms.

    All subscribers share one network location (latency never binds), so
    the only structure is in the event space, where greedy's myopic
    least-enlargement rule is maximally misled.
    """
    rng = np.random.default_rng(seed)
    k = num_clusters
    per = subscribers_per_cluster
    m = k * per
    extent = event_extent

    # Cluster anchors on a coarse grid, far apart relative to their size.
    grid = int(np.ceil(np.sqrt(k)))
    anchor_step = extent / grid
    anchors = np.array([[(c % grid + 0.5) * anchor_step,
                         (c // grid + 0.5) * anchor_step] for c in range(k)])

    width = cluster_width_fraction * extent
    cluster_of = np.repeat(np.arange(k), per)
    rng.shuffle(cluster_of)  # the adversarial arrival order
    centers = anchors[cluster_of] + rng.uniform(-width, width, size=(m, 2))
    half = rng.uniform(0.2 * width, 0.5 * width, size=(m, 2))
    subscriptions = RectSet(centers - half, centers + half)

    regions = default_world_regions()
    shared_point = regions.regions[0].sample(rng, 1)[0]
    subscriber_points = np.tile(shared_point, (m, 1))
    broker_points = np.tile(shared_point, (k, 1)) \
        + rng.normal(scale=0.1, size=(k, regions.dim))
    publisher = np.zeros(regions.dim)

    return Workload(
        name="adversarial-clustered-shuffle",
        publisher=publisher,
        broker_points=broker_points,
        subscriber_points=subscriber_points,
        subscriptions=subscriptions,
        event_domain=Rect([0.0, 0.0], [extent, extent]),
        default_beta=1.0,
        default_beta_max=1.0,
        metadata={
            "set": "adversarial",
            "clusters": k,
            "per_cluster": per,
            "cluster_of": cluster_of,
            "seed": seed,
        },
    )
