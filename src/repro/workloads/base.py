"""Workload containers and problem construction helpers.

A :class:`Workload` bundles everything the generators produce: publisher
and broker locations in the network space, subscriber locations, the
subscription boxes, the event domain, and the load-balance parameters the
paper pairs with each workload set (Section VI, "Problem Settings").
:func:`one_level_problem` / :func:`multilevel_problem` turn a workload
into a concrete :class:`~repro.core.problem.SAProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.problem import SAParameters, SAProblem
from ..geometry import Rect, RectSet
from ..network import build_hierarchical_tree, build_one_level_tree

__all__ = ["Workload", "one_level_problem", "multilevel_problem",
           "stratified_broker_points"]


def stratified_broker_points(rng: np.random.Generator,
                             subscriber_points: np.ndarray,
                             num_brokers: int,
                             jitter: float = 2.0) -> np.ndarray:
    """Broker positions tracking the subscriber distribution.

    Groups subscribers by identical network location (workload sets #2
    and #3 pin subscribers to a location pool), allocates broker counts
    per location by largest remainder, and jitters each broker around its
    location.  This keeps provisioning proportional to demand — without
    it, small broker counts can make load balance structurally
    infeasible regardless of algorithm.
    """
    locations, inverse = np.unique(subscriber_points, axis=0,
                                   return_inverse=True)
    counts = np.bincount(inverse, minlength=len(locations))
    quota = num_brokers * counts / counts.sum()
    allocation = np.floor(quota).astype(int)
    remainder = quota - allocation
    while allocation.sum() < num_brokers:
        pick = int(remainder.argmax())
        allocation[pick] += 1
        remainder[pick] = -np.inf
    points = []
    for loc, k in zip(locations, allocation):
        if k:
            points.append(loc + rng.normal(scale=jitter,
                                           size=(int(k), loc.shape[0])))
    return np.vstack(points)


@dataclass
class Workload:
    """A complete generated SA workload."""

    name: str
    publisher: np.ndarray
    broker_points: np.ndarray
    subscriber_points: np.ndarray
    subscriptions: RectSet
    event_domain: Rect
    #: the beta / beta_max the paper uses with this workload set
    default_beta: float = 1.5
    default_beta_max: float = 1.8
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def num_subscribers(self) -> int:
        return self.subscriber_points.shape[0]

    @property
    def num_brokers(self) -> int:
        return self.broker_points.shape[0]

    def parameters(self, *, alpha: int = 3, max_delay: float = 0.3,
                   beta: float | None = None,
                   beta_max: float | None = None,
                   latency_mode: str = "path") -> SAParameters:
        """SA parameters with this workload's default betas filled in."""
        return SAParameters(
            alpha=alpha,
            max_delay=max_delay,
            beta=self.default_beta if beta is None else beta,
            beta_max=self.default_beta_max if beta_max is None else beta_max,
            latency_mode=latency_mode,
        )


def one_level_problem(workload: Workload, *, alpha: int = 3,
                      max_delay: float = 0.3,
                      beta: float | None = None,
                      beta_max: float | None = None) -> SAProblem:
    """The paper's one-level setting: all brokers attached to the publisher."""
    tree = build_one_level_tree(workload.publisher, workload.broker_points)
    params = workload.parameters(alpha=alpha, max_delay=max_delay,
                                 beta=beta, beta_max=beta_max)
    return SAProblem(tree, workload.subscriber_points,
                     workload.subscriptions, params)


def multilevel_problem(workload: Workload, *, max_out_degree: int = 15,
                       alpha: int = 3, max_delay: float = 0.3,
                       beta: float | None = None,
                       beta_max: float | None = None,
                       seed: int = 0) -> SAProblem:
    """The paper's multi-level setting (bounded out-degree broker tree)."""
    rng = np.random.default_rng(seed)
    tree = build_hierarchical_tree(workload.publisher, workload.broker_points,
                                   max_out_degree, rng)
    params = workload.parameters(alpha=alpha, max_delay=max_delay,
                                 beta=beta, beta_max=beta_max)
    return SAProblem(tree, workload.subscriber_points,
                     workload.subscriptions, params)
