"""Workload set #1: Google-Groups-style workloads (paper Section VI).

The paper's generator [6] extrapolates from publicly available Google
Groups statistics; we do not have the crawl, so this module reproduces
the workload *properties* the paper actually varies and describes:

* subscribers split across Asia : North America : Europe = 4 : 1 : 4 in
  ``N = R^5``, brokers drawn from (roughly) the same distribution;
* subscriptions are rectangles in ``E = R^2`` clustered around *interests*
  (groups): members of a group subscribe to rectangles near the group's
  spot in the event space — topical concentration;
* interests have regional affinity, correlating subscriber interests with
  locations (the "geographical and topical concentration" FilterGen's
  joint clustering exploits);
* two axes, each Low/High (the paper's four variants, with the real
  Google Groups baseline resembling ``IS:H, BI:L``):

  - **IS** — interest skewness: the Zipf exponent of group popularity;
  - **BI** — broad interests: the fraction of subscriptions that are
    large rectangles (users watching a whole area of the event space).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet
from ..network import RegionModel, default_world_regions
from .base import Workload

__all__ = ["GoogleGroupsConfig", "generate_google_groups", "VARIANTS",
           "variant_name"]

#: The paper's four workload-set-#1 variants.
VARIANTS = (("L", "L"), ("H", "L"), ("L", "H"), ("H", "H"))


def variant_name(interest_skew: str, broad_interests: str) -> str:
    return f"(IS:{interest_skew}, BI:{broad_interests})"


class GoogleGroupsConfig:
    """Shape parameters of the generator (defaults scaled for laptops)."""

    def __init__(self, *,
                 num_subscribers: int = 2000,
                 num_brokers: int = 20,
                 interest_skew: str = "H",
                 broad_interests: str = "L",
                 num_interests: int | None = None,
                 event_extent: float = 1000.0,
                 regions: RegionModel | None = None):
        if interest_skew not in ("L", "H") or broad_interests not in ("L", "H"):
            raise ValueError("interest_skew and broad_interests must be 'L' or 'H'")
        self.num_subscribers = num_subscribers
        self.num_brokers = num_brokers
        self.interest_skew = interest_skew
        self.broad_interests = broad_interests
        self.num_interests = num_interests or max(20, num_subscribers // 40)
        self.event_extent = event_extent
        self.regions = regions or default_world_regions()

    @property
    def zipf_exponent(self) -> float:
        """Popularity skew across interests: mild (L) vs strong (H)."""
        return 0.5 if self.interest_skew == "L" else 1.2

    @property
    def broad_fraction(self) -> float:
        """Share of subscriptions that are broad (large) rectangles."""
        return 0.05 if self.broad_interests == "L" else 0.25


def _zipf_probabilities(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_google_groups(seed: int,
                           config: GoogleGroupsConfig | None = None) -> Workload:
    """Generate one workload-set-#1 instance."""
    config = config or GoogleGroupsConfig()
    rng = np.random.default_rng(seed)
    regions = config.regions
    extent = config.event_extent

    # Interests: an event-space center, a topical spread, and a regional
    # affinity (most members come from the interest's home region).
    k = config.num_interests
    interest_centers = rng.uniform(0.05 * extent, 0.95 * extent, size=(k, 2))
    interest_spread = rng.uniform(0.01 * extent, 0.04 * extent, size=k)
    num_regions = len(regions.regions)
    home_region = regions.region_index(rng, k)
    # Members lean toward the interest's home region but every interest has
    # a global tail, so the marginal subscriber distribution stays close to
    # the 4 : 1 : 4 regional split.
    affinity = np.full((k, num_regions), 0.4 / max(num_regions - 1, 1))
    affinity[np.arange(k), home_region] = 0.6

    popularity = _zipf_probabilities(k, config.zipf_exponent)
    interest_of = rng.choice(k, size=config.num_subscribers, p=popularity)

    # Subscriber locations: draw from the affinity-weighted regions.
    subscriber_points = np.empty((config.num_subscribers, regions.dim))
    region_of = np.empty(config.num_subscribers, dtype=int)
    for g in np.unique(interest_of):
        members = np.flatnonzero(interest_of == g)
        region_pick = rng.choice(num_regions, size=len(members), p=affinity[g])
        region_of[members] = region_pick
        for r in np.unique(region_pick):
            chosen = members[region_pick == r]
            subscriber_points[chosen] = regions.regions[r].sample(rng, len(chosen))

    # Subscriptions: rectangles around the interest's event-space center.
    centers = (interest_centers[interest_of]
               + rng.normal(scale=interest_spread[interest_of][:, None],
                            size=(config.num_subscribers, 2)))
    narrow = rng.uniform(0.01 * extent, 0.05 * extent,
                         size=(config.num_subscribers, 2))
    broad = rng.uniform(0.25 * extent, 0.6 * extent,
                        size=(config.num_subscribers, 2))
    is_broad = rng.random(config.num_subscribers) < config.broad_fraction
    widths = np.where(is_broad[:, None], broad, narrow)
    lo = np.clip(centers - widths / 2, 0.0, extent)
    hi = np.clip(centers + widths / 2, 0.0, extent)
    subscriptions = RectSet(lo, hi)

    # Brokers follow the subscriber distribution (paper: "roughly the
    # same as that of the subscribers"): allocate broker counts per region
    # proportional to the realized subscriber counts (largest remainder,
    # at least one per populated region — without stratification, sampling
    # variance can starve a region and make load balance structurally
    # infeasible), then plant each broker near a random subscriber of its
    # region.  The publisher sits at the regions' common origin.
    region_counts = np.bincount(region_of, minlength=num_regions)
    quota = config.num_brokers * region_counts / config.num_subscribers
    allocation = np.floor(quota).astype(int)
    allocation[region_counts > 0] = np.maximum(
        allocation[region_counts > 0], 1)
    while allocation.sum() < config.num_brokers:
        allocation[int(np.argmax(quota - allocation))] += 1
    while allocation.sum() > config.num_brokers:
        over = np.where(allocation > 1, allocation - quota, -np.inf)
        allocation[int(np.argmax(over))] -= 1

    broker_rows = []
    for r in range(num_regions):
        members = np.flatnonzero(region_of == r)
        if allocation[r] == 0 or len(members) == 0:
            continue
        anchor = rng.choice(members, size=allocation[r],
                            replace=allocation[r] > len(members))
        broker_rows.append(subscriber_points[anchor] + rng.normal(
            scale=2.0, size=(allocation[r], regions.dim)))
    broker_points = np.vstack(broker_rows)
    publisher = np.zeros(regions.dim)

    return Workload(
        name=f"googlegroups{variant_name(config.interest_skew, config.broad_interests)}",
        publisher=publisher,
        broker_points=broker_points,
        subscriber_points=subscriber_points,
        subscriptions=subscriptions,
        event_domain=Rect([0.0, 0.0], [extent, extent]),
        default_beta=1.5,
        default_beta_max=1.8,
        metadata={
            "set": 1,
            "interest_skew": config.interest_skew,
            "broad_interests": config.broad_interests,
            "num_interests": k,
            "seed": seed,
        },
    )
