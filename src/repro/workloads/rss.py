"""Workload set #2: RSS-feed-style, essentially topic-based (paper Section VI).

Reproduces the workloads of Corona [17] and related systems: 50 distinct
interests whose popularity follows Zipf with exponent 0.5; each interest
is a random *unit square* in the event space (so all subscribers of an
interest share the same subscription — topic-based); subscriber locations
are drawn uniformly from 10 fixed network locations.  Neither space has a
notion of proximity, which is why the paper relaxes the load-balance
factors to ``beta = 2.3`` / ``beta_max = 2.5`` (interest skew makes the
subscriber distribution over N skewed too).
"""

from __future__ import annotations

import numpy as np

from ..geometry import Rect, RectSet
from ..network import RegionModel, default_world_regions
from .base import Workload, stratified_broker_points

__all__ = ["RssConfig", "generate_rss"]


class RssConfig:
    """Shape parameters (paper values by default, sizes scaled down)."""

    def __init__(self, *,
                 num_subscribers: int = 2000,
                 num_brokers: int = 20,
                 num_interests: int = 50,
                 num_locations: int = 10,
                 zipf_exponent: float = 0.5,
                 event_extent: float = 100.0,
                 regions: RegionModel | None = None):
        self.num_subscribers = num_subscribers
        self.num_brokers = num_brokers
        self.num_interests = num_interests
        self.num_locations = num_locations
        self.zipf_exponent = zipf_exponent
        self.event_extent = event_extent
        self.regions = regions or default_world_regions()


def generate_rss(seed: int, config: RssConfig | None = None) -> Workload:
    """Generate one workload-set-#2 instance."""
    config = config or RssConfig()
    rng = np.random.default_rng(seed)
    extent = config.event_extent

    # Interests: unit squares placed uniformly at random in E.
    corners = rng.uniform(0.0, extent - 1.0, size=(config.num_interests, 2))
    ranks = np.arange(1, config.num_interests + 1, dtype=float)
    weights = ranks ** (-config.zipf_exponent)
    popularity = weights / weights.sum()

    interest_of = rng.choice(config.num_interests,
                             size=config.num_subscribers, p=popularity)
    lo = corners[interest_of]
    subscriptions = RectSet(lo, lo + 1.0)

    # Ten fixed network locations; every subscriber sits exactly at one.
    locations = config.regions.sample(rng, config.num_locations)
    location_of = rng.integers(config.num_locations,
                               size=config.num_subscribers)
    subscriber_points = locations[location_of]

    # Brokers track the (skewed) subscriber distribution over the ten
    # locations — a deployed system provisions brokers where the
    # subscribers are, and without this the load-balance constraints can
    # be structurally infeasible at small broker counts.
    broker_points = stratified_broker_points(rng, subscriber_points,
                                             config.num_brokers)
    publisher = np.zeros(config.regions.dim)

    return Workload(
        name="rss",
        publisher=publisher,
        broker_points=broker_points,
        subscriber_points=subscriber_points,
        subscriptions=subscriptions,
        event_domain=Rect([0.0, 0.0], [extent, extent]),
        default_beta=2.3,
        default_beta_max=2.5,
        metadata={
            "set": 2,
            "num_interests": config.num_interests,
            "num_locations": config.num_locations,
            "seed": seed,
        },
    )
