"""Workload diagnostics: the statistics the paper's axes are built on.

The paper varies two workload factors — **IS** (interest skewness) and
**BI** (number of broad interests) — derived from publicly available
Google Groups statistics [6].  This module measures those properties on
*any* generated workload, so users can verify a workload has the
characteristics they intend (and tests can assert the generators hit
their targets):

* :func:`popularity_skew` — a Zipf exponent fitted to the popularity of
  interest clusters in the event space;
* :func:`broad_interest_fraction` — the share of subscriptions that are
  large relative to the event domain;
* :func:`interest_location_correlation` — how strongly subscriber
  location depends on interest (the geographic/topical correlation that
  FilterGen's joint clustering exploits);
* :func:`overlap_statistics` — sampled pairwise subscription overlap,
  the driver of filter sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import kmeans
from .base import Workload

__all__ = [
    "popularity_skew",
    "broad_interest_fraction",
    "interest_location_correlation",
    "overlap_statistics",
    "OverlapStats",
    "describe_workload",
]


def _interest_labels(workload: Workload, num_clusters: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Cluster subscriptions in the event space into interest groups."""
    centers = workload.subscriptions.centers()
    k = min(num_clusters, len(workload.subscriptions))
    labels, _ = kmeans(centers, k, rng)
    return labels


def popularity_skew(workload: Workload, *, num_clusters: int = 30,
                    seed: int = 0) -> float:
    """Fitted Zipf exponent of interest popularity.

    Clusters subscriptions into interests, ranks cluster sizes, and fits
    ``log(count) ~ -s * log(rank)`` by least squares.  Higher ``s`` means
    a more skewed (IS:H-like) workload; ~0 means uniform popularity.
    """
    rng = np.random.default_rng(seed)
    labels = _interest_labels(workload, num_clusters, rng)
    counts = np.sort(np.bincount(labels))[::-1].astype(float)
    counts = counts[counts > 0]
    if len(counts) < 3:
        return 0.0
    ranks = np.arange(1, len(counts) + 1, dtype=float)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(counts), 1)
    return float(max(-slope, 0.0))


def broad_interest_fraction(workload: Workload, *,
                            width_threshold: float = 0.2) -> float:
    """Fraction of subscriptions broad in at least one dimension.

    ``width_threshold`` is relative to the event-domain extent per axis
    (the paper's BI axis: "number of broad interests (i.e., large
    rectangles)").
    """
    widths = workload.subscriptions.widths()
    extents = workload.event_domain.widths
    relative = widths / extents[None, :]
    return float((relative > width_threshold).any(axis=1).mean())


def interest_location_correlation(workload: Workload, *,
                                  num_clusters: int = 30,
                                  seed: int = 0) -> float:
    """Between-interest share of location variance, in ``[0, 1]``.

    Computes the classic correlation ratio (eta^2): the fraction of total
    subscriber-location variance explained by the interest clusters.
    Near 0 = locations independent of interests (workload sets #2-ish and
    #3); substantially positive = geographically concentrated interests
    (workload set #1).
    """
    rng = np.random.default_rng(seed)
    labels = _interest_labels(workload, num_clusters, rng)
    points = workload.subscriber_points
    overall_mean = points.mean(axis=0)
    total = float(((points - overall_mean) ** 2).sum())
    if total == 0.0:
        return 0.0
    between = 0.0
    for cluster in np.unique(labels):
        members = points[labels == cluster]
        between += len(members) * float(
            ((members.mean(axis=0) - overall_mean) ** 2).sum())
    return float(np.clip(between / total, 0.0, 1.0))


@dataclass(frozen=True)
class OverlapStats:
    """Sampled pairwise subscription overlap."""

    intersect_fraction: float   #: fraction of sampled pairs that intersect
    containment_fraction: float  #: fraction where one contains the other
    mean_jaccard: float          #: average volume-Jaccard of sampled pairs


def overlap_statistics(workload: Workload, *, samples: int = 2000,
                       seed: int = 0) -> OverlapStats:
    """Monte Carlo estimate of pairwise subscription overlap."""
    rng = np.random.default_rng(seed)
    subs = workload.subscriptions
    n = len(subs)
    if n < 2:
        return OverlapStats(0.0, 0.0, 0.0)
    first = rng.integers(0, n, size=samples)
    second = rng.integers(0, n, size=samples)
    keep = first != second
    first, second = first[keep], second[keep]

    lo = np.maximum(subs.lo[first], subs.lo[second])
    hi = np.minimum(subs.hi[first], subs.hi[second])
    widths = hi - lo
    intersects = (widths >= 0).all(axis=1)
    inter_volume = np.where(intersects,
                            np.prod(np.maximum(widths, 0.0), axis=1), 0.0)

    vol_a = subs.volumes()[first]
    vol_b = subs.volumes()[second]
    union_volume = vol_a + vol_b - inter_volume
    with np.errstate(divide="ignore", invalid="ignore"):
        jaccard = np.where(union_volume > 0, inter_volume / union_volume, 0.0)

    contains = ((subs.lo[first] <= subs.lo[second])
                & (subs.hi[second] <= subs.hi[first])).all(axis=1)
    contained = ((subs.lo[second] <= subs.lo[first])
                 & (subs.hi[first] <= subs.hi[second])).all(axis=1)

    return OverlapStats(
        intersect_fraction=float(intersects.mean()),
        containment_fraction=float((contains | contained).mean()),
        mean_jaccard=float(jaccard.mean()),
    )


def describe_workload(workload: Workload, *, seed: int = 0) -> dict[str, float]:
    """All diagnostics in one dictionary (used by the analysis example)."""
    overlap = overlap_statistics(workload, seed=seed)
    return {
        "subscribers": float(workload.num_subscribers),
        "brokers": float(workload.num_brokers),
        "popularity_skew": popularity_skew(workload, seed=seed),
        "broad_interest_fraction": broad_interest_fraction(workload),
        "interest_location_correlation":
            interest_location_correlation(workload, seed=seed),
        "pair_intersect_fraction": overlap.intersect_fraction,
        "pair_containment_fraction": overlap.containment_fraction,
        "pair_mean_jaccard": overlap.mean_jaccard,
    }
