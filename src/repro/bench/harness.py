"""The experiment harness: run (workload, algorithm) matrices, cache nothing.

All benchmark scripts go through :func:`run_algorithms`, so every figure
and table is produced the same way: build the problem, run each named
algorithm, validate, and report the paper's metrics.  Sizes are set per
benchmark (see ``benchmarks/conftest.py``) and printed with the results,
because the reproduction is shape-based, not absolute-number-based.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..core.problem import SAProblem
from ..core.registry import get_algorithm
from ..metrics.report import SolutionReport, evaluate_solution

__all__ = ["AlgorithmRun", "run_algorithms", "average_reports"]


@dataclass(frozen=True)
class AlgorithmRun:
    """One algorithm's solution and report on one problem."""

    name: str
    report: SolutionReport
    solution: object  # SASolution; kept loose to avoid heavy repr in benches


def run_algorithms(problem: SAProblem, names: Iterable[str],
                   kwargs: Mapping[str, Mapping[str, object]] | None = None,
                   ) -> list[AlgorithmRun]:
    """Run the named algorithms on one problem and evaluate each solution.

    ``kwargs`` optionally maps an algorithm name to extra keyword
    arguments (e.g. ``{"SLP1": {"seed": 3}}``).
    """
    kwargs = kwargs or {}
    runs = []
    for name in names:
        fn = get_algorithm(name)
        started = time.perf_counter()
        solution = fn(problem, **dict(kwargs.get(name, {})))
        elapsed = time.perf_counter() - started
        report = evaluate_solution(name, solution, runtime_seconds=elapsed)
        runs.append(AlgorithmRun(name=name, report=report, solution=solution))
    return runs


def average_reports(reports: Iterable[SolutionReport]) -> dict[str, float]:
    """Average the headline metrics of several reports (Figure 6 style).

    The paper averages each algorithm's metrics over the four workload
    set #1 variants before plotting the comparison triangles.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no reports to average")
    count = float(len(reports))
    return {
        "bandwidth": sum(r.bandwidth for r in reports) / count,
        "rms_delay": sum(r.rms_delay for r in reports) / count,
        "load_stdev": sum(r.load_stdev for r in reports) / count,
        "lbf": sum(r.lbf for r in reports) / count,
        "feasible_fraction": sum(1.0 for r in reports if r.feasible) / count,
    }
