"""The experiment harness: run (workload, algorithm) matrices, cache nothing.

All benchmark scripts go through :func:`run_algorithms`, so every figure
and table is produced the same way: build the problem, run each named
algorithm, validate, and report the paper's metrics.  Sizes are set per
benchmark (see ``benchmarks/conftest.py``) and printed with the results,
because the reproduction is shape-based, not absolute-number-based.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any

import numpy as np

from ..core.problem import SAProblem
from ..core.registry import get_algorithm
from ..metrics.report import SolutionReport, evaluate_solution
from ..perf.cache import geometry_cache
from ..perf.parallel import BenchCell, run_cells

__all__ = ["AlgorithmRun", "run_algorithms", "average_reports",
           "json_output_dir", "write_bench_json", "runs_payload",
           "run_metadata"]

#: Environment variable naming the directory machine-readable benchmark
#: results are written into; ``pytest benchmarks/ --json DIR`` sets it.
JSON_ENV_VAR = "REPRO_BENCH_JSON"


@dataclass(frozen=True)
class AlgorithmRun:
    """One algorithm's solution and report on one problem."""

    name: str
    report: SolutionReport
    solution: object  # SASolution; kept loose to avoid heavy repr in benches


def run_algorithms(problem: SAProblem, names: Iterable[str],
                   kwargs: Mapping[str, Mapping[str, object]] | None = None,
                   workers: int | None = None) -> list[AlgorithmRun]:
    """Run the named algorithms on one problem and evaluate each solution.

    ``kwargs`` optionally maps an algorithm name to extra keyword
    arguments (e.g. ``{"SLP1": {"seed": 3}}``).  ``workers`` > 1 fans
    the algorithms across a process pool (each algorithm is one cell of
    :func:`repro.perf.parallel.run_cells`); results are identical to the
    serial run because nothing random is shared between cells.
    """
    kwargs = kwargs or {}
    names = list(names)
    if workers is not None and workers > 1 and len(names) > 1:
        cells = [BenchCell(algorithm=name,
                           kwargs=tuple(sorted(dict(kwargs.get(name, {}))
                                               .items())))
                 for name in names]
        results = run_cells(problem, cells, workers=workers,
                            include_solutions=True)
        return [AlgorithmRun(name=res.algorithm, report=res.report,
                             solution=res.solution) for res in results]
    runs = []
    for name in names:
        fn = get_algorithm(name)
        # Reuse geometry (containment/volume) computations across the
        # pipeline stages of each run, exactly as SLP1/SLP do internally.
        with geometry_cache():
            started = time.perf_counter()
            solution = fn(problem, **dict(kwargs.get(name, {})))
            elapsed = time.perf_counter() - started
        report = evaluate_solution(name, solution, runtime_seconds=elapsed)
        runs.append(AlgorithmRun(name=name, report=report, solution=solution))
    return runs


def run_metadata() -> dict[str, Any]:
    """Provenance block stamped into every ``BENCH_*.json`` payload.

    Records what produced the numbers: the repo commit (``"unknown"``
    outside a git checkout), a UTC timestamp, and the host's
    platform/python/CPU identity — enough to interpret absolute
    runtimes when comparing payloads across machines.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        commit = "unknown"
    return {
        "git_commit": commit,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }


def json_output_dir() -> str | None:
    """Directory for ``BENCH_*.json`` results, or None when disabled.

    Enabled by ``pytest benchmarks/ --json DIR`` (or by exporting
    ``REPRO_BENCH_JSON=DIR`` directly).
    """
    return os.environ.get(JSON_ENV_VAR) or None


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays so ``json.dumps`` accepts bench payloads."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value).__name__}")


def write_bench_json(name: str, payload: Mapping[str, Any],
                     directory: str | None = None) -> str | None:
    """Write one benchmark's machine-readable result alongside its table.

    Emits ``BENCH_<name>.json`` into ``directory`` (default: the
    ``--json`` directory; no-op returning None when JSON output is off),
    so CI and scripts can consume benchmark runs without scraping the
    ASCII tables.
    """
    directory = directory if directory is not None else json_output_dir()
    if directory is None:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    body = dict(payload)
    body.setdefault("metadata", run_metadata())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(body, fh, indent=2, default=_jsonable)
        fh.write("\n")
    return path


def runs_payload(runs: Iterable[AlgorithmRun]) -> list[dict[str, Any]]:
    """Flatten algorithm runs into JSON-ready report rows."""
    return [run.report.as_row() for run in runs]


def average_reports(reports: Iterable[SolutionReport]) -> dict[str, float]:
    """Average the headline metrics of several reports (Figure 6 style).

    The paper averages each algorithm's metrics over the four workload
    set #1 variants before plotting the comparison triangles.
    """
    reports = list(reports)
    if not reports:
        raise ValueError("no reports to average")
    count = float(len(reports))
    return {
        "bandwidth": sum(r.bandwidth for r in reports) / count,
        "rms_delay": sum(r.rms_delay for r in reports) / count,
        "load_stdev": sum(r.load_stdev for r in reports) / count,
        "lbf": sum(r.lbf for r in reports) / count,
        "feasible_fraction": sum(1.0 for r in reports if r.feasible) / count,
    }
