"""ASCII table and series rendering for the benchmark harness.

Every benchmark regenerates a paper table or figure; these helpers print
the same rows/series in a terminal-friendly layout so the output can be
compared against the paper directly (see EXPERIMENTS.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "print_table", "format_series", "print_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if value is None:
        return "-"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as a boxed monospace table."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i])
                                 for i, c in enumerate(cells)) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts = []
    if title:
        parts.append(title)
    parts.extend([separator, line(list(headers)), separator])
    parts.extend(line(row) for row in rendered)
    parts.append(separator)
    return "\n".join(parts)


def print_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title=title))


def format_series(name: str, points: Iterable[tuple[object, object]]) -> str:
    """Render an (x, y) series as one labelled line per point."""
    lines = [f"series: {name}"]
    lines.extend(f"  {_cell(x):>12s}  {_cell(y)}" for x, y in points)
    return "\n".join(lines)


def print_series(name: str, points: Iterable[tuple[object, object]]) -> None:
    print()
    print(format_series(name, points))
