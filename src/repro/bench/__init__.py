"""Benchmark harness utilities shared by the ``benchmarks/`` scripts."""

from .harness import (
    AlgorithmRun,
    average_reports,
    json_output_dir,
    run_algorithms,
    runs_payload,
    write_bench_json,
)
from .tables import format_series, format_table, print_series, print_table

__all__ = [
    "AlgorithmRun",
    "run_algorithms",
    "average_reports",
    "json_output_dir",
    "write_bench_json",
    "runs_payload",
    "format_table",
    "print_table",
    "format_series",
    "print_series",
]
