"""Benchmark harness utilities shared by the ``benchmarks/`` scripts."""

from .harness import AlgorithmRun, average_reports, run_algorithms
from .tables import format_series, format_table, print_series, print_table

__all__ = [
    "AlgorithmRun",
    "run_algorithms",
    "average_reports",
    "format_table",
    "print_table",
    "format_series",
    "print_series",
]
