"""repro — Subscriber Assignment for Wide-Area Content-Based Publish/Subscribe.

A from-scratch reproduction of Yu, Agarwal, Yang (ICDE 2011): the SLP
algorithm (LP relaxation + randomized rounding + coreset sampling +
max-flow), the greedy algorithms Gr / Gr*, the single-criterion baselines,
the paper's three workload generators, and the full evaluation harness.

Quickstart::

    import numpy as np
    from repro import (GoogleGroupsConfig, generate_google_groups,
                       one_level_problem, slp1, offline_greedy,
                       evaluate_solution)

    workload = generate_google_groups(seed=7, config=GoogleGroupsConfig())
    problem = one_level_problem(workload)
    print(evaluate_solution("SLP1", slp1(problem, seed=1)))
    print(evaluate_solution("Gr*", offline_greedy(problem)))
"""

from .core import (
    ALGORITHMS,
    FilterAssignConfig,
    FilterGenConfig,
    SAParameters,
    SAProblem,
    SASolution,
    ValidationReport,
    algorithm_names,
    balance_assignment,
    closest_broker,
    filters_from_assignment,
    get_algorithm,
    offline_greedy,
    online_greedy,
    slp,
    slp1,
)
from .geometry import Rect, RectSet
from .metrics import (
    SolutionReport,
    evaluate_solution,
    load_boxplot,
    load_cdf,
    total_bandwidth,
)
from .network import (
    BrokerTree,
    build_hierarchical_tree,
    build_one_level_tree,
    default_world_regions,
)
from .pubsub import (
    BruteForceMatcher,
    Filter,
    GridMatcher,
    Matcher,
    PiecewiseUniformEvents,
    RTreeMatcher,
    UniformEvents,
    best_matcher,
    simulate_dissemination,
)
from .runtime import (
    BrokerOutage,
    DisseminationEngine,
    FaultPlan,
    GreedyFailover,
    ReplayConfig,
    RuntimeConfig,
    RuntimeResult,
    Telemetry,
    apply_fault_plan,
    replay_churn,
)
from .shard import (
    ShardPlan,
    ShardRun,
    plan_shards,
    replan_shards,
    run_dissemination,
    simulate_sharded,
)
from .workloads import (
    GoogleGroupsConfig,
    GridConfig,
    RssConfig,
    Workload,
    generate_clustered_shuffle,
    generate_google_groups,
    generate_grid,
    generate_rss,
    multilevel_problem,
    one_level_problem,
)

__version__ = "1.0.0"

__all__ = [
    "Rect", "RectSet",
    "BrokerTree", "build_one_level_tree", "build_hierarchical_tree",
    "default_world_regions",
    "Filter", "UniformEvents", "PiecewiseUniformEvents",
    "Matcher", "BruteForceMatcher", "GridMatcher", "RTreeMatcher",
    "best_matcher",
    "simulate_dissemination",
    "SAParameters", "SAProblem", "SASolution", "ValidationReport",
    "filters_from_assignment",
    "online_greedy", "offline_greedy", "closest_broker",
    "balance_assignment", "slp1", "slp",
    "FilterAssignConfig", "FilterGenConfig",
    "ALGORITHMS", "get_algorithm", "algorithm_names",
    "SolutionReport", "evaluate_solution", "total_bandwidth",
    "load_boxplot", "load_cdf",
    "DisseminationEngine", "RuntimeConfig", "RuntimeResult",
    "BrokerOutage", "FaultPlan", "GreedyFailover", "apply_fault_plan",
    "ReplayConfig", "replay_churn", "Telemetry",
    "ShardPlan", "ShardRun", "plan_shards", "replan_shards",
    "run_dissemination", "simulate_sharded",
    "Workload", "one_level_problem", "multilevel_problem",
    "GoogleGroupsConfig", "generate_google_groups",
    "RssConfig", "generate_rss", "GridConfig", "generate_grid",
    "generate_clustered_shuffle",
    "__version__",
]
