"""Table II — bandwidth comparison on workload sets #2 and #3.

Columns as in the paper: LP fractional, SLP1, Gr*, Gr¬l.

Expected shape: on the (topic-based) RSS workload Gr* can even undercut
the fractional bound computed on SLP1's candidate set; on the grid
workload all constraint-respecting algorithms land close together;
Gr¬l's number is meaningless as a yardstick (it ignores latency).
"""

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    one_level_wl,
    runs_for,
    scale_banner,
)

ALGOS = ["SLP1", "Gr*", "Gr-no-latency"]


def compute():
    rows = []
    for key, label in (("wl2", "#2 (RSS)"), ("wl3", "#3 (grid)")):
        problem = one_level_wl(key)
        runs = runs_for(("table2", key), problem, ALGOS, SLP_KWARGS)
        fractional = runs["SLP1"].solution.fractional_bandwidth
        rows.append([
            label,
            fractional,
            runs["SLP1"].report.bandwidth,
            runs["Gr*"].report.bandwidth,
            runs["Gr-no-latency"].report.bandwidth,
        ])
    return rows


def test_table2_bandwidth_wl23(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Table II: bandwidth comparison (workload sets #2 and #3) ==")
    emit(scale_banner())
    emit(format_table(
        ["workload set", "fractional", "SLP1", "Gr*", "Gr-no-latency"],
        rows))
    for row in rows:
        assert row[2] > 0 and row[3] > 0
