"""Matching-index bench — grid and R-tree vs the brute-force oracle.

Leaf brokers match every incoming event against their assigned
subscriptions, so ``match_points`` throughput bounds the dissemination
simulator and the runtime engine.  This bench times all three indexes
on one shared subscription set / event stream and **asserts exact
agreement** — the differential-oracle requirement from ``repro.verify``
— so a future speedup that changes results fails loudly here too.
"""

import time

import numpy as np

from _shared import SEED, emit, emit_json, format_table, scale_banner
from repro.geometry import Rect, RectSet
from repro.pubsub import BruteForceMatcher, GridMatcher, RTreeMatcher

NUM_SUBSCRIPTIONS = 4000
NUM_EVENTS = 5000
DOMAIN = Rect([0.0, 0.0], [100.0, 100.0])


def compute():
    rng = np.random.default_rng(SEED)
    lo = rng.uniform(0.0, 95.0, size=(NUM_SUBSCRIPTIONS, 2))
    hi = np.minimum(lo + rng.uniform(0.2, 15.0,
                                     size=(NUM_SUBSCRIPTIONS, 2)), 100.0)
    subscriptions = RectSet(lo, hi)
    events = rng.uniform(-2.0, 102.0, size=(NUM_EVENTS, 2))

    indexes = [
        ("brute", BruteForceMatcher(subscriptions)),
        ("grid", GridMatcher(subscriptions, DOMAIN, resolution=32)),
        ("rtree", RTreeMatcher(subscriptions)),
    ]
    rows = []
    oracle = None
    for name, matcher in indexes:
        started = time.perf_counter()
        matrix = matcher.match_points(events)
        wall = time.perf_counter() - started
        if oracle is None:
            oracle = matrix
        else:
            assert np.array_equal(matrix, oracle), \
                f"{name} disagrees with the brute-force oracle"
        rows.append([name, round(wall * 1e3, 1),
                     round(NUM_EVENTS / wall, 0),
                     int(matrix.sum())])
    return rows


def test_matching_indexes(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Matching indexes: brute force vs grid vs R-tree "
         "(shared stream, exact agreement asserted) ==")
    emit(scale_banner(f"; {NUM_SUBSCRIPTIONS} subscriptions, "
                      f"{NUM_EVENTS} events"))
    headers = ["index", "match_points ms", "events/s", "matches"]
    emit(format_table(headers, rows))
    emit_json("matching_indexes", headers, rows)
