"""Figure 7(c) — broker-load boxplots per algorithm, (IS:H, BI:H).

The paper shows five-number summaries of broker loads against the
dashed beta / beta_max capacity lines.

Expected shape: Balance best; Closest good (brokers track subscribers);
Closest¬b can overload; SLP1/Gr* within the caps; Gr struggles.
"""

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    one_level,
    runs_for,
    scale_banner,
)
from repro.metrics import load_boxplot

VARIANT = ("H", "H")
ALGOS = ["SLP1", "Gr", "Gr*", "Gr-no-latency", "Closest",
         "Closest-no-balance", "Balance"]


def compute():
    problem = one_level(VARIANT)
    runs = runs_for(("fig6", VARIANT), problem, ALGOS, SLP_KWARGS)
    rows = []
    caps = None
    for name in ALGOS:
        stats = load_boxplot(problem, runs[name].solution.assignment)
        caps = (stats.desired_cap, stats.maximum_cap)
        rows.append([name, stats.minimum, stats.q1, stats.median,
                     stats.q3, stats.maximum])
    return rows, caps


def test_fig07c_load_boxplot(benchmark):
    rows, caps = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 7(c): broker load distribution, (IS:H, BI:H) ==")
    emit(scale_banner())
    emit(f"dashed lines: desired cap (beta) = {caps[0]:.0f}, "
         f"maximum cap (beta_max) = {caps[1]:.0f}")
    emit(format_table(["algorithm", "min", "q1", "median", "q3", "max"],
                      rows))

    by = {row[0]: row for row in rows}
    # Balance has the least spread of all.
    balance_spread = by["Balance"][5] - by["Balance"][1]
    assert balance_spread <= by["Gr"][5] - by["Gr"][1]
    # SLP1 and Gr* stay within the maximum cap.
    assert by["SLP1"][5] <= caps[1] + 1e-6
    assert by["Gr*"][5] <= caps[1] + 1e-6
