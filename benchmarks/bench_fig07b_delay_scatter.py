"""Figure 7(b) — delay versus shortest-path distance, (IS:H, BI:H).

The paper scatter-plots per-subscriber delay against the shortest-path
latency for SLP1, Gr*, Gr¬l, and Closest¬b.  This bench prints the
distribution per algorithm (deciles of delay) plus the fraction of
subscribers violating the 0.3 bound.

Expected shape: SLP1 and Gr* bound delay at 0.3; Closest¬b has the
smallest delays; Gr¬l blows up — especially for subscribers near the
publisher (small shortest-path distance, huge relative detour).
"""

import numpy as np

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    one_level,
    runs_for,
    scale_banner,
)
from repro.metrics import delay_scatter

VARIANT = ("H", "H")
ALGOS = ["SLP1", "Gr*", "Gr-no-latency", "Closest-no-balance"]


def compute():
    problem = one_level(VARIANT)
    runs = runs_for(("fig6", VARIANT), problem, ALGOS, SLP_KWARGS)
    rows = []
    near_violations = {}
    for name in ALGOS:
        scatter = delay_scatter(problem, runs[name].solution.assignment)
        delays = scatter[:, 1]
        deciles = np.percentile(delays, [50, 90, 99])
        violation = float((delays > problem.params.max_delay + 1e-6).mean())
        rows.append([name, float(delays.min()), *deciles.tolist(),
                     float(delays.max()), violation])
        near = scatter[:, 0] < np.percentile(scatter[:, 0], 25)
        near_violations[name] = float(
            (delays[near] > problem.params.max_delay + 1e-6).mean())
    return rows, near_violations


def test_fig07b_delay_scatter(benchmark):
    rows, near = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 7(b): delay vs shortest-path distance, (IS:H, BI:H) ==")
    emit(scale_banner())
    emit(format_table(
        ["algorithm", "min", "p50", "p90", "p99", "max", "viol>0.3"], rows))
    emit(f"violations among nearest-quartile subscribers: "
         + ", ".join(f"{k}={v:.2f}" for k, v in near.items()))

    by = {row[0]: row for row in rows}
    assert by["SLP1"][6] == 0.0
    assert by["Gr*"][6] == 0.0
    assert by["Gr-no-latency"][6] > 0.1
    # Subscribers near the publisher are especially vulnerable under Gr¬l.
    assert near["Gr-no-latency"] >= near["SLP1"]
