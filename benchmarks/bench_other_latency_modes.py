""""Other Results" — last-hop latency constraints instead of path latency.

Paper Section II: "Our approach can be extended to handle other form[s]
of latency constraints, such as one that bounds only the last-hop
latency"; Section VI's "Other Results" says such runs reaffirm SLP's
robustness.  This bench runs SLP1 and Gr* under both modes on the same
workload and reports the trade: last-hop mode ignores the tree descent,
so it admits different candidate sets and typically different
bandwidth/delay trade-offs.
"""

from _shared import (
    BROKERS_ONE_LEVEL,
    SEED,
    SUBSCRIBERS,
    emit,
    format_table,
    scale_banner,
    wl1,
)
from repro import one_level_problem
from repro.bench import run_algorithms

VARIANT = ("H", "L")
ALGOS = ["SLP1", "Gr*"]


def compute():
    workload = wl1(VARIANT)
    rows = []
    for mode in ("path", "last_hop"):
        problem = one_level_problem(workload)
        if mode == "last_hop":
            from repro import SAParameters, SAProblem
            params = SAParameters(alpha=3, max_delay=0.3,
                                  beta=workload.default_beta,
                                  beta_max=workload.default_beta_max,
                                  latency_mode="last_hop")
            problem = SAProblem(problem.tree, problem.subscriber_points,
                                problem.subscriptions, params)
        runs = {r.name: r for r in run_algorithms(
            problem, ALGOS, kwargs={"SLP1": {"seed": 1}})}
        for name in ALGOS:
            report = runs[name].report
            rows.append([mode, name, report.bandwidth, report.rms_delay,
                         report.lbf, report.feasible])
    return rows


def test_other_latency_modes(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Other results: path vs last-hop latency constraints "
         "(IS:H, BI:L) ==")
    emit(scale_banner())
    emit(format_table(
        ["latency mode", "algorithm", "bandwidth", "rms_delay", "lbf",
         "feasible"], rows))
    assert all(row[2] > 0 for row in rows)
