#!/usr/bin/env python
"""Throughput curve of the vectorized event plane (Fig-7 workload).

Publishes the same seeded event stream through every event path and
measures events/sec: the batch simulator at chunk sizes 1 (scalar
stepping with the brute-force matcher) through 2048 (vectorized with
the heuristic index), and the discrete-event runtime with scalar heap
stepping vs epoch-mode matrix steps.  Before timing counts, the bench
*asserts* sha256 bit-identity of every batched result against its
scalar twin — a fast path that changes answers is a bug, not a win.

Emits a ``BENCH_event_plane.json`` payload in the profile-payload shape
(``total_seconds`` / ``calibration_seconds`` / ``stages``) so the
perf-regression gate (:func:`repro.perf.regression.check_regression`)
can compare runs against the committed baseline::

    PYTHONPATH=src python benchmarks/bench_event_plane.py \
        --json benchmarks/baselines/BENCH_event_plane.json    # record
    PYTHONPATH=src python benchmarks/bench_event_plane.py \
        --check-against benchmarks/baselines/BENCH_event_plane.json

Exit codes: 2 = bit-identity violated, 3 = perf regression vs the
baseline, 4 = over ``--time-budget``, 5 = speedup under
``--min-speedup``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time

import numpy as np

from repro import (
    BruteForceMatcher,
    DisseminationEngine,
    GoogleGroupsConfig,
    RuntimeConfig,
    UniformEvents,
    generate_google_groups,
    get_algorithm,
    one_level_problem,
    simulate_dissemination,
)
from repro.bench.harness import run_metadata
from repro.bench.tables import format_table
from repro.perf.regression import calibrate, check_regression

SUBSCRIBERS = 1500
BROKERS = 16
SEED = 7
ALGORITHM = "Gr*"
DEFAULT_EVENTS = 6000
CHUNK_SIZES = (64, 512, 2048)
EPOCH_BATCH = 512


def sha(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def build_instance():
    config = GoogleGroupsConfig(num_subscribers=SUBSCRIBERS,
                                num_brokers=BROKERS,
                                interest_skew="H", broad_interests="L")
    workload = generate_google_groups(SEED, config)
    problem = one_level_problem(workload)
    solution = get_algorithm(ALGORITHM)(problem)
    return workload, problem, solution


def run_simulation(problem, solution, distribution, events, chunk, matcher):
    started = time.perf_counter()
    result = simulate_dissemination(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, distribution, np.random.default_rng(SEED),
        num_events=events, chunk_size=chunk,
        subscriber_points=problem.subscriber_points, matcher=matcher)
    return time.perf_counter() - started, result


def run_runtime(problem, solution, distribution, events, epoch_batch):
    engine = DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions,
        config=RuntimeConfig(epoch_batch=epoch_batch),
        subscriber_points=problem.subscriber_points)
    started = time.perf_counter()
    result = engine.run(distribution, np.random.default_rng(SEED), events)
    return time.perf_counter() - started, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the BENCH_event_plane payload here")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="compare against a committed payload; exit 3 "
                             "on regression")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed normalized growth per stage")
    parser.add_argument("--min-speedup", type=float, default=4.0,
                        help="required scalar/batched throughput ratio for "
                             "both planes (exit 5 when missed)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="exit 4 when the sweep exceeds this wall-clock")
    args = parser.parse_args(argv)

    calibration = calibrate()
    workload, problem, solution = build_instance()
    distribution = UniformEvents(workload.event_domain)
    events = args.events

    stages = []
    sweep_started = time.perf_counter()

    def record(name, seconds, extra=None):
        stage = {"name": name, "calls": 1, "seconds": seconds,
                 "events_per_sec": events / seconds if seconds else 0.0}
        stage.update(extra or {})
        stages.append(stage)
        print(f"{name}: {seconds:.2f}s "
              f"({stage['events_per_sec']:,.0f} events/s)", flush=True)
        return stage

    # -- simulator plane ----------------------------------------------------
    brute = BruteForceMatcher(problem.subscriptions)
    scalar_s, scalar_result = run_simulation(
        problem, solution, distribution, events, 1, brute)
    scalar_sha = sha(scalar_result.to_dict())
    record("sim-scalar", scalar_s, {"chunk_size": 1, "matcher": "brute"})

    sim_best = None
    for chunk in CHUNK_SIZES:
        seconds, result = run_simulation(
            problem, solution, distribution, events, chunk, None)
        if sha(result.to_dict()) != scalar_sha:
            print(f"error: sim-chunk-{chunk} is not bit-identical to the "
                  f"scalar simulation", file=sys.stderr)
            return 2
        record(f"sim-chunk-{chunk}", seconds,
               {"chunk_size": chunk, "matcher": "best"})
        sim_best = min(sim_best or seconds, seconds)
    sim_speedup = scalar_s / sim_best

    # -- runtime plane ------------------------------------------------------
    rt_scalar_s, rt_scalar = run_runtime(
        problem, solution, distribution, events, 0)
    record("runtime-scalar", rt_scalar_s, {"epoch_batch": 0})
    rt_epoch_s, rt_epoch = run_runtime(
        problem, solution, distribution, events, EPOCH_BATCH)
    if sha(rt_epoch.to_dict()) != sha(rt_scalar.to_dict()):
        print("error: epoch-mode runtime is not bit-identical to scalar "
              "heap stepping", file=sys.stderr)
        return 2
    record(f"runtime-epoch-{EPOCH_BATCH}", rt_epoch_s,
           {"epoch_batch": EPOCH_BATCH})
    runtime_speedup = rt_scalar_s / rt_epoch_s
    sweep_elapsed = time.perf_counter() - sweep_started

    payload = {
        "benchmark": "event_plane",
        "workload": "googlegroups",
        "algorithm": ALGORITHM,
        "subscribers": SUBSCRIBERS,
        "brokers": BROKERS,
        "seed": SEED,
        "events": events,
        "sim_speedup": sim_speedup,
        "runtime_speedup": runtime_speedup,
        "bit_identical": True,
        "total_seconds": sum(s["seconds"] for s in stages),
        "calibration_seconds": calibration,
        "stages": stages,
        "metadata": run_metadata(),
    }

    print(format_table(
        ["stage", "seconds", "normalized", "events/s"],
        [[s["name"], round(s["seconds"], 3),
          round(s["seconds"] / calibration, 1),
          f"{s['events_per_sec']:,.0f}"] for s in stages]))
    print(f"simulator speedup: {sim_speedup:.1f}x, "
          f"runtime speedup: {runtime_speedup:.1f}x "
          f"(all batched paths sha256-identical to scalar)")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"payload written to {args.json}")

    status = 0
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regression = check_regression(payload, baseline,
                                      tolerance=args.tolerance)
        print(format_table(
            ["stage", "baseline(norm)", "current(norm)", "ratio", "verdict"],
            [comparison.as_row() for comparison in regression.comparisons]))
        if not regression.ok:
            print("perf regression: "
                  + ", ".join(regression.regressed_stages), file=sys.stderr)
            status = 3

    if args.time_budget is not None and sweep_elapsed > args.time_budget:
        print(f"error: sweep took {sweep_elapsed:.1f}s, over the "
              f"--time-budget gate ({args.time_budget:.1f}s)",
              file=sys.stderr)
        status = 4

    if min(sim_speedup, runtime_speedup) < args.min_speedup:
        print(f"error: speedup below the --min-speedup gate "
              f"({args.min_speedup:.1f}x): simulator {sim_speedup:.1f}x, "
              f"runtime {runtime_speedup:.1f}x", file=sys.stderr)
        status = 5
    return status


if __name__ == "__main__":
    sys.exit(main())
