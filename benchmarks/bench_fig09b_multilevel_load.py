"""Figure 9(b) — multi-level broker loads on (IS:L, BI:H), tight vs loose.

Expected shape (paper): SLP satisfies the load-balance constraints under
both settings; Gr*, despite best effort, cannot enforce them under the
tight latency setting (a noticeable fraction of brokers overloaded).
"""

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    multi_level,
    runs_for,
    scale_banner,
)
from repro.metrics import load_boxplot, overloaded_fraction

VARIANT = ("L", "H")
ALGOS = ["SLP", "Gr*"]


def compute():
    rows = []
    for setting in ("tight", "loose"):
        problem = multi_level(VARIANT, setting)
        runs = runs_for(("fig9", VARIANT, setting), problem, ALGOS,
                        SLP_KWARGS)
        for name in ALGOS:
            solution = runs[name].solution
            stats = load_boxplot(problem, solution.assignment)
            rows.append([
                setting, name, stats.minimum, stats.median, stats.maximum,
                stats.maximum_cap,
                overloaded_fraction(problem, solution.assignment),
                runs[name].report.lbf,
            ])
    return rows


def test_fig09b_multilevel_load(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 9(b): multi-level broker loads, (IS:L, BI:H) ==")
    emit(scale_banner())
    emit(format_table(
        ["setting", "algorithm", "min", "median", "max", "cap(beta_max)",
         "overloaded_fraction", "lbf"], rows))

    slp_rows = [r for r in rows if r[1] == "SLP"]
    # SLP keeps its overloaded fraction at or below Gr*'s in each setting.
    for setting in ("tight", "loose"):
        slp = next(r for r in rows if r[0] == setting and r[1] == "SLP")
        gr = next(r for r in rows if r[0] == setting and r[1] == "Gr*")
        assert slp[6] <= gr[6] + 1e-9
