"""Figure 9(a) — multi-level bandwidth: SLP vs Gr*, tight vs loose.

Expected shape (paper): Gr* often achieves slightly lower bandwidth,
but the tight-setting comparison is misleading because Gr* fails the
load-balance constraints there while SLP satisfies them.
"""

from _shared import (
    SLP_KWARGS,
    VARIANTS,
    emit,
    format_table,
    multi_level,
    runs_for,
    scale_banner,
    variant_name,
)

ALGOS = ["SLP", "Gr*"]


def compute():
    rows = []
    for setting in ("tight", "loose"):
        for variant in VARIANTS:
            problem = multi_level(variant, setting)
            runs = runs_for(("fig9", variant, setting), problem, ALGOS,
                            SLP_KWARGS)
            rows.append([
                setting, variant_name(*variant),
                runs["SLP"].report.bandwidth,
                runs["Gr*"].report.bandwidth,
                runs["SLP"].report.feasible,
                runs["Gr*"].report.feasible,
            ])
    return rows


def test_fig09a_multilevel_bandwidth(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 9(a): multi-level bandwidth, SLP vs Gr*, "
         "tight vs loose latency ==")
    emit(scale_banner())
    emit(format_table(
        ["setting", "workload", "SLP", "Gr*", "SLP feasible",
         "Gr* feasible"], rows))
    assert all(row[2] > 0 and row[3] > 0 for row in rows)
