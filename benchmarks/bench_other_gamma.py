""""Other Results" — the multi-level recursion threshold gamma.

The technical-report version of the paper tunes a threshold ``gamma``
for the multi-level algorithm; in this library ``gamma`` collapses the
recursion for subscriber subsets of at most ``gamma`` members (one SLP1
over the subtree's leaves instead of a per-level split).  This bench
sweeps gamma and reports the quality/cost trade: large gamma behaves
like flat SLP1 over all leaves (better-informed, slower per call),
gamma = 0 is the pure top-down recursion.
"""

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    multi_level,
    scale_banner,
)
from repro import slp
from repro.metrics import evaluate_solution

VARIANT = ("H", "L")
GAMMAS = [0, 200, 10_000_000]


def compute():
    problem = multi_level(VARIANT, "loose")
    rows = []
    for gamma in GAMMAS:
        solution = slp(problem, seed=1, gamma=gamma)
        report = evaluate_solution(f"gamma={gamma}", solution)
        rows.append([gamma, report.bandwidth, report.lbf, report.feasible,
                     solution.info["slp1_invocations"],
                     solution.info["runtime_seconds"]])
    return rows


def test_other_gamma(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Other results: multi-level recursion threshold gamma ==")
    emit(scale_banner())
    emit(format_table(
        ["gamma", "bandwidth", "lbf", "feasible", "slp1_invocations",
         "runtime_s"], rows))
    # gamma = infinity collapses to a single leaf-level invocation.
    assert rows[-1][4] == 1
    assert all(row[1] > 0 for row in rows)
