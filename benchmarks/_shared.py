"""Shared infrastructure for the paper-figure benchmarks.

Every benchmark regenerates one table or figure of the paper at laptop
scale (sizes below, printed with each result).  Problems and solutions
are cached per pytest session so figures sharing the same runs (e.g.
Figure 6 and Table I) do not recompute them; the per-benchmark timing
therefore reflects the *first* computation of each run.

Output is written through :func:`emit`, which bypasses pytest's capture
so the regenerated tables appear in ``pytest benchmarks/`` output.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro import (
    GoogleGroupsConfig,
    GridConfig,
    RssConfig,
    generate_google_groups,
    generate_grid,
    generate_rss,
    multilevel_problem,
    one_level_problem,
)
from repro.bench import (
    format_series,
    format_table,
    run_algorithms,
    write_bench_json,
)
from repro.workloads import VARIANTS, variant_name

# ---------------------------------------------------------------------------
# Scale: the paper uses 100k subscribers / 100 brokers (one level) and
# 200 brokers (multi level).  The reproduction is shape-based; these
# laptop-scale defaults keep the full benchmark suite to minutes.
SUBSCRIBERS = int(os.environ.get("REPRO_BENCH_SUBSCRIBERS", 1500))
BROKERS_ONE_LEVEL = int(os.environ.get("REPRO_BENCH_BROKERS", 16))
BROKERS_MULTI = int(os.environ.get("REPRO_BENCH_BROKERS_MULTI", 32))
MAX_OUT_DEGREE = 8
SEED = 7

#: Multi-level constraint settings (paper: tight D=0.2 with relaxed lbf,
#: loose D=1.0 with tight lbf; lbf values adapted to this scale).
TIGHT = {"max_delay": 0.2, "beta": 4.0, "beta_max": 5.0}
LOOSE = {"max_delay": 1.0, "beta": 1.3, "beta_max": 1.5}

_workloads: dict = {}
_problems: dict = {}
_runs: dict = {}


def emit(text: str) -> None:
    """Print benchmark output (capture is off via ``-s`` in addopts)."""
    print(text, flush=True)


def emit_json(name: str, headers, rows, **extra) -> None:
    """Write a bench's rows as ``BENCH_<name>.json`` when ``--json`` is on.

    The payload carries the scale knobs so results from different
    machines/settings stay comparable.
    """
    path = write_bench_json(name, {
        "benchmark": name,
        "scale": {"subscribers": SUBSCRIBERS,
                  "brokers_one_level": BROKERS_ONE_LEVEL,
                  "brokers_multi": BROKERS_MULTI,
                  "seed": SEED},
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        **extra,
    })
    if path:
        emit(f"[json results -> {path}]")


def scale_banner(extra: str = "") -> str:
    return (f"[scale: {SUBSCRIBERS} subscribers, "
            f"{BROKERS_ONE_LEVEL} brokers one-level / "
            f"{BROKERS_MULTI} multi-level{extra}]")


def wl1(variant: tuple[str, str]):
    """Workload set #1 instance for an (IS, BI) variant (cached)."""
    key = ("wl1", variant)
    if key not in _workloads:
        config = GoogleGroupsConfig(
            num_subscribers=SUBSCRIBERS, num_brokers=BROKERS_ONE_LEVEL,
            interest_skew=variant[0], broad_interests=variant[1])
        _workloads[key] = generate_google_groups(SEED, config)
    return _workloads[key]


def wl1_multi(variant: tuple[str, str]):
    key = ("wl1m", variant)
    if key not in _workloads:
        config = GoogleGroupsConfig(
            num_subscribers=SUBSCRIBERS, num_brokers=BROKERS_MULTI,
            interest_skew=variant[0], broad_interests=variant[1])
        _workloads[key] = generate_google_groups(SEED, config)
    return _workloads[key]


def wl2():
    if "wl2" not in _workloads:
        config = RssConfig(num_subscribers=SUBSCRIBERS,
                           num_brokers=BROKERS_ONE_LEVEL)
        _workloads["wl2"] = generate_rss(SEED, config)
    return _workloads["wl2"]


def wl3():
    if "wl3" not in _workloads:
        config = GridConfig(num_subscribers=SUBSCRIBERS,
                            num_brokers=BROKERS_ONE_LEVEL)
        _workloads["wl3"] = generate_grid(SEED, config)
    return _workloads["wl3"]


def one_level(variant: tuple[str, str], **overrides):
    key = ("p1", variant, tuple(sorted(overrides.items())))
    if key not in _problems:
        _problems[key] = one_level_problem(wl1(variant), **overrides)
    return _problems[key]


def one_level_wl(workload_key: str, **overrides):
    factory = {"wl2": wl2, "wl3": wl3}[workload_key]
    key = ("p1w", workload_key, tuple(sorted(overrides.items())))
    if key not in _problems:
        _problems[key] = one_level_problem(factory(), **overrides)
    return _problems[key]


def multi_level(variant: tuple[str, str], setting: str):
    params = TIGHT if setting == "tight" else LOOSE
    key = ("pm", variant, setting)
    if key not in _problems:
        _problems[key] = multilevel_problem(
            wl1_multi(variant), max_out_degree=MAX_OUT_DEGREE, seed=SEED,
            **params)
    return _problems[key]


def runs_for(problem_key: str, problem, names, kwargs=None):
    """Session-cached algorithm runs for one problem."""
    results = {}
    missing = []
    for name in names:
        cache_key = (problem_key, name)
        if cache_key in _runs:
            results[name] = _runs[cache_key]
        else:
            missing.append(name)
    if missing:
        for run in run_algorithms(problem, missing, kwargs=kwargs):
            _runs[(problem_key, run.name)] = run
            results[run.name] = run
    return results


SLP_KWARGS = {"SLP1": {"seed": 1}, "SLP": {"seed": 1}}

__all__ = [
    "VARIANTS", "variant_name", "SUBSCRIBERS", "BROKERS_ONE_LEVEL",
    "BROKERS_MULTI", "TIGHT", "LOOSE", "SLP_KWARGS",
    "emit", "emit_json", "scale_banner", "format_table", "format_series",
    "wl1", "wl2", "wl3", "wl1_multi",
    "one_level", "one_level_wl", "multi_level", "runs_for",
]
