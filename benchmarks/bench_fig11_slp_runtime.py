"""Figure 11 — running time of SLP versus the number of subscribers.

The paper reports wall-clock hours for 100k-1M subscribers on a
multi-level network (CPLEX 10, 2009-era desktop); here the sweep is
laptop-scale and the point is the growth trend, which should be mildly
super-linear (coverage checks dominate; the LP size is bounded by the
coreset, not by m).

Each size runs under the stage profiler, so the JSON payload carries a
per-stage breakdown (lp_solve / filtergen / assign / ...) alongside the
total — the same shape ``python -m repro profile`` emits.
"""

import time

from _shared import (
    BROKERS_MULTI,
    MAX_OUT_DEGREE,
    SEED,
    emit,
    emit_json,
    format_series,
    scale_banner,
)
from repro import GoogleGroupsConfig, generate_google_groups, multilevel_problem, slp
from repro.perf.profiler import profiled

SIZES = [250, 500, 1000, 2000]


def compute():
    points = []
    profiles = []
    for m in SIZES:
        config = GoogleGroupsConfig(num_subscribers=m,
                                    num_brokers=BROKERS_MULTI,
                                    interest_skew="H", broad_interests="L")
        workload = generate_google_groups(SEED, config)
        problem = multilevel_problem(workload,
                                     max_out_degree=MAX_OUT_DEGREE,
                                     seed=SEED)
        with profiled() as profiler:
            started = time.perf_counter()
            solution = slp(problem, seed=1)
            elapsed = time.perf_counter() - started
        points.append((m, elapsed))
        profiles.append({
            "subscribers": m,
            "total_seconds": elapsed,
            "stages": [stage.as_dict()
                       for stage in sorted(profiler.stats().values(),
                                           key=lambda s: -s.seconds)],
        })
        assert solution.validate().all_assigned
    return points, profiles


def test_fig11_slp_runtime(benchmark):
    points, profiles = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 11: running time of SLP (multi-level network) ==")
    emit(scale_banner())
    emit(format_series("SLP wall-clock seconds vs #subscribers", points))
    emit_json("fig11_slp_runtime", ["subscribers", "seconds"],
              [[m, seconds] for m, seconds in points],
              profiles=profiles)
    assert all(seconds > 0 for _m, seconds in points)
