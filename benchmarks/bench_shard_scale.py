#!/usr/bin/env python
"""Shard-scale throughput of the event plane (Fig-7 workload).

Runs the same seeded epoch-mode dissemination through ``shards=1`` and
sharded configurations, asserting sha256 bit-identity of every merged
result against the single-process payload before any timing counts —
a sharding that changes answers is a bug, not a win.

Two speedups are recorded per shard count:

* ``wall`` — end-to-end elapsed time.  On a single-core host the
  worker processes serialize, so wall speedup cannot exceed 1; the
  wall gate therefore only arms when the host has >= 2 cores.
* ``critical`` — single-process elapsed over the *slowest shard's*
  compute time (the parallel critical path).  This is the speedup a
  host with >= ``shards`` cores realizes, measured even on one core
  because every shard's work is timed independently.  The committed
  baseline records ``cpu_count`` so readers can interpret the wall
  numbers.

Emits a ``BENCH_shard_scale.json`` payload in the profile-payload
shape (``total_seconds`` / ``calibration_seconds`` / ``stages``) for
the perf-regression gate::

    PYTHONPATH=src python benchmarks/bench_shard_scale.py \
        --json benchmarks/baselines/BENCH_shard_scale.json    # record
    PYTHONPATH=src python benchmarks/bench_shard_scale.py \
        --check-against benchmarks/baselines/BENCH_shard_scale.json

Exit codes: 2 = bit-identity violated, 3 = perf regression vs the
baseline, 4 = over ``--time-budget``, 5 = speedup under
``--min-speedup``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

import numpy as np

from repro import (
    GoogleGroupsConfig,
    RuntimeConfig,
    UniformEvents,
    generate_google_groups,
    get_algorithm,
    one_level_problem,
    run_dissemination,
)
from repro.bench.harness import run_metadata
from repro.bench.tables import format_table
from repro.perf.regression import calibrate, check_regression

SUBSCRIBERS = 1500
BROKERS = 16
SEED = 7
ALGORITHM = "Gr*"
DEFAULT_EVENTS = 6000
SHARD_COUNTS = (2, 4)
EPOCH_BATCH = 512


def sha(payload: dict) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def build_instance():
    config = GoogleGroupsConfig(num_subscribers=SUBSCRIBERS,
                                num_brokers=BROKERS,
                                interest_skew="H", broad_interests="L")
    workload = generate_google_groups(SEED, config)
    problem = one_level_problem(workload)
    solution = get_algorithm(ALGORITHM)(problem)
    return workload, problem, solution


def run_sharded(problem, solution, distribution, events, shards):
    started = time.perf_counter()
    shard_run = run_dissemination(
        problem, distribution, np.random.default_rng(SEED), events,
        config=RuntimeConfig(epoch_batch=EPOCH_BATCH), shards=shards,
        filters=solution.filters, assignment=solution.assignment)
    return time.perf_counter() - started, shard_run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=DEFAULT_EVENTS)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the BENCH_shard_scale payload here")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="compare against a committed payload; exit 3 "
                             "on regression")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed normalized growth per stage")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required critical-path speedup at the highest "
                             "shard count (exit 5 when missed); the wall "
                             "gate arms at >= 2 cores")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="exit 4 when the sweep exceeds this wall-clock")
    args = parser.parse_args(argv)

    calibration = calibrate()
    workload, problem, solution = build_instance()
    distribution = UniformEvents(workload.event_domain)
    events = args.events
    cpu_count = os.cpu_count() or 1

    stages = []
    sweep_started = time.perf_counter()

    def record(name, seconds, extra=None):
        stage = {"name": name, "calls": 1, "seconds": seconds,
                 "events_per_sec": events / seconds if seconds else 0.0}
        stage.update(extra or {})
        stages.append(stage)
        print(f"{name}: {seconds:.2f}s "
              f"({stage['events_per_sec']:,.0f} events/s)", flush=True)
        return stage

    single_s, single = run_sharded(problem, solution, distribution, events, 1)
    single_sha = sha(single.result.to_dict())
    record("shard-1", single_s, {"shards": 1, "critical_seconds": single_s})

    speedups = {}
    for shards in SHARD_COUNTS:
        wall_s, shard_run = run_sharded(problem, solution, distribution,
                                        events, shards)
        if sha(shard_run.result.to_dict()) != single_sha:
            print(f"error: shard-{shards} is not bit-identical to the "
                  f"single-process run", file=sys.stderr)
            return 2
        critical = max(shard_run.shard_seconds)
        record(f"shard-{shards}", wall_s,
               {"shards": shards, "workers": shard_run.workers,
                "critical_seconds": critical,
                "shard_seconds": list(shard_run.shard_seconds)})
        speedups[shards] = {"wall": single_s / wall_s,
                            "critical": single_s / critical}
        print(f"  wall {speedups[shards]['wall']:.2f}x, "
              f"critical-path {speedups[shards]['critical']:.2f}x")
    sweep_elapsed = time.perf_counter() - sweep_started

    top = max(SHARD_COUNTS)
    payload = {
        "benchmark": "shard_scale",
        "workload": "googlegroups",
        "algorithm": ALGORITHM,
        "subscribers": SUBSCRIBERS,
        "brokers": BROKERS,
        "seed": SEED,
        "events": events,
        "epoch_batch": EPOCH_BATCH,
        "cpu_count": cpu_count,
        "speedups": {str(s): v for s, v in sorted(speedups.items())},
        "critical_speedup": speedups[top]["critical"],
        "wall_speedup": speedups[top]["wall"],
        "bit_identical": True,
        "total_seconds": sum(s["seconds"] for s in stages),
        "calibration_seconds": calibration,
        "stages": stages,
        "metadata": run_metadata(),
    }

    print(format_table(
        ["stage", "wall(s)", "critical(s)", "normalized", "events/s"],
        [[s["name"], round(s["seconds"], 3),
          round(s["critical_seconds"], 3),
          round(s["seconds"] / calibration, 1),
          f"{s['events_per_sec']:,.0f}"] for s in stages]))
    print(f"critical-path speedup at {top} shards: "
          f"{payload['critical_speedup']:.2f}x "
          f"(wall {payload['wall_speedup']:.2f}x on {cpu_count} cores; "
          f"all sharded payloads sha256-identical to shards=1)")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"payload written to {args.json}")

    status = 0
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regression = check_regression(payload, baseline,
                                      tolerance=args.tolerance)
        print(format_table(
            ["stage", "baseline(norm)", "current(norm)", "ratio", "verdict"],
            [comparison.as_row() for comparison in regression.comparisons]))
        if not regression.ok:
            print("perf regression: "
                  + ", ".join(regression.regressed_stages), file=sys.stderr)
            status = 3

    if args.time_budget is not None and sweep_elapsed > args.time_budget:
        print(f"error: sweep took {sweep_elapsed:.1f}s, over the "
              f"--time-budget gate ({args.time_budget:.1f}s)",
              file=sys.stderr)
        status = 4

    if payload["critical_speedup"] < args.min_speedup:
        print(f"error: critical-path speedup at {top} shards "
              f"({payload['critical_speedup']:.2f}x) is under the "
              f"--min-speedup gate ({args.min_speedup:.1f}x)",
              file=sys.stderr)
        status = 5
    if cpu_count >= 2:
        # With real parallel hardware the wall clock must realize at
        # least half the ideal speedup of min(shards, cores) workers.
        required = 0.5 * min(top, cpu_count)
        if payload["wall_speedup"] < required:
            print(f"error: wall speedup at {top} shards "
                  f"({payload['wall_speedup']:.2f}x) is under the "
                  f"calibrated gate ({required:.1f}x on {cpu_count} cores)",
                  file=sys.stderr)
            status = 5
    return status


if __name__ == "__main__":
    sys.exit(main())
