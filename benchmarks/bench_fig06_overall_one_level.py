"""Figure 6 — overall one-level comparison (workload set #1).

The paper plots, per algorithm, a triangle of (total bandwidth, RMS
delay, STDEV of broker loads) averaged over the four WL#1 variants.
This bench regenerates those three coordinates for every algorithm.

Expected shape (paper): SLP1 and Gr* minimize bandwidth within the
delay/load constraints; Gr is worse on both bandwidth and balance;
Gr¬l has absurd delays; Closest/Closest¬b/Balance have huge bandwidth.
"""

from _shared import (
    SLP_KWARGS,
    VARIANTS,
    emit,
    emit_json,
    format_table,
    one_level,
    runs_for,
    scale_banner,
    variant_name,
)

ALGOS = ["SLP1", "Gr", "Gr*", "Gr-no-latency", "Closest",
         "Closest-no-balance", "Balance"]


def compute():
    per_algo = {name: [] for name in ALGOS}
    for variant in VARIANTS:
        problem = one_level(variant)
        runs = runs_for(("fig6", variant), problem, ALGOS, SLP_KWARGS)
        for name in ALGOS:
            per_algo[name].append(runs[name].report)
    rows = []
    for name in ALGOS:
        reports = per_algo[name]
        rows.append([
            name,
            sum(r.bandwidth for r in reports) / 4,
            sum(r.rms_delay for r in reports) / 4,
            sum(r.load_stdev for r in reports) / 4,
            sum(r.lbf for r in reports) / 4,
            all(r.feasible for r in reports),
        ])
    return rows


def test_fig06_overall_one_level(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 6: overall comparison, one-level network, "
         "workload set #1 (averaged over 4 variants) ==")
    emit(scale_banner())
    headers = ["algorithm", "bandwidth", "rms_delay", "load_stdev", "lbf",
               "feasible"]
    emit(format_table(headers, rows))
    emit_json("fig06_overall_one_level", headers, rows)

    by_name = {row[0]: row for row in rows}
    # Paper shape assertions: event-space-blind algorithms waste bandwidth,
    # the latency-blind greedy wrecks delay.
    assert by_name["Closest"][1] > by_name["Gr*"][1]
    assert by_name["Balance"][1] > by_name["Gr*"][1]
    assert by_name["Gr-no-latency"][2] > by_name["Gr*"][2]
