"""Ablation — coreset sampling versus a direct LP over all subscribers.

SLP1's iterative reweighted sampling exists to keep the LP small.  At a
small enough scale the LP can be solved over the *entire* subscriber set
(Sa = Sb = S), giving the quality ceiling of the preliminary step.  This
bench compares solution quality and runtime of the two, showing the
coreset keeps quality close at a fraction of the LP size.
"""

import time

import numpy as np

from _shared import BROKERS_ONE_LEVEL, SEED, emit, format_table, scale_banner
from repro import GoogleGroupsConfig, generate_google_groups, one_level_problem, slp1
from repro.core.problem import filters_from_assignment
from repro.core.slp.assign_flow import assign_subscriptions
from repro.core.slp.filtergen import generate_candidate_filters
from repro.core.slp.lp_relax import lp_relax
from repro.core.slp.view import view_from_problem
from repro.metrics import evaluate_solution
from repro.core.problem import SASolution

SUBSCRIBERS = 400  # small enough for the full LP


def direct_lp_solution(problem, seed):
    """SLP1 with the sampling machinery bypassed: one LP over all of S."""
    rng = np.random.default_rng(seed)
    view = view_from_problem(problem)
    candidates = generate_candidate_filters(
        view.subscriptions, view.num_targets, rng,
        network_points=view.network_points)
    outcome = lp_relax(view.subscriptions, view.feasible,
                       np.ones(view.num_subscribers, dtype=bool),
                       candidates, view.kappas_effective, view.alpha,
                       view.beta_max, rng)
    assert outcome is not None, "direct LP infeasible"
    assignment_outcome = assign_subscriptions(view, outcome.filters)
    assignment = problem.tree.leaves[assignment_outcome.target_of]
    filters = filters_from_assignment(problem, assignment, rng)
    return SASolution(problem, assignment, filters,
                      fractional_bandwidth=outcome.fractional_objective)


def compute():
    config = GoogleGroupsConfig(num_subscribers=SUBSCRIBERS,
                                num_brokers=BROKERS_ONE_LEVEL,
                                interest_skew="H", broad_interests="L")
    problem = one_level_problem(generate_google_groups(SEED, config))

    started = time.perf_counter()
    coreset_solution = slp1(problem, seed=1)
    coreset_time = time.perf_counter() - started

    started = time.perf_counter()
    direct_solution = direct_lp_solution(problem, seed=1)
    direct_time = time.perf_counter() - started

    rows = []
    for name, solution, seconds in (
            ("SLP1 (coreset sampling)", coreset_solution, coreset_time),
            ("direct LP (Sa = S)", direct_solution, direct_time)):
        report = evaluate_solution(name, solution, runtime_seconds=seconds)
        rows.append([name, report.bandwidth,
                     solution.fractional_bandwidth, report.lbf,
                     report.feasible, seconds])
    return rows


def test_ablation_coreset(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Ablation: coreset sampling vs direct LP over all "
         f"subscribers (m={SUBSCRIBERS}) ==")
    emit(scale_banner())
    emit(format_table(
        ["variant", "bandwidth", "fractional", "lbf", "feasible",
         "runtime_s"], rows))
    # The coreset variant stays within a moderate factor of the ceiling.
    assert rows[0][1] <= rows[1][1] * 4.0
