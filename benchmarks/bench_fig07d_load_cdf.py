"""Figure 7(d) — CDF of broker loads, (IS:H, BI:H).

The paper's point: Gr, despite best effort, leaves a chunk of brokers
overloaded (more than 10% at their scale), while SLP1 and Gr* respect
the caps.  This bench prints the load CDF at key fractions plus the
overloaded-broker fraction per algorithm.
"""

import numpy as np

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    one_level,
    runs_for,
    scale_banner,
)
from repro.metrics import load_cdf, overloaded_fraction

VARIANT = ("H", "H")
ALGOS = ["SLP1", "Gr", "Gr*", "Balance"]


def compute():
    problem = one_level(VARIANT)
    runs = runs_for(("fig6", VARIANT), problem, ALGOS, SLP_KWARGS)
    rows = []
    for name in ALGOS:
        cdf = load_cdf(problem, runs[name].solution.assignment)
        loads = cdf[:, 0]
        quartiles = np.percentile(loads, [10, 25, 50, 75, 90])
        over = overloaded_fraction(problem, runs[name].solution.assignment)
        rows.append([name, *quartiles.tolist(), over])
    return rows


def test_fig07d_load_cdf(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 7(d): broker load CDF, (IS:H, BI:H) ==")
    emit(scale_banner())
    emit(format_table(
        ["algorithm", "p10", "p25", "p50", "p75", "p90",
         "overloaded_fraction"], rows))

    by = {row[0]: row for row in rows}
    assert by["SLP1"][6] == 0.0
    assert by["Gr*"][6] == 0.0
    assert by["Balance"][6] == 0.0
