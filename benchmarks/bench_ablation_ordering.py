"""Ablation — greedy processing order, and the adversarial instance.

Two parts:

1. On workload set #1, compare Gr (arrival order), Gr* (fewest-candidates
   first with re-sorting), and Gr on a random shuffle.
2. On the clustered-shuffle adversarial instance, show Gr* losing to
   SLP1 by a wide margin (the paper's argument for needing a principled
   yardstick at all).
"""

import numpy as np

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    one_level,
    runs_for,
    scale_banner,
)
from repro import generate_clustered_shuffle, one_level_problem, slp1
from repro.core import offline_greedy, online_greedy
from repro.metrics import evaluate_solution

VARIANT = ("H", "H")


def compute():
    problem = one_level(VARIANT)
    runs = runs_for(("fig6", VARIANT), problem, ["Gr", "Gr*"], SLP_KWARGS)
    shuffled = online_greedy(
        problem, order=np.random.default_rng(0).permutation(
            problem.num_subscribers))
    order_rows = [
        ["Gr (arrival order)", runs["Gr"].report.bandwidth,
         runs["Gr"].report.lbf],
        ["Gr (random order)",
         evaluate_solution("Gr", shuffled).bandwidth,
         problem.load_balance_factor(shuffled.assignment)],
        ["Gr* (fewest candidates first)", runs["Gr*"].report.bandwidth,
         runs["Gr*"].report.lbf],
    ]

    workload = generate_clustered_shuffle(seed=5, num_clusters=6,
                                          subscribers_per_cluster=30)
    adversarial = one_level_problem(workload, alpha=1, max_delay=5.0,
                                    beta=1.0, beta_max=1.0)
    gr_star = evaluate_solution("Gr*", offline_greedy(adversarial))
    slp_run = evaluate_solution("SLP1", slp1(adversarial, seed=2))
    adversarial_rows = [
        ["Gr*", gr_star.bandwidth],
        ["SLP1", slp_run.bandwidth],
        ["ratio Gr*/SLP1", gr_star.bandwidth / slp_run.bandwidth],
    ]
    return order_rows, adversarial_rows


def test_ablation_ordering(benchmark):
    order_rows, adversarial_rows = benchmark.pedantic(compute, rounds=1,
                                                      iterations=1)
    emit("\n== Ablation: greedy processing order (workload set #1, "
         "IS:H BI:H) ==")
    emit(scale_banner())
    emit(format_table(["variant", "bandwidth", "lbf"], order_rows))

    emit("\n== Adversarial instance: shuffled clusters, alpha=1, "
         "hard caps ==")
    emit(format_table(["algorithm", "bandwidth"], adversarial_rows[:2]))
    emit(f"Gr* / SLP1 bandwidth ratio: {adversarial_rows[2][1]:.1f}x")

    assert adversarial_rows[2][1] > 2.5
