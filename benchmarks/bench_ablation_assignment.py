"""Ablation — locality-seeded assignment vs plain Dinic max-flow.

The paper's step 2 is "some" maximum flow; this library picks a
locality-preserving one (seed each subscriber at the covering broker
with the tightest rectangle / least enlargement, then complete with
augmenting paths).  This bench quantifies what that choice buys on a
region-correlated workload: same feasibility (max-flow value is unique),
lower final bandwidth.
"""

import numpy as np

from _shared import BROKERS_ONE_LEVEL, SEED, emit, format_table, scale_banner
from repro import GoogleGroupsConfig, generate_google_groups, one_level_problem
from repro.core.problem import SASolution, filters_from_assignment
from repro.core.slp.assign_flow import (
    assign_subscriptions,
    assign_subscriptions_maxflow,
)
from repro.core.slp.sampling import filter_assign
from repro.core.slp.view import view_from_problem
from repro.metrics import evaluate_solution

SUBSCRIBERS = 800


def compute():
    config = GoogleGroupsConfig(num_subscribers=SUBSCRIBERS,
                                num_brokers=BROKERS_ONE_LEVEL,
                                interest_skew="H", broad_interests="L")
    problem = one_level_problem(generate_google_groups(SEED, config))
    view = view_from_problem(problem)
    preliminary = filter_assign(view, np.random.default_rng(1))

    rows = []
    for label, assign in (("locality-seeded flow", assign_subscriptions),
                          ("plain Dinic max-flow",
                           assign_subscriptions_maxflow)):
        outcome = assign(view, preliminary.filters)
        assignment = problem.tree.leaves[outcome.target_of]
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        report = evaluate_solution(label,
                                   SASolution(problem, assignment, filters))
        rows.append([label, report.bandwidth, report.lbf,
                     outcome.feasible])
    return rows


def test_ablation_assignment(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(f"\n== Ablation: assignment flow choice (m={SUBSCRIBERS}) ==")
    emit(scale_banner())
    emit(format_table(["variant", "bandwidth", "lbf", "flow feasible"],
                      rows))
    # Feasibility agrees (same max-flow value); locality helps bandwidth
    # on region-correlated workloads.
    assert rows[0][3] == rows[1][3]
    assert rows[0][1] <= rows[1][1] * 1.2
