"""Ablation — size of the load-balance sample Sb.

The paper uses |Sb| = 10 |B| to make the LP's C3 constraint reflect the
full population's load.  This bench sweeps the factor, showing that a
tiny Sb yields filters whose coverage cannot be balanced (escalations /
infeasibility), while a large Sb only adds LP size.
"""

from _shared import (
    BROKERS_ONE_LEVEL,
    SEED,
    emit,
    format_table,
    scale_banner,
)
from repro import (
    FilterAssignConfig,
    GoogleGroupsConfig,
    generate_google_groups,
    one_level_problem,
    slp1,
)
from repro.metrics import evaluate_solution

SUBSCRIBERS = 800
FACTORS = [2, 10, 30]


def compute():
    config = GoogleGroupsConfig(num_subscribers=SUBSCRIBERS,
                                num_brokers=BROKERS_ONE_LEVEL,
                                interest_skew="H", broad_interests="L")
    problem = one_level_problem(generate_google_groups(SEED, config))
    rows = []
    for factor in FACTORS:
        fa_config = FilterAssignConfig(sb_factor=factor)
        solution = slp1(problem, seed=1, config=fa_config)
        report = evaluate_solution(f"sb={factor}|B|", solution)
        rows.append([f"{factor} x |B|", report.bandwidth, report.lbf,
                     report.feasible, solution.info["achieved_beta"],
                     solution.info["runtime_seconds"]])
    return rows


def test_ablation_sb_size(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit(f"\n== Ablation: load-balance sample size |Sb| (m={SUBSCRIBERS}) ==")
    emit(scale_banner())
    emit(format_table(
        ["sb_factor", "bandwidth", "lbf", "feasible", "achieved_beta",
         "runtime_s"], rows))
    assert all(row[1] > 0 for row in rows)
