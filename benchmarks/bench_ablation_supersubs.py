"""Ablation — FilterGen with and without super-subscription clustering.

The optional first step of candidate generation (cluster subscriptions
into k = 5|B| super-subscriptions) trades candidate quality for LP size:
without it the fractional bound is tight up to a constant (Lemma 4), but
the candidate set and LP grow.  This bench measures both variants.
"""

from _shared import BROKERS_ONE_LEVEL, SEED, emit, format_table, scale_banner
from repro import (
    FilterAssignConfig,
    FilterGenConfig,
    GoogleGroupsConfig,
    generate_google_groups,
    one_level_problem,
    slp1,
)
from repro.metrics import evaluate_solution

SUBSCRIBERS = 600


def compute():
    config = GoogleGroupsConfig(num_subscribers=SUBSCRIBERS,
                                num_brokers=BROKERS_ONE_LEVEL,
                                interest_skew="H", broad_interests="L")
    problem = one_level_problem(generate_google_groups(SEED, config))

    rows = []
    for label, use_supersubs in (("with super-subscriptions", True),
                                 ("without (raw subscriptions)", False)):
        fa_config = FilterAssignConfig(
            filtergen=FilterGenConfig(use_super_subscriptions=use_supersubs))
        solution = slp1(problem, seed=1, config=fa_config)
        report = evaluate_solution(label, solution)
        info = solution.info["filter_assign"]
        rows.append([label, report.bandwidth,
                     solution.fractional_bandwidth, report.feasible,
                     info.get("lp_calls"),
                     solution.info["runtime_seconds"]])
    return rows


def test_ablation_supersubs(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Ablation: FilterGen super-subscription clustering "
         f"(m={SUBSCRIBERS}) ==")
    emit(scale_banner())
    emit(format_table(
        ["variant", "bandwidth", "fractional", "feasible", "lp_calls",
         "runtime_s"], rows))
    assert all(row[1] > 0 for row in rows)
