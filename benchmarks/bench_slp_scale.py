#!/usr/bin/env python
"""Scaling curve: aggregated multi-level SLP at m = 1k / 10k / 100k.

The paper runs SLP at 100k-1M subscribers (CPLEX, hours of wall-clock);
the reproduction reaches the paper's 100k scale through subscription
aggregation (:mod:`repro.core.slp.aggregate`).  This bench runs the
aggregated pipeline at each size, verifies every solution against the
paper invariants, and emits a ``BENCH_slp_scale.json`` payload in the
profile-payload shape (``total_seconds`` / ``calibration_seconds`` /
``stages``, one stage per size) so the existing perf-regression gate
(:func:`repro.perf.regression.check_regression`) can compare runs
against the committed baseline::

    PYTHONPATH=src python benchmarks/bench_slp_scale.py \
        --json benchmarks/baselines/BENCH_slp_scale.json      # record
    PYTHONPATH=src python benchmarks/bench_slp_scale.py --sizes 5000 \
        --check-against benchmarks/baselines/BENCH_slp_scale.json

``--check-against`` compares only the sizes actually run (stages on one
side are skipped by the gate), so the CI smoke job can gate on a cheap
m=5000 run while the committed baseline carries the full curve.

Unlike the paper-figure benches this is a standalone script, not a
pytest bench: the 100k point is a scale proof, not part of the default
benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import GoogleGroupsConfig, generate_google_groups, multilevel_problem
from repro.bench.harness import run_metadata
from repro.bench.tables import format_table
from repro.core.slp import AggregationConfig, slp
from repro.metrics import total_bandwidth
from repro.perf.regression import calibrate, check_regression
from repro.verify import guaranteed_checks, verify_solution

DEFAULT_SIZES = (1000, 10000, 100000)
BROKERS = 64
MAX_OUT_DEGREE = 8
SEED = 7


def run_one(m: int, aggregate: int, seed: int) -> dict:
    config = GoogleGroupsConfig(num_subscribers=m, num_brokers=BROKERS,
                                interest_skew="H", broad_interests="L")
    problem = multilevel_problem(generate_google_groups(seed, config),
                                 max_out_degree=MAX_OUT_DEGREE, seed=seed)
    aggregation = AggregationConfig(max_group_size=aggregate)
    started = time.perf_counter()
    solution = slp(problem, seed=seed, aggregation=aggregation)
    elapsed = time.perf_counter() - started

    report = verify_solution(problem, solution,
                             guaranteed_checks("SLP", solution))
    if not report.ok:
        raise SystemExit(f"m={m}: solution failed verification:\n"
                         f"{report.summary(5)}")
    return {
        "name": f"m={m}",
        "calls": 1,
        "seconds": elapsed,
        "subscribers": m,
        "bandwidth": total_bandwidth(solution.filters),
        "lp_calls": solution.info["lp_calls"],
        "aggregated_levels": solution.info.get("aggregated_levels", 0),
        "aggregated_groups": solution.info.get("aggregated_groups", 0),
        "lp_workspace": solution.info["lp_workspace"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES),
                        help="subscriber counts to run (default: 1k 10k 100k)")
    parser.add_argument("--aggregate", type=int, default=64,
                        help="aggregation threshold (super-sub size cap)")
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the BENCH_slp_scale payload here")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="compare against a committed payload; exit 3 "
                             "on regression")
    parser.add_argument("--tolerance", type=float, default=0.50,
                        help="allowed normalized growth per size (scale "
                             "runs are long; noise is proportionally lower)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="exit 4 when the whole sweep exceeds this "
                             "wall-clock budget (the CI smoke gate)")
    args = parser.parse_args(argv)

    calibration = calibrate()
    stages = []
    sweep_started = time.perf_counter()
    for m in args.sizes:
        stage = run_one(m, args.aggregate, args.seed)
        stages.append(stage)
        print(f"m={m}: {stage['seconds']:.1f}s, "
              f"{stage['aggregated_groups']} super-subs over "
              f"{stage['aggregated_levels']} levels, "
              f"{stage['lp_calls']} LP calls", flush=True)
    sweep_elapsed = time.perf_counter() - sweep_started

    payload = {
        "benchmark": "slp_scale",
        "workload": "googlegroups",
        "algorithm": "SLP",
        "brokers": BROKERS,
        "max_out_degree": MAX_OUT_DEGREE,
        "seed": args.seed,
        "aggregate": args.aggregate,
        "total_seconds": sum(s["seconds"] for s in stages),
        "calibration_seconds": calibration,
        "stages": stages,
        "metadata": run_metadata(),
    }

    print(format_table(
        ["size", "seconds", "normalized", "super-subs", "bandwidth"],
        [[s["name"], round(s["seconds"], 2),
          round(s["seconds"] / calibration, 1),
          s["aggregated_groups"], f"{s['bandwidth']:.4g}"]
         for s in stages]))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"payload written to {args.json}")

    status = 0
    if args.check_against:
        with open(args.check_against, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regression = check_regression(payload, baseline,
                                      tolerance=args.tolerance)
        print(format_table(
            ["size", "baseline(norm)", "current(norm)", "ratio", "verdict"],
            [comparison.as_row() for comparison in regression.comparisons]))
        if not regression.ok:
            print("perf regression: "
                  + ", ".join(regression.regressed_stages), file=sys.stderr)
            status = 3

    if args.time_budget is not None and sweep_elapsed > args.time_budget:
        print(f"error: sweep took {sweep_elapsed:.1f}s, over the "
              f"--time-budget gate ({args.time_budget:.1f}s)",
              file=sys.stderr)
        status = 4
    return status


if __name__ == "__main__":
    sys.exit(main())
