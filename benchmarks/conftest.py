"""Benchmark collection config: make the benchmarks directory importable.

Output capture is disabled project-wide (``-s`` in addopts) so the
regenerated paper tables/series print alongside pytest-benchmark's
timing table.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
