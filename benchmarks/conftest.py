"""Benchmark collection config: make the benchmarks directory importable.

Output capture is disabled project-wide (``-s`` in addopts) so the
regenerated paper tables/series print alongside pytest-benchmark's
timing table.

``pytest benchmarks/ --json DIR`` additionally writes machine-readable
``BENCH_<name>.json`` files into DIR for every benchmark that calls
``emit_json`` (see ``repro.bench.harness.write_bench_json``).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from repro.bench.harness import JSON_ENV_VAR  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--json", action="store", default=None, metavar="DIR",
        help="also write machine-readable BENCH_*.json results into DIR")


def pytest_configure(config):
    directory = config.getoption("--json", default=None)
    if directory:
        os.environ[JSON_ENV_VAR] = directory
