"""Runtime extension bench — throughput and fault recovery.

Beyond the paper: the discrete-event runtime (`repro.runtime`) measures
what the static formulation abstracts away.  Two scenarios on a WL#1
instance solved by Gr*:

1. **Fault-free throughput** — the engine must reproduce the batch
   simulator's counts exactly (its correctness anchor) while reporting
   wall-clock events/second through the full queued overlay.
2. **Crash / recover with failover** — the most loaded leaf broker
   crashes mid-run; greedy failover re-assigns its subscribers to
   surviving brokers.  Compared against the same outage *without*
   failover to show the recovered deliveries, with the outage window
   taken from telemetry spans.
"""

import time

import numpy as np

from _shared import (
    BROKERS_ONE_LEVEL,
    SEED,
    emit,
    emit_json,
    format_table,
    scale_banner,
)
from repro import (
    BrokerOutage,
    DisseminationEngine,
    FaultPlan,
    GoogleGroupsConfig,
    RuntimeConfig,
    apply_fault_plan,
    generate_google_groups,
    offline_greedy,
    one_level_problem,
    simulate_dissemination,
    UniformEvents,
)

POPULATION = 800
NUM_EVENTS = 3000
CRASH_AT = NUM_EVENTS * 0.25
RECOVER_AT = NUM_EVENTS * 0.75


def _engine(problem, solution, **config_kwargs):
    return DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, config=RuntimeConfig(**config_kwargs),
        subscriber_points=problem.subscriber_points)


def compute():
    config = GoogleGroupsConfig(num_subscribers=POPULATION,
                                num_brokers=BROKERS_ONE_LEVEL,
                                interest_skew="H", broad_interests="L")
    workload = generate_google_groups(SEED, config)
    problem = one_level_problem(workload)
    solution = offline_greedy(problem)
    events = UniformEvents(workload.event_domain)

    # Scenario 1: fault-free — equivalence anchor + throughput.
    batch = simulate_dissemination(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, events, np.random.default_rng(SEED),
        num_events=NUM_EVENTS, subscriber_points=problem.subscriber_points)
    engine = _engine(problem, solution)
    started = time.perf_counter()
    clean = engine.run(events, np.random.default_rng(SEED), NUM_EVENTS)
    wall = time.perf_counter() - started
    assert np.array_equal(clean.node_entries, batch.node_entries)
    assert np.array_equal(clean.deliveries, batch.deliveries)
    assert int(clean.missed.sum()) == 0

    # Scenario 2: crash the most loaded leaf, with and without failover.
    loads = problem.loads(solution.assignment)
    victim = int(problem.tree.leaves[int(loads.argmax())])
    plan = FaultPlan(outages=(BrokerOutage(victim, CRASH_AT, RECOVER_AT),))

    unrepaired_engine = _engine(problem, solution)
    apply_fault_plan(unrepaired_engine, plan, failover=False)
    unrepaired = unrepaired_engine.run(events, np.random.default_rng(SEED),
                                       NUM_EVENTS)

    repaired_engine = _engine(problem, solution)
    apply_fault_plan(repaired_engine, plan, problem=problem)
    repaired = repaired_engine.run(events, np.random.default_rng(SEED),
                                   NUM_EVENTS)
    outage = repaired.telemetry.find_spans(f"outage[node={victim}]")[0]

    rows = [
        ["fault-free", clean.total_deliveries, clean.total_missed,
         clean.delivery_rate, 0],
        ["crash, no failover", unrepaired.total_deliveries,
         unrepaired.total_missed, unrepaired.delivery_rate, 0],
        ["crash + greedy failover", repaired.total_deliveries,
         repaired.total_missed, repaired.delivery_rate,
         repaired.telemetry.counter("failover_migrations").value],
    ]
    meta = {
        "victim": victim,
        "victim_load": int(loads.max()),
        "outage_window": [outage.start, outage.end],
        "events_per_second": NUM_EVENTS / wall,
    }
    return rows, meta


def test_runtime_fault_recovery(benchmark):
    rows, meta = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Runtime extension: fault injection and recovery "
         "(discrete-event engine) ==")
    emit(scale_banner(
        f"; {POPULATION} subscribers, {NUM_EVENTS} events, crash leaf "
        f"{meta['victim']} (load {meta['victim_load']}) over "
        f"t=[{meta['outage_window'][0]:g}, {meta['outage_window'][1]:g}]"))
    headers = ["scenario", "delivered", "missed", "delivery_rate",
               "migrations"]
    emit(format_table(headers, rows))
    emit(f"fault-free engine throughput: {meta['events_per_second']:,.0f} "
         "events/s (wall clock, includes matching and telemetry)")
    emit_json("runtime_fault_recovery", headers, rows, meta=meta)

    by_name = {row[0]: row for row in rows}
    # The outage must cost deliveries, and failover must recover most of
    # them: strictly fewer misses than the unrepaired run.
    assert by_name["crash, no failover"][2] > 0
    assert by_name["crash + greedy failover"][2] < by_name[
        "crash, no failover"][2]
    assert by_name["crash + greedy failover"][4] > 0
