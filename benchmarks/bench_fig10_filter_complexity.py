"""Figure 10 — effect of filter complexity alpha on bandwidth.

One-level network, (IS:H, BI:H), alpha swept 1..6 for SLP1, Gr, Gr*.

Expected shape: bandwidth drops as alpha grows (multiple rectangles
summarize subscriptions more precisely), with diminishing returns past
alpha ~ 3; SLP1 is the most vulnerable at alpha = 1-2 because rounding
can leave faraway rectangles that a single MEB must then swallow.
"""

from _shared import (
    emit,
    format_table,
    one_level,
    scale_banner,
)
from repro.bench import run_algorithms

VARIANT = ("H", "H")
ALPHAS = [1, 2, 3, 4, 5, 6]
ALGOS = ["SLP1", "Gr", "Gr*"]


def compute():
    rows = []
    for alpha in ALPHAS:
        problem = one_level(VARIANT, alpha=alpha)
        runs = {r.name: r for r in run_algorithms(
            problem, ALGOS, kwargs={"SLP1": {"seed": 1}})}
        rows.append([alpha] + [runs[name].report.bandwidth
                               for name in ALGOS])
    return rows


def test_fig10_filter_complexity(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 10: effect of filter complexity (one-level, "
         "IS:H BI:H) ==")
    emit(scale_banner())
    emit(format_table(["alpha"] + ALGOS, rows))

    # Larger alpha helps: alpha=6 beats alpha=1 for every algorithm.
    first, last = rows[0], rows[-1]
    for col in range(1, 4):
        assert last[col] <= first[col] * 1.05, ALGOS[col - 1]
