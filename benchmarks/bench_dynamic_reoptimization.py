"""Extension bench — the dynamic SA problem (paper future work).

Plays a churn trace against the online greedy rule and measures the
bandwidth drift of the grow-only filters, then the effect of one SLP1
re-optimization: bandwidth recovered and subscribers migrated.  This is
the "initial subscriber assignment / periodical re-optimization"
deployment the paper proposes for SLP (Sections I and VIII).
"""

import numpy as np

from _shared import BROKERS_ONE_LEVEL, SEED, emit, format_table, scale_banner
from repro import GoogleGroupsConfig, generate_google_groups, one_level_problem
from repro.dynamic import DynamicPubSub, generate_churn_trace

POPULATION = 800
HORIZON = 30


def compute():
    config = GoogleGroupsConfig(num_subscribers=POPULATION,
                                num_brokers=BROKERS_ONE_LEVEL,
                                interest_skew="H", broad_interests="L")
    problem = one_level_problem(generate_google_groups(SEED, config))
    trace = generate_churn_trace(POPULATION, HORIZON,
                                 np.random.default_rng(SEED),
                                 initial_active_fraction=0.4,
                                 arrival_rate=10, departure_rate=10)

    system = DynamicPubSub(problem, seed=1)
    for j in np.flatnonzero(trace.initially_active):
        system.arrive(int(j))

    initial = system.snapshot()
    for step in trace.steps:
        system.apply(step)
    drifted = system.snapshot()
    reopt_info = system.reoptimize("SLP1", seed=2)
    recovered = system.snapshot()

    rows = [
        ["initial (online greedy)", initial.active_count, initial.bandwidth,
         initial.lbf, 0],
        [f"after {HORIZON} churn steps", drifted.active_count,
         drifted.bandwidth, drifted.lbf, 0],
        ["after SLP1 re-optimization", recovered.active_count,
         recovered.bandwidth, recovered.lbf, reopt_info["migrations"]],
    ]
    return rows


def test_dynamic_reoptimization(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Extension: dynamic SA — churn drift and re-optimization ==")
    emit(scale_banner(f", population {POPULATION}, horizon {HORIZON}"))
    emit(format_table(
        ["phase", "active", "bandwidth", "lbf", "migrations"], rows))

    # Drift is real, and re-optimization recovers bandwidth.
    assert rows[1][2] > rows[0][2] * 0.8
    assert rows[2][2] <= rows[1][2] * 1.01
