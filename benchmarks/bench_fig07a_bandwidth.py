"""Figure 7(a) — total bandwidth per WL#1 variant, all algorithms.

Expected shape: SLP1 ~ Gr* (good), Gr consistently worse, event-space-
blind algorithms (Closest, Closest¬b, Balance) worst, Gr¬l "too good to
be true" (it ignores latency).
"""

from _shared import (
    SLP_KWARGS,
    VARIANTS,
    emit,
    format_table,
    one_level,
    runs_for,
    scale_banner,
    variant_name,
)

ALGOS = ["SLP1", "Gr", "Gr*", "Gr-no-latency", "Closest",
         "Closest-no-balance", "Balance"]


def compute():
    rows = []
    for variant in VARIANTS:
        problem = one_level(variant)
        runs = runs_for(("fig6", variant), problem, ALGOS, SLP_KWARGS)
        rows.append([variant_name(*variant)]
                    + [runs[name].report.bandwidth for name in ALGOS])
    return rows


def test_fig07a_bandwidth(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Figure 7(a): total bandwidth across workload set #1 ==")
    emit(scale_banner())
    emit(format_table(["workload"] + ALGOS, rows))

    for row in rows:
        by = dict(zip(ALGOS, row[1:]))
        assert by["Closest"] > min(by["SLP1"], by["Gr*"])
        assert by["Balance"] > min(by["SLP1"], by["Gr*"])
