"""Table I — bandwidth comparison on workload set #1.

Columns as in the paper: LP fractional solution (the yardstick lower
bound produced by SLP1), SLP1, Gr*, Gr — one row per (IS, BI) variant.

Expected shape: fractional < SLP1 ~ Gr* < Gr (SLP1 and Gr* within a
small factor of the fractional bound; paper reports 1.3x-2.7x at 100k
subscribers).
"""

from _shared import (
    SLP_KWARGS,
    VARIANTS,
    emit,
    emit_json,
    format_table,
    one_level,
    runs_for,
    scale_banner,
    variant_name,
)

ALGOS = ["SLP1", "Gr*", "Gr"]


def compute():
    rows = []
    for variant in VARIANTS:
        problem = one_level(variant)
        runs = runs_for(("fig6", variant), problem, ALGOS, SLP_KWARGS)
        fractional = runs["SLP1"].solution.fractional_bandwidth
        rows.append([
            variant_name(*variant),
            fractional,
            runs["SLP1"].report.bandwidth,
            runs["Gr*"].report.bandwidth,
            runs["Gr"].report.bandwidth,
        ])
    return rows


def test_table1_bandwidth_wl1(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("\n== Table I: bandwidth comparison (workload set #1) ==")
    emit(scale_banner())
    headers = ["workload", "fractional", "SLP1", "Gr*", "Gr"]
    emit(format_table(headers, rows))
    emit_json("table1_bandwidth_wl1", headers, rows)

    for row in rows:
        fractional = row[1]
        if fractional is None:
            continue
        # The fractional solution lower-bounds every integral solution.
        assert fractional <= row[2] * 1.001
        assert fractional <= row[3] * 1.001
