"""Figure 8 — overall comparison on a multi-level network, tight vs loose.

The paper plots the same (bandwidth, RMS delay, load STDEV) triangles as
Figure 6 for a multi-level broker tree under two constraint settings:
tight latency with relaxed lbf, and loose latency with tight lbf.

Expected shape: event-space-blind algorithms waste bandwidth, Gr¬l
wrecks delay; under loose constraints Gr/Gr* are competitive with SLP;
under tight constraints the greedy algorithms struggle with the load
balance caps while SLP satisfies them.
"""

from _shared import (
    SLP_KWARGS,
    emit,
    format_table,
    multi_level,
    runs_for,
    scale_banner,
)

VARIANT = ("H", "L")
ALGOS = ["SLP", "Gr", "Gr*", "Gr-no-latency", "Closest",
         "Closest-no-balance", "Balance"]


def compute():
    tables = {}
    for setting in ("tight", "loose"):
        problem = multi_level(VARIANT, setting)
        runs = runs_for(("fig8", VARIANT, setting), problem, ALGOS,
                        SLP_KWARGS)
        rows = []
        for name in ALGOS:
            report = runs[name].report
            rows.append([name, report.bandwidth, report.rms_delay,
                         report.load_stdev, report.lbf, report.feasible])
        tables[setting] = rows
    return tables


def test_fig08_overall_multilevel(benchmark):
    tables = benchmark.pedantic(compute, rounds=1, iterations=1)
    for setting, rows in tables.items():
        emit(f"\n== Figure 8({'a' if setting == 'tight' else 'b'}): "
             f"multi-level overall, {setting} latency setting ==")
        emit(scale_banner())
        emit(format_table(
            ["algorithm", "bandwidth", "rms_delay", "load_stdev", "lbf",
             "feasible"], rows))

    for rows in tables.values():
        by = {row[0]: row for row in rows}
        assert by["Closest"][1] > by["SLP"][1] * 0.9
        assert by["Gr-no-latency"][2] >= by["SLP"][2] * 0.2
