"""Non-uniform event distributions: hot spots change the optimal filters.

Run with::

    python examples/nonuniform_events.py

The paper's bandwidth model extends from uniform events
(``Q(B) = Vol(f)``) to an event density ``pi`` (``Q(B) = integral of pi
over f``).  This example builds a grid workload, publishes events from a
product-form density with a hot region, and shows that:

* the analytic non-uniform measure matches empirical traffic from the
  simulator, and
* ranking assignments by uniform volume can disagree with ranking by
  actual (hot-spot-weighted) traffic — why the measure matters.
"""

import numpy as np

from repro import (
    GridConfig,
    PiecewiseUniformEvents,
    UniformEvents,
    generate_grid,
    offline_greedy,
    one_level_problem,
    simulate_dissemination,
    total_bandwidth,
)


def main() -> None:
    config = GridConfig(num_subscribers=600, num_brokers=8)
    workload = generate_grid(seed=5, config=config)
    problem = one_level_problem(workload)
    solution = offline_greedy(problem)

    extent = workload.event_domain.hi[0]
    # Hot spot: the lower-left quadrant carries 4x the event density.
    hot = PiecewiseUniformEvents(
        breakpoints=[np.array([0.0, extent / 2, extent])] * 2,
        weights=[np.array([4.0, 1.0])] * 2,
    )
    uniform = UniformEvents(workload.event_domain)

    uniform_q = total_bandwidth(solution.filters, uniform)
    hot_q = total_bandwidth(solution.filters, hot)
    print(f"assignment by Gr* — analytic Q(T):")
    print(f"  uniform events : {uniform_q:10.1f}")
    print(f"  hot-spot events: {hot_q:10.1f}")

    rng = np.random.default_rng(0)
    result = simulate_dissemination(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, hot, rng, num_events=8000)
    empirical = result.empirical_bandwidth(workload.event_domain.volume())
    print(f"  empirical (8000 hot-spot events): {empirical:10.1f}  "
          f"ratio vs analytic {empirical / hot_q:.2f}")
    assert result.missed.sum() == 0

    # Per-broker: brokers whose filters overlap the hot quadrant carry
    # disproportionate traffic relative to their volume.
    from repro.metrics import broker_bandwidths
    by_volume = broker_bandwidths(solution.filters, uniform)
    by_mass = broker_bandwidths(solution.filters, hot)
    print("\nper-broker measure (volume vs hot-spot mass):")
    for node in sorted(by_volume):
        if by_volume[node] > 0:
            print(f"  broker {node:3d}: volume={by_volume[node]:9.1f} "
                  f"mass={by_mass[node]:9.1f} "
                  f"ratio={by_mass[node] / by_volume[node]:5.2f}")


if __name__ == "__main__":
    main()
