"""Dynamic subscriber assignment: churn, drift, and re-optimization.

Run with::

    python examples/dynamic_churn.py

The paper names the dynamic SA problem as future work and positions SLP
for "initial subscriber assignment [and] periodical re-optimization".
This example plays that scenario end to end:

1. an initial population is assigned online with the greedy rule;
2. subscribers churn (Poisson arrivals/departures); broker filters only
   grow between optimizations, so bandwidth drifts upward;
3. every ``REOPT_EVERY`` steps, SLP1 reassigns everyone — bandwidth
   snaps back down, at the cost of migrating some subscribers.

The printed trajectory shows the sawtooth the paper's deployment story
implies.
"""

import numpy as np

from repro import GoogleGroupsConfig, generate_google_groups, one_level_problem
from repro.dynamic import DynamicPubSub, generate_churn_trace

HORIZON = 40
REOPT_EVERY = 20


def main() -> None:
    config = GoogleGroupsConfig(num_subscribers=800, num_brokers=10,
                                interest_skew="H", broad_interests="L")
    problem = one_level_problem(generate_google_groups(seed=4, config=config))

    rng = np.random.default_rng(0)
    trace = generate_churn_trace(problem.num_subscribers, HORIZON, rng,
                                 initial_active_fraction=0.4,
                                 arrival_rate=10, departure_rate=10)

    system = DynamicPubSub(problem, seed=1)
    for j in np.flatnonzero(trace.initially_active):
        system.arrive(int(j))

    print(f"{'step':>4s} {'active':>7s} {'bandwidth':>12s} "
          f"{'tight bw':>12s} {'drift':>6s} {'lbf':>5s} {'migrations':>11s}")

    def report(tag=""):
        snap = system.snapshot()
        drift = snap.bandwidth / max(snap.tight_bandwidth, 1e-9)
        print(f"{snap.step:4d} {snap.active_count:7d} "
              f"{snap.bandwidth:12.0f} {snap.tight_bandwidth:12.0f} "
              f"{drift:6.2f} {snap.lbf:5.2f} "
              f"{snap.total_migrations:11d} {tag}")

    report()
    for step in trace.steps:
        system.apply(step)
        if (step.step + 1) % 5 == 0:
            report()
        if (step.step + 1) % REOPT_EVERY == 0:
            info = system.reoptimize("SLP1", seed=2)
            report(f"<- re-optimized: {info['migrations']} migrations, "
                   f"LP bound {info['fractional']:.0f}")

    print("\nThe grow-only online filters drift above the tight bound; "
          "each SLP1 re-optimization snaps bandwidth back.")


if __name__ == "__main__":
    main()
