"""Quickstart: generate a workload, run three algorithms, compare.

Run with::

    python examples/quickstart.py

This walks the whole public API surface in ~40 lines: generate a
Google-Groups-style workload (the paper's workload set #1), build a
one-level SA problem, solve it with the SLP1 yardstick and the two
greedy algorithms, and print the paper's headline metrics for each.
"""

from repro import (
    GoogleGroupsConfig,
    evaluate_solution,
    generate_google_groups,
    offline_greedy,
    one_level_problem,
    online_greedy,
    slp1,
)


def main() -> None:
    # A workload in the style of the paper's Google Groups baseline
    # (IS:H, BI:L): skewed interest popularity, few broad interests,
    # subscribers across Asia : North America : Europe = 4 : 1 : 4.
    config = GoogleGroupsConfig(num_subscribers=1000, num_brokers=12,
                                interest_skew="H", broad_interests="L")
    workload = generate_google_groups(seed=42, config=config)

    # One-level dissemination network: every broker attached to the
    # publisher; alpha = 3 rectangles per filter, max delay 0.3,
    # desired/maximum load-balance factors 1.5 / 1.8 (paper defaults).
    problem = one_level_problem(workload)
    print(problem)

    solutions = {
        "SLP1": slp1(problem, seed=1),
        "Gr": online_greedy(problem),
        "Gr*": offline_greedy(problem),
    }

    print(f"\n{'algorithm':8s} {'bandwidth':>12s} {'rms delay':>10s} "
          f"{'lbf':>6s} {'feasible':>9s}")
    for name, solution in solutions.items():
        report = evaluate_solution(name, solution)
        print(f"{name:8s} {report.bandwidth:12.0f} {report.rms_delay:10.3f} "
              f"{report.lbf:6.2f} {str(report.feasible):>9s}")

    fractional = solutions["SLP1"].fractional_bandwidth
    if fractional:
        print(f"\nLP fractional lower bound (SLP1 by-product): "
              f"{fractional:.0f}")
        best = min(evaluate_solution(n, s).bandwidth
                   for n, s in solutions.items())
        print(f"best solution is within {best / fractional:.1f}x "
              f"of the bound")


if __name__ == "__main__":
    main()
