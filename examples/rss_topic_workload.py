"""Topic-based pub/sub: the RSS workload (paper workload set #2).

Run with::

    python examples/rss_topic_workload.py

Workload set #2 models RSS-feed dissemination (Corona-style): 50
interests with Zipf(0.5) popularity, each a unit square in the event
space, subscribers pinned to 10 network locations.  Because subscribers
of one interest share one subscription, the optimizer's job degenerates
to grouping *topics* onto brokers — a regime where the LP fractional
bound gets very tight, and where load balance needs the relaxed
beta = 2.3 / beta_max = 2.5 the paper uses (interest skew makes the
subscriber distribution over the network skewed too).
"""

import numpy as np

from repro import (
    RssConfig,
    evaluate_solution,
    generate_rss,
    offline_greedy,
    one_level_problem,
    online_greedy,
    slp1,
)


def main() -> None:
    config = RssConfig(num_subscribers=1200, num_brokers=12)
    workload = generate_rss(seed=3, config=config)

    distinct = np.unique(workload.subscriptions.lo, axis=0).shape[0]
    locations = np.unique(workload.subscriber_points, axis=0).shape[0]
    print(f"{workload.num_subscribers} subscribers share {distinct} "
          f"distinct subscriptions across {locations} network locations")

    problem = one_level_problem(workload)  # beta=2.3 / beta_max=2.5
    print(f"load-balance factors: beta={problem.params.beta}, "
          f"beta_max={problem.params.beta_max}")

    solutions = {
        "SLP1": slp1(problem, seed=1),
        "Gr": online_greedy(problem),
        "Gr*": offline_greedy(problem),
    }
    fractional = solutions["SLP1"].fractional_bandwidth

    print(f"\nLP fractional bound: {fractional:.1f}")
    print(f"{'algorithm':8s} {'bandwidth':>10s} {'lbf':>6s} {'feasible':>9s}")
    for name, solution in solutions.items():
        report = evaluate_solution(name, solution)
        print(f"{name:8s} {report.bandwidth:10.1f} {report.lbf:6.2f} "
              f"{str(report.feasible):>9s}")

    # Topic purity: how many distinct topics land on each broker.
    best = min(solutions.items(),
               key=lambda kv: evaluate_solution(*kv).bandwidth)
    print(f"\ntopic spread under {best[0]}:")
    assignment = best[1].assignment
    for leaf in problem.tree.leaves:
        members = np.flatnonzero(assignment == leaf)
        if len(members) == 0:
            continue
        topics = np.unique(workload.subscriptions.lo[members],
                           axis=0).shape[0]
        print(f"  broker {int(leaf):3d}: {len(members):4d} subscribers, "
              f"{topics:3d} topics")


if __name__ == "__main__":
    main()
