"""Using SLP1 as a yardstick to evaluate other algorithms.

Run with::

    python examples/yardstick_evaluation.py

This reproduces the paper's central methodological argument.  To judge
a heuristic you need a reference point, but the optimum is intractable.
Candidate yardsticks:

* a simpler algorithm that drops a constraint (here Gr¬l, which ignores
  latency) — its bandwidth is *too low to be attainable*, so a heuristic
  looks bad against it no matter how good it is;
* SLP1's **LP fractional solution** — a genuine lower bound on what any
  assignment (over the same candidate filters) can achieve, computed as
  a by-product of running SLP1.

The script runs every algorithm on all four workload-set-#1 variants and
prints each one's bandwidth as a multiple of both yardsticks.
"""

from repro import (
    ALGORITHMS,
    GoogleGroupsConfig,
    evaluate_solution,
    generate_google_groups,
    one_level_problem,
)
from repro.workloads import VARIANTS, variant_name

ALGOS = ["SLP1", "Gr", "Gr*", "Gr-no-latency", "Closest", "Balance"]


def main() -> None:
    for variant in VARIANTS:
        config = GoogleGroupsConfig(num_subscribers=800, num_brokers=10,
                                    interest_skew=variant[0],
                                    broad_interests=variant[1])
        workload = generate_google_groups(seed=7, config=config)
        problem = one_level_problem(workload)

        reports = {}
        fractional = None
        for name in ALGOS:
            kwargs = {"seed": 1} if name == "SLP1" else {}
            solution = ALGORITHMS[name](problem, **kwargs)
            reports[name] = evaluate_solution(name, solution)
            if name == "SLP1":
                fractional = solution.fractional_bandwidth

        bad_yardstick = reports["Gr-no-latency"].bandwidth
        print(f"\n=== workload {variant_name(*variant)} ===")
        print(f"LP fractional bound: {fractional:12.0f}   "
              f"(Gr-no-latency 'bound': {bad_yardstick:.0f})")
        print(f"{'algorithm':16s} {'bandwidth':>12s} {'x fractional':>13s} "
              f"{'x Gr-no-lat':>12s} {'feasible':>9s}")
        for name in ALGOS:
            r = reports[name]
            frac_ratio = r.bandwidth / fractional if fractional else float("nan")
            print(f"{name:16s} {r.bandwidth:12.0f} {frac_ratio:13.2f} "
                  f"{r.bandwidth / bad_yardstick:12.2f} "
                  f"{str(r.feasible):>9s}")
        print("-> against the fractional bound, SLP1/Gr* look (correctly) "
              "near-optimal;")
        print("   against Gr-no-latency every feasible algorithm looks "
              "equally hopeless.")


if __name__ == "__main__":
    main()
