"""Multi-level dissemination with end-to-end event simulation.

Run with::

    python examples/multilevel_dissemination.py

Builds a multi-level broker tree over a Google-Groups-style workload,
assigns subscribers with the multi-level SLP algorithm, then *actually
publishes events* through the tree with the dissemination simulator —
verifying that no delivery is missed (the nesting condition at work) and
that the measured per-broker traffic matches the analytic bandwidth
``Q(T)`` the optimizer minimized.
"""

import numpy as np

from repro import (
    GoogleGroupsConfig,
    UniformEvents,
    evaluate_solution,
    generate_google_groups,
    multilevel_problem,
    offline_greedy,
    simulate_dissemination,
    slp,
    total_bandwidth,
)


def main() -> None:
    config = GoogleGroupsConfig(num_subscribers=800, num_brokers=24,
                                interest_skew="H", broad_interests="L")
    workload = generate_google_groups(seed=9, config=config)
    problem = multilevel_problem(workload, max_out_degree=6,
                                 max_delay=0.5, beta=1.8, beta_max=2.2,
                                 seed=3)
    tree = problem.tree
    print(f"tree: {tree.num_brokers} brokers, {tree.num_leaves} leaves, "
          f"height {tree.height}")

    for name, solution in (("SLP", slp(problem, seed=1)),
                           ("Gr*", offline_greedy(problem))):
        report = evaluate_solution(name, solution)
        print(f"\n--- {name}: bandwidth={report.bandwidth:.0f} "
              f"rms_delay={report.rms_delay:.3f} lbf={report.lbf:.2f} "
              f"feasible={report.feasible}")

        events = UniformEvents(workload.event_domain)
        rng = np.random.default_rng(0)
        result = simulate_dissemination(
            tree, solution.filters, solution.assignment,
            problem.subscriptions, events, rng, num_events=4000,
            subscriber_points=problem.subscriber_points)

        analytic = total_bandwidth(solution.filters)
        empirical = result.empirical_bandwidth(
            workload.event_domain.volume())
        print(f"    published 4000 events: "
              f"{result.total_broker_entries} broker entries, "
              f"{int(result.deliveries.sum())} deliveries, "
              f"{int(result.missed.sum())} missed")
        print(f"    analytic Q(T)={analytic:.0f}  "
              f"empirical={empirical:.0f}  "
              f"ratio={empirical / analytic:.2f}")
        assert result.missed.sum() == 0, "nesting violated!"

    print("\nNo missed deliveries: every matching event reached its "
          "subscriber through the filter hierarchy.")


if __name__ == "__main__":
    main()
