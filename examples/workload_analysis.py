"""Workload diagnostics: verifying the IS / BI axes and set differences.

Run with::

    python examples/workload_analysis.py

The paper evaluates on three workload families with deliberately
different structure; this example measures each family with the
diagnostics in :mod:`repro.workloads.stats` and prints a comparison:

* the four WL#1 variants separate cleanly along the IS (popularity skew)
  and BI (broad-interest fraction) axes;
* WL#1 has strong interest-location correlation (geographic communities),
  while WL#3's interests are independent of location;
* WL#2's topic-based subscriptions show heavy pairwise containment
  (identical squares per topic).
"""

from repro import (
    GoogleGroupsConfig,
    GridConfig,
    RssConfig,
    generate_google_groups,
    generate_grid,
    generate_rss,
)
from repro.bench import format_table
from repro.workloads import VARIANTS, variant_name
from repro.workloads.stats import describe_workload

SIZE = dict(num_subscribers=1500, num_brokers=12)
COLUMNS = [
    ("popularity_skew", "IS (zipf)"),
    ("broad_interest_fraction", "BI (frac)"),
    ("interest_location_correlation", "loc-corr"),
    ("pair_intersect_fraction", "pair-isect"),
    ("pair_containment_fraction", "pair-contain"),
]


def main() -> None:
    rows = []
    for variant in VARIANTS:
        workload = generate_google_groups(seed=9, config=GoogleGroupsConfig(
            interest_skew=variant[0], broad_interests=variant[1], **SIZE))
        summary = describe_workload(workload)
        rows.append([f"#1 {variant_name(*variant)}"]
                    + [summary[key] for key, _label in COLUMNS])

    for label, workload in (
            ("#2 RSS", generate_rss(seed=9, config=RssConfig(**SIZE))),
            ("#3 grid", generate_grid(seed=9, config=GridConfig(**SIZE)))):
        summary = describe_workload(workload)
        rows.append([label] + [summary[key] for key, _label in COLUMNS])

    print(format_table(["workload"] + [label for _k, label in COLUMNS],
                       rows,
                       title="Workload diagnostics (see repro.workloads.stats)"))

    print("\nReading guide:")
    print(" - IS:H rows have higher popularity skew than IS:L rows;")
    print(" - BI:H rows have ~5x the broad-interest fraction of BI:L;")
    print(" - workload #1 couples interests with locations; #3 does not;")
    print(" - workload #2's topic squares give heavy pairwise containment.")


if __name__ == "__main__":
    main()
