"""Scalar vs epoch-mode runtime: sha256 bit-identity under every regime.

``RuntimeConfig(epoch_batch=N)`` services publish runs as one matrix
step instead of heap-stepping event by event.  The contract is *bit*
identity, not statistical agreement: the complete result payload —
entry counts, deliveries, misses, latency totals, duration, queue
peaks, and all telemetry including histogram buckets — must hash equal
to the scalar engine's on a shared seed, whatever faults, failover
delays, churn, or abort guards are in play.
"""

import hashlib
import json

import numpy as np
import pytest

from repro import (
    BrokerOutage,
    DisseminationEngine,
    FaultPlan,
    ReplayConfig,
    RuntimeConfig,
    UniformEvents,
    apply_fault_plan,
    offline_greedy,
    replay_churn,
)
from repro.dynamic.churn import generate_churn_trace
from repro.geometry import Rect
from repro.verify import epoch_runtime_oracle

DIST = UniformEvents(Rect([0, 0], [100, 100]))
NUM_EVENTS = 600
SEED = 7


def sha(result) -> str:
    return hashlib.sha256(json.dumps(result.to_dict(),
                                     sort_keys=True).encode()).hexdigest()


def run_engine(problem, solution, *, epoch_batch, plan=None, failover=True,
               num_events=NUM_EVENTS, **config_kwargs):
    engine = DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions,
        config=RuntimeConfig(epoch_batch=epoch_batch, **config_kwargs),
        subscriber_points=problem.subscriber_points)
    if plan is not None:
        apply_fault_plan(engine, plan, problem if failover else None,
                         failover=failover)
    return engine.run(DIST, np.random.default_rng(SEED), num_events)


def victim_leaf(problem, solution):
    loads = problem.loads(solution.assignment)
    return int(problem.tree.leaves[int(loads.argmax())])


class TestBitIdentity:
    @pytest.mark.parametrize("epoch_batch", [1, 7, 512])
    def test_fault_free(self, tiny_problem, epoch_batch):
        solution = offline_greedy(tiny_problem)
        scalar = run_engine(tiny_problem, solution, epoch_batch=0)
        epoch = run_engine(tiny_problem, solution, epoch_batch=epoch_batch)
        assert sha(scalar) == sha(epoch)
        assert scalar.duration == epoch.duration

    def test_crash_recover_with_failover(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 100.0, 400.0),))
        scalar = run_engine(tiny_problem, solution, epoch_batch=0, plan=plan)
        epoch = run_engine(tiny_problem, solution, epoch_batch=128, plan=plan)
        assert sha(scalar) == sha(epoch)
        # The schedule actually bit: failover migrated somebody.
        assert epoch.telemetry.counter("failover_migrations").value > 0

    def test_delayed_failover_fires_and_matches(self, tiny_problem):
        # Regression: a failover delay schedules its repair *mid-run*;
        # the engine must honour controls scheduled while running (they
        # also act as epoch barriers).
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 100.0, None),),
                         failover_delay=25.0)
        scalar = run_engine(tiny_problem, solution, epoch_batch=0, plan=plan)
        epoch = run_engine(tiny_problem, solution, epoch_batch=64, plan=plan)
        assert sha(scalar) == sha(epoch)
        assert scalar.telemetry.counter("failover_migrations").value > 0

    def test_churn_replay(self, tiny_problem):
        trace = generate_churn_trace(
            tiny_problem.num_subscribers, 10, np.random.default_rng(3),
            initial_active_fraction=0.5, arrival_rate=4.0,
            departure_rate=4.0)

        def replay(epoch_batch):
            result, _system = replay_churn(
                tiny_problem, trace, DIST, np.random.default_rng(SEED),
                NUM_EVENTS,
                engine_config=RuntimeConfig(epoch_batch=epoch_batch),
                replay_config=ReplayConfig(reopt_every=4))
            return result

        assert sha(replay(0)) == sha(replay(256))

    def test_max_duration_abort(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        scalar = run_engine(tiny_problem, solution, epoch_batch=0,
                            max_duration=277.5)
        epoch = run_engine(tiny_problem, solution, epoch_batch=512,
                           max_duration=277.5)
        assert scalar.aborted and epoch.aborted
        assert sha(scalar) == sha(epoch)

    def test_trace_prefix_stays_scalar(self, tiny_problem):
        # The first trace_events publishes must go through the scalar
        # path (spans are recorded per hop); the rest may batch.  Either
        # way the result is identical and spans actually exist.
        solution = offline_greedy(tiny_problem)
        scalar = run_engine(tiny_problem, solution, epoch_batch=0,
                            trace_events=10)
        epoch = run_engine(tiny_problem, solution, epoch_batch=128,
                           trace_events=10)
        assert sha(scalar) == sha(epoch)
        assert epoch.telemetry.to_dict()["spans"]

    def test_epoch_gate_defers_to_scalar_when_unsupported(self, tiny_problem):
        # service_time > 0 breaks the zero-service identity the epoch
        # step relies on, so the engine must quietly run scalar.
        solution = offline_greedy(tiny_problem)
        scalar = run_engine(tiny_problem, solution, epoch_batch=0,
                            service_time=0.05)
        epoch = run_engine(tiny_problem, solution, epoch_batch=128,
                           service_time=0.05)
        assert sha(scalar) == sha(epoch)

    def test_oracle_harness(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        report = epoch_runtime_oracle(tiny_problem, solution, DIST,
                                      seed=SEED, num_events=300)
        assert report.agree, report.detail


class TestEpochConfig:
    def test_negative_epoch_batch_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(epoch_batch=-1)

    def test_epoch_is_faster_in_spirit(self, tiny_problem):
        # Not a benchmark — just pin that both paths process the same
        # number of events and report the same throughput denominator.
        solution = offline_greedy(tiny_problem)
        scalar = run_engine(tiny_problem, solution, epoch_batch=0,
                            num_events=200)
        epoch = run_engine(tiny_problem, solution, epoch_batch=64,
                           num_events=200)
        assert scalar.num_events == epoch.num_events == 200
        assert scalar.events_per_time() == epoch.events_per_time()


class TestGateReevaluation:
    """The epoch gate must track ``engine.config``, not latch at run start.

    A mid-run control that swaps the config to something epoch mode
    cannot model (non-zero service time introduces queueing) is the
    planted divergence: a latched gate would keep matrix-stepping under
    the stale assumptions and the epoch run's payload would drift from
    the scalar run's.
    """

    @staticmethod
    def _run_with_midrun_service_time(problem, solution, *, epoch_batch):
        import dataclasses

        engine = DisseminationEngine(
            problem.tree, solution.filters, solution.assignment,
            problem.subscriptions,
            config=RuntimeConfig(epoch_batch=epoch_batch),
            subscriber_points=problem.subscriber_points)

        def enable_service_time(eng, _time):
            eng.config = dataclasses.replace(eng.config, service_time=0.25)

        engine.schedule(NUM_EVENTS * 0.4, enable_service_time)
        return engine.run(DIST, np.random.default_rng(SEED), NUM_EVENTS)

    def test_midrun_config_swap_disables_batching(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        scalar = self._run_with_midrun_service_time(
            tiny_problem, solution, epoch_batch=0)
        epoch = self._run_with_midrun_service_time(
            tiny_problem, solution, epoch_batch=128)
        assert sha(scalar) == sha(epoch)
        # The swap actually bit: with queueing enabled the run takes
        # longer than the pure publish schedule.
        assert scalar.duration > NUM_EVENTS - 1

    def test_midrun_interval_change_disables_batching(self, tiny_problem):
        # A changed publish interval invalidates the time vectors the
        # matrix step derives from the run-start interval; the gate must
        # notice even though every *batchable* config knob stays benign.
        import dataclasses

        solution = offline_greedy(tiny_problem)

        def run(epoch_batch):
            engine = DisseminationEngine(
                tiny_problem.tree, solution.filters,
                solution.assignment, tiny_problem.subscriptions,
                config=RuntimeConfig(epoch_batch=epoch_batch),
                subscriber_points=tiny_problem.subscriber_points)

            def stretch_interval(eng, _time):
                eng.config = dataclasses.replace(eng.config,
                                                 publish_interval=2.0)

            engine.schedule(NUM_EVENTS * 0.5, stretch_interval)
            return engine.run(DIST, np.random.default_rng(SEED), NUM_EVENTS)

        assert sha(run(0)) == sha(run(128))
