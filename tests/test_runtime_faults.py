"""Fault injection and failover tests for the runtime engine.

Missed-delivery accounting while a leaf broker is crashed, greedy
failover restoring deliveries, and the telemetry outage window.
"""

import numpy as np
import pytest

from repro import (
    BrokerOutage,
    DisseminationEngine,
    FaultPlan,
    RuntimeConfig,
    UniformEvents,
    apply_fault_plan,
    offline_greedy,
)
from repro.geometry import Rect


DIST = UniformEvents(Rect([0, 0], [100, 100]))
NUM_EVENTS = 600


def make_engine(problem, solution, **config_kwargs):
    return DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, config=RuntimeConfig(**config_kwargs),
        subscriber_points=problem.subscriber_points)


def victim_leaf(problem, solution):
    """The most loaded leaf — crashing it visibly costs deliveries."""
    loads = problem.loads(solution.assignment)
    return int(problem.tree.leaves[int(loads.argmax())])


class TestCrashAccounting:
    def test_crashed_leaf_causes_misses(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 100.0, 400.0),))

        clean = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(7), NUM_EVENTS)
        engine = make_engine(tiny_problem, solution)
        apply_fault_plan(engine, plan, failover=False)
        faulty = engine.run(DIST, np.random.default_rng(7), NUM_EVENTS)

        assert clean.total_missed == 0
        assert faulty.total_missed > 0
        assert faulty.total_deliveries < clean.total_deliveries
        # Every matched event is either delivered or missed, never both.
        assert (faulty.total_deliveries + faulty.total_missed
                == clean.total_deliveries)
        # Only the victim's subscribers miss anything.
        missers = np.flatnonzero(faulty.missed)
        assert len(missers) > 0
        assert set(solution.assignment[missers]) == {victim}

    def test_recovery_resumes_deliveries(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        # Crash early and recover early: post-recovery events flow again.
        plan = FaultPlan(outages=(BrokerOutage(victim, 10.0, 50.0),))
        engine = make_engine(tiny_problem, solution)
        apply_fault_plan(engine, plan, failover=False)
        result = engine.run(DIST, np.random.default_rng(7), NUM_EVENTS)
        members = np.flatnonzero(solution.assignment == victim)
        assert result.deliveries[members].sum() > 0
        assert result.telemetry.counter("broker_recoveries").value == 1

    def test_outage_window_in_telemetry(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 100.0, 400.0),))
        engine = make_engine(tiny_problem, solution)
        apply_fault_plan(engine, plan, failover=False)
        result = engine.run(DIST, np.random.default_rng(7), NUM_EVENTS)

        spans = result.telemetry.find_spans(f"outage[node={victim}]")
        assert len(spans) == 1
        assert spans[0].start == 100.0
        assert spans[0].end == 400.0
        assert result.telemetry.counter("broker_crashes").value == 1

    def test_open_ended_outage_closed_at_run_end(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 100.0),))
        engine = make_engine(tiny_problem, solution)
        apply_fault_plan(engine, plan, failover=False)
        result = engine.run(DIST, np.random.default_rng(7), NUM_EVENTS)
        span = result.telemetry.find_spans(f"outage[node={victim}]")[0]
        assert span.end is not None
        assert span.end >= 100.0
        assert result.telemetry.counter("broker_recoveries").value == 0


class TestFailover:
    def test_failover_restores_deliveries(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 100.0, 400.0),))

        unrepaired_engine = make_engine(tiny_problem, solution)
        apply_fault_plan(unrepaired_engine, plan, failover=False)
        unrepaired = unrepaired_engine.run(DIST, np.random.default_rng(7),
                                           NUM_EVENTS)

        repaired_engine = make_engine(tiny_problem, solution)
        apply_fault_plan(repaired_engine, plan, problem=tiny_problem)
        repaired = repaired_engine.run(DIST, np.random.default_rng(7),
                                       NUM_EVENTS)

        migrated = repaired.telemetry.counter("failover_migrations").value
        orphans = int((solution.assignment == victim).sum())
        assert migrated == orphans
        assert repaired.total_missed < unrepaired.total_missed
        assert repaired.total_deliveries > unrepaired.total_deliveries
        # Migrated subscribers end up on surviving leaves.
        assert victim not in set(repaired_engine.assignment)

    def test_failover_requires_problem(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        victim = victim_leaf(tiny_problem, solution)
        plan = FaultPlan(outages=(BrokerOutage(victim, 1.0),))
        with pytest.raises(ValueError):
            apply_fault_plan(make_engine(tiny_problem, solution), plan)


class TestLinkLoss:
    def test_lossy_links_lose_traffic_deterministically(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        clean = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(7), NUM_EVENTS)
        lossy = [make_engine(tiny_problem, solution, link_loss=0.2,
                             fault_seed=11).run(
                     DIST, np.random.default_rng(7), NUM_EVENTS)
                 for _ in range(2)]
        assert lossy[0].telemetry.counter("link_drops").value > 0
        assert lossy[0].total_deliveries < clean.total_deliveries
        assert lossy[0].total_missed > 0
        # The loss RNG is seeded independently of the event stream.
        assert np.array_equal(lossy[0].deliveries, lossy[1].deliveries)


class TestOutageValidation:
    def test_publisher_cannot_crash(self):
        with pytest.raises(ValueError):
            BrokerOutage(0, 1.0)

    def test_end_must_follow_start(self):
        with pytest.raises(ValueError):
            BrokerOutage(1, 5.0, 5.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            BrokerOutage(1, -1.0)

    def test_out_of_range_node_rejected(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        engine = make_engine(tiny_problem, solution)
        with pytest.raises(ValueError):
            engine.schedule_crash(1.0, tiny_problem.tree.num_nodes)
        with pytest.raises(ValueError):
            engine.schedule_crash(1.0, 0)
