"""Unit and property tests for Rect and RectSet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet


def boxes(dim=2, max_coord=100.0):
    """Strategy: a valid (lo, hi) pair in `dim` dimensions."""
    coord = st.floats(min_value=-max_coord, max_value=max_coord,
                      allow_nan=False, allow_infinity=False, width=32)
    return st.tuples(
        st.lists(coord, min_size=dim, max_size=dim),
        st.lists(st.floats(min_value=0.0, max_value=max_coord,
                           allow_nan=False, width=32),
                 min_size=dim, max_size=dim),
    ).map(lambda pair: Rect(np.array(pair[0]),
                            np.array(pair[0]) + np.array(pair[1])))


class TestRectConstruction:
    def test_valid(self):
        r = Rect([0, 0], [2, 3])
        assert r.dim == 2
        assert r.volume() == 6.0

    def test_degenerate_allowed(self):
        r = Rect([1, 1], [1, 5])
        assert r.volume() == 0.0

    def test_inverted_rejected(self):
        with pytest.raises(ValueError):
            Rect([2, 0], [1, 1])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1, 1])

    def test_from_point(self):
        r = Rect.from_point([3, 4])
        assert r.volume() == 0.0
        assert r.contains_point([3, 4])

    def test_from_center(self):
        r = Rect.from_center([5, 5], [2, 4])
        assert np.allclose(r.lo, [4, 3])
        assert np.allclose(r.hi, [6, 7])

    def test_from_center_negative_width_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_center([0, 0], [-1, 1])

    def test_immutability(self):
        r = Rect([0, 0], [1, 1])
        with pytest.raises(ValueError):
            r.lo[0] = 5

    def test_equality_and_hash(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([0.0, 0.0], [1.0, 1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Rect([0, 0], [1, 2])


class TestRectOperations:
    def test_contains_point_boundary(self):
        r = Rect([0, 0], [1, 1])
        assert r.contains_point([0, 0])
        assert r.contains_point([1, 1])
        assert not r.contains_point([1.0001, 0.5])

    def test_contains_rect(self):
        outer = Rect([0, 0], [10, 10])
        inner = Rect([2, 2], [3, 3])
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_and_intersection(self):
        a = Rect([0, 0], [2, 2])
        b = Rect([1, 1], [3, 3])
        assert a.intersects(b)
        overlap = a.intersection(b)
        assert overlap == Rect([1, 1], [2, 2])

    def test_disjoint_intersection_none(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([2, 2], [3, 3])
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_touching_intersect(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([1, 0], [2, 1])
        assert a.intersects(b)
        assert a.intersection(b).volume() == 0.0

    def test_union_is_meb(self):
        a = Rect([0, 0], [1, 1])
        b = Rect([3, 3], [4, 5])
        u = a.union(b)
        assert u == Rect([0, 0], [4, 5])

    def test_enlargement(self):
        a = Rect([0, 0], [2, 2])
        b = Rect([3, 0], [4, 2])
        assert a.enlargement(b) == pytest.approx(8.0 - 4.0)

    def test_enlargement_contained_zero(self):
        a = Rect([0, 0], [4, 4])
        assert a.enlargement(Rect([1, 1], [2, 2])) == 0.0

    def test_expand(self):
        r = Rect([0, 0], [2, 4])
        e = r.expand(0.5)
        assert np.allclose(e.lo, [-0.5, -1.0])
        assert np.allclose(e.hi, [2.5, 5.0])
        assert e.volume() == pytest.approx(r.volume() * 1.5 ** 2)

    def test_expand_zero_identity(self):
        r = Rect([1, 2], [3, 4])
        assert r.expand(0.0) == r

    def test_expand_negative_rejected(self):
        with pytest.raises(ValueError):
            Rect([0, 0], [1, 1]).expand(-0.1)

    @given(boxes())
    @settings(max_examples=50, deadline=None)
    def test_expand_contains_original(self, r):
        assert r.expand(0.3).contains_rect(r)

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(boxes(), boxes())
    @settings(max_examples=50, deadline=None)
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9


class TestRectSet:
    def make(self):
        return RectSet(np.array([[0, 0], [1, 1], [5, 5]], dtype=float),
                       np.array([[2, 2], [3, 3], [6, 7]], dtype=float))

    def test_len_and_iter(self):
        rs = self.make()
        assert len(rs) == 3
        assert [r.volume() for r in rs] == [4.0, 4.0, 2.0]

    def test_empty(self):
        rs = RectSet.empty(3)
        assert len(rs) == 0
        assert rs.dim == 3

    def test_from_rects_roundtrip(self):
        rects = [Rect([0, 0], [1, 1]), Rect([2, 2], [3, 4])]
        rs = RectSet.from_rects(rects)
        assert rs.rect(0) == rects[0]
        assert rs.rect(1) == rects[1]

    def test_from_rects_empty_rejected(self):
        with pytest.raises(ValueError):
            RectSet.from_rects([])

    def test_invalid_boxes_rejected(self):
        with pytest.raises(ValueError):
            RectSet(np.array([[1.0, 0.0]]), np.array([[0.0, 1.0]]))

    def test_take(self):
        rs = self.make()
        sub = rs.take([2, 0])
        assert len(sub) == 2
        assert sub.rect(0) == rs.rect(2)

    def test_volumes(self):
        assert np.allclose(self.make().volumes(), [4.0, 4.0, 2.0])

    def test_meb(self):
        meb = self.make().meb()
        assert meb == Rect([0, 0], [6, 7])

    def test_meb_empty_rejected(self):
        with pytest.raises(ValueError):
            RectSet.empty(2).meb()

    def test_contains_rect_mask(self):
        rs = self.make()
        mask = rs.contains_rect(Rect([1.5, 1.5], [2, 2]))
        assert mask.tolist() == [True, True, False]

    def test_contained_in_rect(self):
        rs = self.make()
        mask = rs.contained_in_rect(Rect([0, 0], [4, 4]))
        assert mask.tolist() == [True, True, False]

    def test_containment_matrix(self):
        outer = RectSet(np.array([[0.0, 0.0]]), np.array([[10.0, 10.0]]))
        inner = self.make()
        matrix = outer.containment_matrix(inner)
        assert matrix.shape == (1, 3)
        assert matrix[0].tolist() == [True, True, True]

    def test_contains_points(self):
        rs = self.make()
        pts = np.array([[1.0, 1.0], [5.5, 6.0], [9.0, 9.0]])
        matrix = rs.contains_points(pts)
        assert matrix[:, 0].tolist() == [True, True, False]
        assert matrix[:, 1].tolist() == [False, False, True]
        assert matrix[:, 2].tolist() == [False, False, False]

    def test_expand_matches_rect_expand(self):
        rs = self.make()
        expanded = rs.expand(0.4)
        for i in range(len(rs)):
            assert expanded.rect(i) == rs.rect(i).expand(0.4)

    def test_shrink_to_contents(self):
        container = RectSet(np.array([[0.0, 0.0]]), np.array([[10.0, 10.0]]))
        contents = RectSet(np.array([[1.0, 2.0], [3.0, 3.0]]),
                           np.array([[2.0, 3.0], [4.0, 5.0]]))
        shrunk = container.shrink_to_contents(contents)
        assert shrunk.rect(0) == Rect([1, 2], [4, 5])

    def test_shrink_without_contents_unchanged(self):
        container = RectSet(np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]]))
        far = RectSet(np.array([[5.0, 5.0]]), np.array([[6.0, 6.0]]))
        shrunk = container.shrink_to_contents(far)
        assert shrunk.rect(0) == container.rect(0)

    def test_dedupe(self):
        rs = RectSet(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]]),
                     np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]))
        assert len(rs.dedupe()) == 2

    def test_concat(self):
        a = self.make()
        b = RectSet(np.array([[8.0, 8.0]]), np.array([[9.0, 9.0]]))
        merged = a.concat(b)
        assert len(merged) == 4
        assert merged.rect(3) == Rect([8, 8], [9, 9])

    def test_concat_dim_mismatch(self):
        with pytest.raises(ValueError):
            self.make().concat(RectSet.empty(3))
