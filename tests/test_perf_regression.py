"""Tests for perf-regression tracking (repro.perf.regression)."""

import pytest

from repro.perf.regression import (
    MIN_BASELINE_SHARE,
    calibrate,
    check_regression,
)


def payload(total, stages, calibration=1.0):
    """A minimal profile payload, as ``python -m repro profile`` emits."""
    return {
        "total_seconds": total,
        "calibration_seconds": calibration,
        "stages": [{"name": name, "calls": 1, "seconds": seconds}
                   for name, seconds in stages.items()],
    }


class TestCheckRegression:
    def test_identical_payloads_pass(self):
        base = payload(1.0, {"solve": 0.7, "assemble": 0.2})
        report = check_regression(base, base)
        assert report.ok
        assert report.regressed_stages == []

    def test_total_regression_flags(self):
        base = payload(1.0, {"solve": 0.8})
        cur = payload(1.5, {"solve": 0.8})
        report = check_regression(cur, base, tolerance=0.30)
        assert not report.ok
        assert "total" in report.regressed_stages

    def test_stage_regression_flags(self):
        base = payload(1.0, {"solve": 0.8, "assemble": 0.15})
        cur = payload(1.0, {"solve": 1.2, "assemble": 0.15})
        report = check_regression(cur, base, tolerance=0.30)
        assert "solve" in report.regressed_stages

    def test_micro_stage_never_flags(self):
        # A stage below MIN_BASELINE_SHARE of the total is jitter: even a
        # 10x blowup must not fail the gate (the total still guards it).
        small = MIN_BASELINE_SHARE / 2
        base = payload(1.0, {"solve": 0.9, "tiny": small})
        cur = payload(1.0, {"solve": 0.9, "tiny": small * 10})
        report = check_regression(cur, base, tolerance=0.30)
        assert report.ok
        tiny = next(c for c in report.comparisons if c.name == "tiny")
        assert not tiny.gated

    def test_improvement_never_flags(self):
        base = payload(2.0, {"solve": 1.5})
        cur = payload(0.5, {"solve": 0.2})
        assert check_regression(cur, base).ok

    def test_calibration_normalizes_machine_speed(self):
        # Twice the wall-clock on a machine whose calibration kernel is
        # also twice as slow is not a regression.
        base = payload(1.0, {"solve": 0.8}, calibration=0.1)
        cur = payload(2.0, {"solve": 1.6}, calibration=0.2)
        report = check_regression(cur, base, tolerance=0.05)
        assert report.ok

    def test_renamed_stage_skipped(self):
        base = payload(1.0, {"old_name": 0.9})
        cur = payload(1.0, {"new_name": 0.9})
        report = check_regression(cur, base)
        assert [c.name for c in report.comparisons] == ["total"]

    def test_tolerance_boundary(self):
        base = payload(1.0, {"solve": 0.8})
        exactly = payload(1.30, {"solve": 0.8})
        just_over = payload(1.31, {"solve": 0.8})
        assert check_regression(exactly, base, tolerance=0.30).ok
        assert not check_regression(just_over, base, tolerance=0.30).ok

    def test_invalid_inputs_rejected(self):
        base = payload(1.0, {"solve": 0.8})
        with pytest.raises(ValueError):
            check_regression(base, base, tolerance=-0.1)
        with pytest.raises(ValueError):
            check_regression(base, payload(1.0, {}, calibration=0.0))

    def test_rows_render(self):
        base = payload(1.0, {"solve": 0.8})
        report = check_regression(payload(2.0, {"solve": 1.6}), base)
        rows = [c.as_row() for c in report.comparisons]
        assert any("REGRESSED" in row for row in rows)


class TestCalibrate:
    def test_returns_positive_seconds(self):
        assert calibrate(repeats=1) > 0.0

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            calibrate(repeats=0)
