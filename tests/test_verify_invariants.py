"""verify_solution: structured invariant checking of SA solutions."""

import numpy as np
import pytest

from repro import ALGORITHMS
from repro.pubsub.filters import Filter
from repro.geometry import RectSet
from repro.verify import (
    ALL_CHECKS,
    CHECK_ASSIGNMENT,
    CHECK_COMPLEXITY,
    CHECK_LATENCY,
    CHECK_LOAD,
    CHECK_NESTING,
    corrupt_latency,
    corrupt_nesting,
    guaranteed_checks,
    verify_solution,
)


@pytest.fixture
def gr_solution(small_problem):
    return ALGORITHMS["Gr*"](small_problem)


class TestCleanSolutions:
    def test_gr_star_passes_all_checks(self, small_problem, gr_solution):
        report = verify_solution(small_problem, gr_solution)
        assert report.ok, report.summary()
        assert report.violations == []
        assert report.lbf > 0
        assert report.num_subscribers == small_problem.num_subscribers

    def test_matches_coarse_validator(self, small_problem, gr_solution):
        coarse = gr_solution.validate()
        fine = verify_solution(small_problem, gr_solution)
        assert fine.ok == coarse.feasible
        assert fine.lbf == pytest.approx(coarse.lbf)

    def test_by_check_covers_requested_checks(self, small_problem,
                                              gr_solution):
        report = verify_solution(small_problem, gr_solution,
                                 {CHECK_NESTING, CHECK_LATENCY})
        assert set(report.by_check()) == {CHECK_NESTING, CHECK_LATENCY}

    def test_unknown_check_rejected(self, small_problem, gr_solution):
        with pytest.raises(ValueError, match="unknown checks"):
            verify_solution(small_problem, gr_solution, {"vibes"})

    def test_wrong_assignment_shape_rejected(self, small_problem,
                                             gr_solution):
        import dataclasses
        bad = dataclasses.replace(gr_solution, assignment=np.array([1, 2]))
        with pytest.raises(ValueError, match="one entry per subscriber"):
            verify_solution(small_problem, bad)


class TestViolationDetection:
    def test_unassigned_subscriber(self, small_problem, gr_solution):
        assignment = gr_solution.assignment.copy()
        assignment[3] = -1
        bad = type(gr_solution)(problem=small_problem,
                                assignment=assignment,
                                filters=gr_solution.filters)
        report = verify_solution(small_problem, bad)
        assert not report.ok
        assert report.count(CHECK_ASSIGNMENT) == 1
        assert "subscriber 3" in str(report.violations[0])

    def test_assignment_to_non_leaf(self, small_problem, gr_solution):
        assignment = gr_solution.assignment.copy()
        assignment[0] = 0  # the publisher is not a leaf broker
        bad = type(gr_solution)(problem=small_problem,
                                assignment=assignment,
                                filters=gr_solution.filters)
        report = verify_solution(small_problem, bad)
        assert report.count(CHECK_ASSIGNMENT) == 1
        assert "not a leaf" in report.violations[0].message

    def test_shrunk_filter_breaks_nesting(self, small_problem, gr_solution):
        bad = corrupt_nesting(small_problem, gr_solution)
        report = verify_solution(small_problem, bad)
        assert report.count(CHECK_NESTING) >= 1
        # Only the nesting invariant broke; the assignment is untouched.
        assert report.count(CHECK_ASSIGNMENT) == 0
        assert report.count(CHECK_LATENCY) == 0

    def test_reassignment_breaks_latency(self, small_problem, gr_solution):
        bad = corrupt_latency(small_problem, gr_solution)
        report = verify_solution(small_problem, bad)
        assert report.count(CHECK_LATENCY) == 1
        violation = next(v for v in report.violations
                         if v.check == CHECK_LATENCY)
        assert violation.measured > violation.limit

    def test_oversized_filter_breaks_complexity(self, small_problem,
                                                gr_solution):
        alpha = small_problem.params.alpha
        node = int(small_problem.tree.leaves[0])
        lo = np.tile(np.array([[0.0, 0.0]]), (alpha + 1, 1))
        hi = lo + np.linspace(1.0, 100.0, alpha + 1)[:, None]
        filters = dict(gr_solution.filters)
        filters[node] = Filter(RectSet(lo, hi))
        bad = type(gr_solution)(problem=small_problem,
                                assignment=gr_solution.assignment,
                                filters=filters)
        report = verify_solution(small_problem, bad,
                                 {CHECK_COMPLEXITY})
        assert report.count(CHECK_COMPLEXITY) == 1
        assert report.violations[0].measured == alpha + 1

    def test_pileup_breaks_load(self, small_problem, gr_solution):
        # Everyone on one broker: lbf = num_leaves >> beta_max.
        node = int(small_problem.tree.leaves[0])
        assignment = np.full(small_problem.num_subscribers, node)
        bad = type(gr_solution)(problem=small_problem,
                                assignment=assignment,
                                filters=gr_solution.filters)
        report = verify_solution(small_problem, bad, {CHECK_LOAD})
        assert report.count(CHECK_LOAD) == 1
        assert report.lbf == pytest.approx(small_problem.num_leaf_brokers)

    def test_summary_truncates(self, small_problem, gr_solution):
        assignment = np.full(small_problem.num_subscribers, -1)
        bad = type(gr_solution)(problem=small_problem,
                                assignment=assignment,
                                filters=gr_solution.filters)
        report = verify_solution(small_problem, bad, {CHECK_ASSIGNMENT})
        text = report.summary(max_lines=5)
        assert "FAILED" in text
        assert "more" in text
        assert len(text.splitlines()) == 7  # header + 5 + truncation line


class TestGuaranteedChecks:
    def test_base_checks_for_blind_variants(self):
        assert CHECK_LATENCY not in guaranteed_checks("Gr-no-latency")
        assert CHECK_LOAD not in guaranteed_checks("Closest-no-balance")

    def test_latency_guaranteed_for_core_algorithms(self):
        for name in ("Gr", "Gr*", "SLP1", "SLP", "Balance"):
            assert CHECK_LATENCY in guaranteed_checks(name)

    def test_load_conditional_on_greedy_fallback(self, small_problem):
        solution = ALGORITHMS["Gr*"](small_problem)
        checks = guaranteed_checks("Gr*", solution)
        if solution.info["load_cap_violations"] == 0:
            assert CHECK_LOAD in checks
        else:
            assert CHECK_LOAD not in checks

    def test_closest_load_depends_on_caps(self, small_problem):
        solution = ALGORITHMS["Closest"](small_problem)
        checks = guaranteed_checks("Closest", solution)
        caps = np.floor(small_problem.params.beta_max * small_problem.kappas
                        * small_problem.num_subscribers)
        assert (CHECK_LOAD in checks) == (
            caps.sum() >= small_problem.num_subscribers)

    def test_all_guarantees_subset_of_all_checks(self):
        for name in ALGORITHMS:
            assert guaranteed_checks(name) <= ALL_CHECKS
