"""Telemetry primitive tests: counters, gauges, histograms, spans."""

import json

import numpy as np
import pytest

from repro.runtime import Counter, Gauge, Histogram, Telemetry, TraceSpan
from repro.runtime.telemetry import default_latency_buckets


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_last_min_max(self):
        g = Gauge("depth")
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert g.last == 7.0
        assert g.min == 1.0
        assert g.max == 7.0

    def test_empty_gauge(self):
        g = Gauge("depth")
        assert g.last is None and g.min is None and g.max is None


class TestHistogram:
    def test_observe_and_quantile(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        h.observe_many(np.array([0.5, 1.5, 1.6, 3.0, 10.0]))
        assert h.count == 5
        assert h.sum == pytest.approx(16.6)
        assert h.mean == pytest.approx(16.6 / 5)
        # Median falls in the (1, 2] bucket.
        assert 1.0 <= h.quantile(0.5) <= 2.0

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.quantile(0.9) == 0.0

    def test_default_buckets_are_increasing(self):
        buckets = default_latency_buckets()
        assert list(buckets) == sorted(buckets)
        assert buckets[0] == 0.5

    def test_to_dict_buckets(self):
        h = Histogram("lat", bounds=(1.0, 2.0))
        h.observe(0.5)
        d = h.to_dict()
        assert d["count"] == 1
        assert d["buckets"][0] == {"le": 1.0, "count": 1}


class TestSpans:
    def test_span_lifecycle(self):
        t = Telemetry()
        span = t.span("outage", 10.0, node=3)
        assert t.open_spans() == [span]
        span.close(25.0)
        assert span.duration == 15.0
        assert t.open_spans() == []
        assert t.find_spans("outage") == [span]

    def test_double_close_rejected(self):
        span = TraceSpan("s", 0.0)
        span.close(1.0)
        with pytest.raises(ValueError):
            span.close(2.0)

    def test_close_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceSpan("s", 5.0).close(4.0)


class TestTelemetryRegistry:
    def test_instruments_are_singletons_by_name(self):
        t = Telemetry()
        assert t.counter("a") is t.counter("a")
        assert t.gauge("g") is t.gauge("g")
        assert t.histogram("h") is t.histogram("h")

    def test_json_round_trip(self, tmp_path):
        t = Telemetry()
        t.counter("deliveries").inc(3)
        t.gauge("depth").set(2.0)
        t.histogram("lat").observe(1.0)
        t.span("outage", 1.0, node=2).close(4.0)

        payload = json.loads(t.to_json())
        assert payload["schema_version"] == 1
        assert payload["counters"]["deliveries"] == 3
        assert payload["gauges"]["depth"]["last"] == 2.0
        assert payload["histograms"]["lat"]["count"] == 1
        assert payload["spans"][0]["name"] == "outage"

        # The file form additionally carries the bench-style provenance
        # block; everything else matches the in-memory export exactly.
        path = tmp_path / "telemetry.json"
        t.dump(str(path))
        dumped = json.loads(path.read_text())
        metadata = dumped.pop("metadata")
        assert dumped == payload
        assert set(metadata) == {"git_commit", "timestamp_utc", "host"}
