"""Shared fixtures: small, fast, deterministic problem instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    GoogleGroupsConfig,
    SAParameters,
    SAProblem,
    build_one_level_tree,
    default_world_regions,
    generate_google_groups,
    multilevel_problem,
    one_level_problem,
)
from repro.geometry import RectSet


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_workload():
    config = GoogleGroupsConfig(num_subscribers=300, num_brokers=8,
                                interest_skew="H", broad_interests="L")
    return generate_google_groups(seed=5, config=config)


@pytest.fixture
def small_problem(small_workload) -> SAProblem:
    return one_level_problem(small_workload)


@pytest.fixture
def small_multilevel_problem(small_workload) -> SAProblem:
    return multilevel_problem(small_workload, max_out_degree=3, seed=2)


@pytest.fixture
def tiny_problem(rng) -> SAProblem:
    """A 40-subscriber, 4-broker instance for exhaustive checks."""
    regions = default_world_regions()
    subscriber_points = regions.sample(rng, 40)
    broker_points = subscriber_points[rng.choice(40, size=4, replace=False)]
    tree = build_one_level_tree(np.zeros(5), broker_points)
    centers = rng.uniform(10, 90, size=(40, 2))
    widths = rng.uniform(2, 12, size=(40, 2))
    subscriptions = RectSet(centers - widths / 2, centers + widths / 2)
    params = SAParameters(alpha=2, max_delay=0.5, beta=1.5, beta_max=2.0)
    return SAProblem(tree, subscriber_points, subscriptions, params)
