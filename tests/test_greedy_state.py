"""Focused tests for the incremental greedy filter state."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SAParameters, SAProblem, build_one_level_tree
from repro.core.greedy import _TreeFilterState
from repro.geometry import Rect, RectSet
from repro.pubsub import Filter


def one_level_state(alpha=2, brokers=3, m=10, seed=0):
    rng = np.random.default_rng(seed)
    tree = build_one_level_tree(np.zeros(2), rng.uniform(size=(brokers, 2)))
    points = rng.uniform(size=(m, 2))
    centers = rng.uniform(0, 100, size=(m, 2))
    half = rng.uniform(0.5, 5, size=(m, 2))
    subs = RectSet(centers - half, centers + half)
    params = SAParameters(alpha=alpha, max_delay=5.0, beta=3.0, beta_max=4.0)
    problem = SAProblem(tree, points, subs, params)
    return problem, _TreeFilterState(problem)


class TestCommitSemantics:
    def test_first_commit_opens_slot(self):
        problem, state = one_level_state()
        state.commit(0, problem.subscriptions.lo[0],
                     problem.subscriptions.hi[0])
        node = int(problem.tree.leaves[0])
        assert state.count[node] == 1
        assert np.allclose(state.lo[node, 0], problem.subscriptions.lo[0])

    def test_contained_commit_is_noop(self):
        problem, state = one_level_state()
        big_lo = np.array([0.0, 0.0])
        big_hi = np.array([200.0, 200.0])
        state.commit(0, big_lo, big_hi)
        node = int(problem.tree.leaves[0])
        before_lo = state.lo[node].copy()
        state.commit(0, np.array([10.0, 10.0]), np.array([20.0, 20.0]))
        assert state.count[node] == 1
        assert np.array_equal(state.lo[node], before_lo)

    def test_alpha_slots_then_merge(self):
        problem, state = one_level_state(alpha=2)
        node = int(problem.tree.leaves[0])
        # Two far-apart rects open two slots.
        state.commit(0, np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        state.commit(0, np.array([50.0, 50.0]), np.array([51.0, 51.0]))
        assert state.count[node] == 2
        # A third rect must merge into one of them (alpha = 2).
        state.commit(0, np.array([100.0, 100.0]), np.array([101.0, 101.0]))
        assert state.count[node] == 2

    def test_path_costs_zero_for_contained(self):
        problem, state = one_level_state()
        state.commit(0, np.array([0.0, 0.0]), np.array([100.0, 100.0]))
        costs = state.path_costs(np.array([0]), np.array([10.0, 10.0]),
                                 np.array([20.0, 20.0]))
        assert costs[0] == 0.0

    def test_path_costs_new_slot_is_volume(self):
        problem, state = one_level_state(alpha=2)
        state.commit(0, np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        costs = state.path_costs(np.array([0]), np.array([50.0, 50.0]),
                                 np.array([52.0, 54.0]))
        assert costs[0] == pytest.approx(2.0 * 4.0)

    @given(st.integers(0, 1000), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_costs_nonnegative_property(self, seed, alpha):
        problem, state = one_level_state(alpha=alpha, seed=seed)
        rng = np.random.default_rng(seed)
        rows = np.arange(problem.num_leaf_brokers)
        for j in range(problem.num_subscribers):
            costs = state.path_costs(rows, problem.subscriptions.lo[j],
                                     problem.subscriptions.hi[j])
            assert (costs >= -1e-12).all()
            pick = int(rng.integers(len(rows)))
            state.commit(pick, problem.subscriptions.lo[j],
                         problem.subscriptions.hi[j])


class TestLoadFilters:
    def test_roundtrip(self):
        problem, state = one_level_state(alpha=2)
        filters = {
            int(problem.tree.leaves[0]): Filter.from_rects(
                [Rect([0, 0], [1, 1]), Rect([5, 5], [6, 6])]),
            int(problem.tree.leaves[1]): Filter.from_rects(
                [Rect([2, 2], [3, 3])]),
            int(problem.tree.leaves[2]): Filter.empty(2),
        }
        state.load_filters(filters)
        out = state.to_filters(2)
        for node, expected in filters.items():
            got = out[node]
            assert got.complexity == expected.complexity
            for i in range(expected.complexity):
                assert got.rects.rect(i) == expected.rects.rect(i)

    def test_truncates_to_alpha(self):
        problem, state = one_level_state(alpha=2)
        node = int(problem.tree.leaves[0])
        oversized = Filter(RectSet(np.zeros((4, 2)),
                                   np.ones((4, 2)) * np.arange(1, 5)[:, None]))
        state.load_filters({node: oversized})
        assert state.count[node] == 2

    def test_resets_previous_state(self):
        problem, state = one_level_state()
        state.commit(0, np.zeros(2), np.ones(2))
        node0 = int(problem.tree.leaves[0])
        state.load_filters({node0: Filter.empty(2)})
        assert state.count[node0] == 0
        assert state.to_filters(2)[node0].is_empty()

    def test_subsequent_commits_grow_loaded_filters(self):
        problem, state = one_level_state(alpha=1)
        node = int(problem.tree.leaves[0])
        state.load_filters({node: Filter.from_rects([Rect([0, 0], [10, 10])])})
        state.commit(0, np.array([5.0, 5.0]), np.array([20.0, 20.0]))
        out = state.to_filters(2)[node]
        assert out.complexity == 1
        assert out.rects.rect(0) == Rect([0, 0], [20, 20])
