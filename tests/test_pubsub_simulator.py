"""End-to-end dissemination simulation tests.

The key invariants: with nested filters no delivery is ever missed, and
the empirical per-broker traffic matches the analytic filter measures.
"""

import numpy as np
import pytest

from repro import (
    SAParameters,
    SAProblem,
    UniformEvents,
    build_one_level_tree,
    filters_from_assignment,
    offline_greedy,
    simulate_dissemination,
)
from repro.pubsub import SimulationResult, sample_event_stream
from repro.geometry import Rect, RectSet
from repro.metrics import total_bandwidth
from repro.network import BrokerTree
from repro.pubsub import Filter


def make_problem(rng, m=60, brokers=4):
    points = rng.normal(size=(m, 3))
    broker_points = rng.normal(size=(brokers, 3))
    tree = build_one_level_tree(np.zeros(3), broker_points)
    centers = rng.uniform(10, 90, size=(m, 2))
    widths = rng.uniform(2, 10, size=(m, 2))
    subs = RectSet(centers - widths / 2, centers + widths / 2)
    params = SAParameters(alpha=3, max_delay=2.0, beta=2.0, beta_max=3.0)
    return SAProblem(tree, points, subs, params)


class TestSimulator:
    def test_no_misses_with_nested_filters(self, rng):
        problem = make_problem(rng)
        solution = offline_greedy(problem)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(problem.tree, solution.filters,
                                        solution.assignment,
                                        problem.subscriptions, dist, rng,
                                        num_events=500)
        assert result.missed.sum() == 0
        assert result.num_events == 500

    def test_empirical_bandwidth_tracks_analytic(self, rng):
        problem = make_problem(rng, m=80)
        solution = offline_greedy(problem)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(problem.tree, solution.filters,
                                        solution.assignment,
                                        problem.subscriptions, dist, rng,
                                        num_events=6000)
        analytic = total_bandwidth(solution.filters)
        empirical = result.empirical_bandwidth(dist.domain.volume())
        assert empirical == pytest.approx(analytic, rel=0.25)

    def test_broken_filter_causes_misses(self, rng):
        problem = make_problem(rng, m=30)
        solution = offline_greedy(problem)
        # Break one leaf's filter: nothing gets through to it.
        broken = dict(solution.filters)
        victim = int(solution.assignment[0])
        broken[victim] = Filter.empty(2)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(problem.tree, broken,
                                        solution.assignment,
                                        problem.subscriptions, dist, rng,
                                        num_events=800)
        assert result.missed.sum() > 0

    def test_deliveries_match_subscription_size(self, rng):
        """A subscription covering the whole domain receives every event."""
        points = rng.normal(size=(2, 3))
        tree = build_one_level_tree(np.zeros(3), rng.normal(size=(2, 3)))
        subs = RectSet(np.array([[0.0, 0.0], [40.0, 40.0]]),
                       np.array([[100.0, 100.0], [41.0, 41.0]]))
        params = SAParameters(max_delay=5.0, beta=2.0, beta_max=2.0)
        problem = SAProblem(tree, points, subs, params)
        assignment = np.array(tree.leaves[:2])
        filters = filters_from_assignment(problem, assignment, rng)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(tree, filters, assignment, subs,
                                        dist, rng, num_events=400)
        assert result.deliveries[0] == 400          # whole-domain subscriber
        assert result.deliveries[1] <= 400 * 0.01   # tiny subscriber
        assert result.missed.sum() == 0

    def test_node_entries_monotone_down_tree(self, rng):
        """A child can never see more events than its parent."""
        positions = np.array([[0.0, 0], [1.0, 0], [2.0, 0], [2.0, 1]])
        parents = np.array([-1, 0, 1, 1])
        tree = BrokerTree(positions, parents)
        points = rng.normal(size=(10, 2))
        centers = rng.uniform(20, 80, size=(10, 2))
        subs = RectSet(centers - 5, centers + 5)
        params = SAParameters(max_delay=5.0, beta=3.0, beta_max=4.0)
        problem = SAProblem(tree, points, subs, params)
        assignment = np.array([int(tree.leaves[i % 2]) for i in range(10)])
        filters = filters_from_assignment(problem, assignment, rng)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(tree, filters, assignment, subs,
                                        dist, rng, num_events=1000)
        for node in range(1, tree.num_nodes):
            parent = int(tree.parents[node])
            if parent != 0:
                assert result.node_entries[node] <= result.node_entries[parent]

    def test_missing_filter_rejected(self, rng):
        problem = make_problem(rng, m=10)
        solution = offline_greedy(problem)
        incomplete = dict(solution.filters)
        incomplete.pop(int(problem.tree.leaves[0]))
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        with pytest.raises(ValueError):
            simulate_dissemination(problem.tree, incomplete,
                                   solution.assignment,
                                   problem.subscriptions, dist, rng)

    def test_delivery_latency_with_positions(self, rng):
        problem = make_problem(rng, m=20)
        solution = offline_greedy(problem)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(
            problem.tree, solution.filters, solution.assignment,
            problem.subscriptions, dist, rng, num_events=300,
            subscriber_points=problem.subscriber_points)
        if result.deliveries.sum() > 0:
            assert result.mean_delivery_latency > 0.0


class TestJsonExport:
    def test_to_dict_and_dump(self, rng, tmp_path):
        import json

        problem = make_problem(rng, m=20)
        solution = offline_greedy(problem)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(
            problem.tree, solution.filters, solution.assignment,
            problem.subscriptions, dist, rng, num_events=200)
        payload = result.to_dict()
        assert payload["schema_version"] == 1
        assert payload["kind"] == "simulation_result"
        assert payload["deliveries"] == result.deliveries.tolist()
        assert payload["delivery_rate"] == result.delivery_rate
        path = tmp_path / "sim.json"
        result.dump(str(path))
        dumped = json.loads(path.read_text())
        assert dumped.pop("metadata").keys() == {
            "git_commit", "timestamp_utc", "host"}
        assert dumped == json.loads(json.dumps(payload))


class TestEmptyInputGuards:
    """Regression tests: the result accessors must not divide by zero."""

    @staticmethod
    def empty_result(num_subscribers=0):
        return SimulationResult(
            num_events=0,
            node_entries=np.zeros(3, dtype=np.int64),
            deliveries=np.zeros(num_subscribers, dtype=np.int64),
            missed=np.zeros(num_subscribers, dtype=np.int64),
            total_delivery_latency=0.0)

    def test_zero_events_accessors(self):
        result = self.empty_result(num_subscribers=5)
        assert result.total_broker_entries == 0
        assert result.empirical_bandwidth(100.0) == 0.0
        assert result.mean_delivery_latency == 0.0
        assert result.delivery_rate == 1.0

    def test_zero_subscribers_accessors(self):
        result = self.empty_result(num_subscribers=0)
        assert result.mean_delivery_latency == 0.0
        assert result.delivery_rate == 1.0

    def test_zero_event_simulation(self, rng):
        problem = make_problem(rng, m=10)
        solution = offline_greedy(problem)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(
            problem.tree, solution.filters, solution.assignment,
            problem.subscriptions, dist, rng, num_events=0)
        assert result.node_entries.sum() == 0
        assert result.deliveries.sum() == 0
        assert result.delivery_rate == 1.0
        assert result.mean_delivery_latency == 0.0

    def test_zero_subscriber_simulation(self, rng):
        points = rng.normal(size=(0, 3))
        tree = build_one_level_tree(np.zeros(3), rng.normal(size=(2, 3)))
        subs = RectSet(np.empty((0, 2)), np.empty((0, 2)))
        params = SAParameters(max_delay=5.0, beta=2.0, beta_max=2.0)
        problem = SAProblem(tree, points, subs, params)
        assignment = np.empty(0, dtype=int)
        filters = filters_from_assignment(problem, assignment, rng)
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        result = simulate_dissemination(tree, filters, assignment, subs,
                                        dist, rng, num_events=100)
        assert result.deliveries.shape == (0,)
        assert result.missed.shape == (0,)
        assert result.delivery_rate == 1.0
        assert result.mean_delivery_latency == 0.0

    def test_sample_event_stream_guards(self):
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        rng = np.random.default_rng(0)
        assert sample_event_stream(dist, rng, 0).shape == (0, 2)
        with pytest.raises(ValueError):
            sample_event_stream(dist, rng, -1)
        with pytest.raises(ValueError):
            sample_event_stream(dist, rng, 10, chunk_size=0)

    def test_sample_event_stream_empty_consistent(self):
        # The num_events == 0 path must go through distribution.sample
        # like every other path: same dtype as a non-empty draw, and no
        # generator-state drift relative to an explicit zero-size draw.
        dist = UniformEvents(Rect([0, 0], [100, 100]))
        empty = sample_event_stream(dist, np.random.default_rng(3), 0)
        direct = dist.sample(np.random.default_rng(3), 0)
        assert empty.shape == direct.shape == (0, 2)
        assert empty.dtype == direct.dtype
        nonempty = dist.sample(np.random.default_rng(3), 4)
        assert empty.dtype == nonempty.dtype

        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        sample_event_stream(dist, rng_a, 0)
        dist.sample(rng_b, 0)
        # Both generators advanced identically (zero-size draws included).
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
        assert np.array_equal(rng_a.uniform(size=8), rng_b.uniform(size=8))
