"""Tests for the per-stage profiler (repro.perf.profiler)."""

import time

import pytest

from repro.core.slp import slp1
from repro.perf.profiler import (
    Profiler,
    _NULL_SPAN,
    active_profiler,
    profiled,
    span,
)
from repro.verify import random_problem


class TestSpans:
    def test_span_is_noop_without_profiler(self):
        assert active_profiler() is None
        assert span("anything") is _NULL_SPAN

    def test_span_records_inside_profiled(self):
        with profiled() as profiler:
            with span("work"):
                time.sleep(0.01)
            with span("work"):
                pass
        stats = profiler.stats()
        assert stats["work"].calls == 2
        assert stats["work"].seconds >= 0.01

    def test_nested_profiled_reuses_active(self):
        with profiled() as outer:
            with profiled() as inner:
                assert inner is outer
                with span("inner_stage"):
                    pass
        assert "inner_stage" in outer.stats()
        assert active_profiler() is None

    def test_explicit_profiler_instance(self):
        mine = Profiler()
        with profiled(mine) as active:
            assert active is mine
            with span("stage"):
                pass
        assert mine.stats()["stage"].calls == 1


class TestPayload:
    def test_payload_sorted_hottest_first(self):
        profiler = Profiler()
        profiler.record("cold", 0.001)
        profiler.record("hot", 1.0)
        payload = profiler.as_payload()
        names = [stage["name"] for stage in payload["stages"]]
        assert names == ["hot", "cold"]
        assert payload["elapsed_seconds"] >= 0.0
        for stage in payload["stages"]:
            assert set(stage) == {"name", "calls", "seconds"}

    def test_dump_round_trips(self, tmp_path):
        import json

        profiler = Profiler()
        profiler.record("stage", 0.5)
        path = tmp_path / "profile.json"
        profiler.dump(str(path))
        data = json.loads(path.read_text())
        assert data["stages"][0]["name"] == "stage"


class TestPipelineStages:
    def test_slp1_emits_expected_stage_names(self):
        problem = random_problem(2, "uniform").problem
        with profiled() as profiler:
            slp1(problem, seed=1)
        names = set(profiler.stats())
        # The pipeline's tentpole stages must all be instrumented.
        assert {"filtergen", "assign", "adjust"} <= names
        # LP stages appear whenever LPRelax ran (always on these sizes).
        assert {"lp_assemble", "lp_solve"} <= names

    def test_no_profiler_leak_after_run(self):
        problem = random_problem(2, "uniform").problem
        with profiled():
            slp1(problem, seed=1)
        assert active_profiler() is None
        assert span("later") is _NULL_SPAN
