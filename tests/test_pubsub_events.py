"""Tests for event distributions (uniform and piecewise product densities)."""

import numpy as np
import pytest

from repro.geometry import Rect, RectSet
from repro.pubsub import PiecewiseUniformEvents, UniformEvents


class TestUniformEvents:
    def test_samples_inside_domain(self):
        dist = UniformEvents(Rect([0, 0], [10, 5]))
        points = dist.sample(np.random.default_rng(0), 1000)
        assert points.shape == (1000, 2)
        assert (points >= 0).all()
        assert (points[:, 0] <= 10).all()
        assert (points[:, 1] <= 5).all()

    def test_filter_measure_is_union_volume(self):
        dist = UniformEvents(Rect([0, 0], [10, 10]))
        rects = RectSet(np.array([[0.0, 0.0], [1.0, 0.0]]),
                        np.array([[2.0, 2.0], [3.0, 2.0]]))
        assert dist.filter_measure(rects) == pytest.approx(6.0)

    def test_empty_filter_zero(self):
        dist = UniformEvents(Rect([0, 0], [1, 1]))
        assert dist.filter_measure(RectSet.empty(2)) == 0.0

    def test_degenerate_domain_rejected(self):
        with pytest.raises(ValueError):
            UniformEvents(Rect([0, 0], [0, 1]))

    def test_sampling_is_roughly_uniform(self):
        dist = UniformEvents(Rect([0, 0], [1, 1]))
        points = dist.sample(np.random.default_rng(1), 20_000)
        # Mean of U(0,1) is 0.5 per axis.
        assert np.allclose(points.mean(axis=0), [0.5, 0.5], atol=0.02)


class TestPiecewiseUniformEvents:
    def make_hot_left(self):
        """Density 3x heavier on the left half of the x-axis."""
        return PiecewiseUniformEvents(
            breakpoints=[np.array([0.0, 5.0, 10.0]), np.array([0.0, 10.0])],
            weights=[np.array([3.0, 1.0]), np.array([1.0])],
        )

    def test_domain(self):
        dist = self.make_hot_left()
        assert dist.domain == Rect([0, 0], [10, 10])

    def test_sampling_matches_density(self):
        dist = self.make_hot_left()
        points = dist.sample(np.random.default_rng(0), 40_000)
        left = (points[:, 0] < 5).mean()
        assert left == pytest.approx(0.75, abs=0.01)

    def test_filter_measure_hot_cold(self):
        dist = self.make_hot_left()
        hot = RectSet(np.array([[0.0, 0.0]]), np.array([[5.0, 10.0]]))
        cold = RectSet(np.array([[5.0, 0.0]]), np.array([[10.0, 10.0]]))
        assert dist.filter_measure(hot) == pytest.approx(0.75 * 100.0)
        assert dist.filter_measure(cold) == pytest.approx(0.25 * 100.0)

    def test_whole_domain_measure(self):
        dist = self.make_hot_left()
        whole = RectSet(np.array([[0.0, 0.0]]), np.array([[10.0, 10.0]]))
        assert dist.filter_measure(whole) == pytest.approx(100.0)

    def test_measure_monotone(self):
        dist = self.make_hot_left()
        small = RectSet(np.array([[1.0, 1.0]]), np.array([[2.0, 2.0]]))
        big = RectSet(np.array([[0.0, 0.0]]), np.array([[4.0, 4.0]]))
        assert dist.filter_measure(small) < dist.filter_measure(big)

    def test_measure_agrees_with_sampling(self):
        dist = self.make_hot_left()
        rects = RectSet(np.array([[2.0, 3.0]]), np.array([[7.0, 8.0]]))
        analytic = dist.filter_measure(rects) / 100.0  # probability mass
        points = dist.sample(np.random.default_rng(2), 50_000)
        empirical = rects.contains_points(points).any(axis=0).mean()
        assert empirical == pytest.approx(analytic, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseUniformEvents([], [])
        with pytest.raises(ValueError):
            PiecewiseUniformEvents([np.array([0.0, 0.0, 1.0])],
                                   [np.array([1.0, 1.0])])
        with pytest.raises(ValueError):
            PiecewiseUniformEvents([np.array([0.0, 1.0])],
                                   [np.array([-1.0])])
