"""Load-generator tests: an in-process bench run and its JSON payload."""

import asyncio
import json

import pytest

from repro import UniformEvents
from repro.serve import (
    LoadGenConfig,
    LoadGenReport,
    ServeConfig,
    ServeDaemon,
    run_loadgen,
    write_loadgen_json,
)
from repro.serve.loadgen import LOADGEN_SCHEMA_VERSION
from repro.workloads import GridConfig, generate_grid, one_level_problem


@pytest.fixture(scope="module")
def case():
    workload = generate_grid(5, GridConfig(num_subscribers=40, num_brokers=4))
    problem = one_level_problem(workload)
    return problem, UniformEvents(workload.event_domain)


def run_bench(case, *, serve_overrides=None, **loadgen_overrides):
    problem, distribution = case

    async def body():
        serve_kwargs = dict(port=0, reopt_threshold=10**9)
        serve_kwargs.update(serve_overrides or {})
        daemon = ServeDaemon(problem, ServeConfig(**serve_kwargs))
        await daemon.start()
        try:
            defaults = dict(port=daemon.port, subscribers=16, publishers=2,
                            events=200, rate=4000.0, seed=3,
                            drain_timeout=5.0)
            defaults.update(loadgen_overrides)
            config = LoadGenConfig(**defaults)
            return await run_loadgen(distribution, config), config
        finally:
            await daemon.stop()

    return asyncio.run(body())


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [dict(subscribers=0),
                                        dict(publishers=0),
                                        dict(events=0),
                                        dict(rate=0.0),
                                        dict(churn_interval=-1.0)])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadGenConfig(**kwargs)


class TestBenchRun:
    def test_full_run_delivers_everything(self, case):
        report, _config = run_bench(case)
        assert isinstance(report, LoadGenReport)
        assert report.events_published == 200
        assert report.delivery_rate == 1.0
        assert report.dropped_backpressure == 0
        # Every enqueued event crossed the wire back to a client.
        assert report.events_received == report.server_stats["delivered"]
        assert report.events_received > 0
        assert report.latency_p50 > 0.0
        assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
        assert report.latency_max >= report.latency_p99
        assert report.achieved_rate > 0.0

    def test_churn_triggers_live_reoptimization(self, case):
        report, _config = run_bench(
            case,
            serve_overrides=dict(reopt_threshold=4,
                                 reopt_poll_interval=0.02),
            events=400, rate=1500.0, churn_interval=0.01)
        assert report.churn_flaps > 0
        assert report.reoptimizations >= 1
        assert report.reopt_rejected == 0
        # Churned subscribers shed queued events, so the rate may dip a
        # hair below 1.0, but the service must stay essentially lossless.
        assert report.delivery_rate >= 0.97

    def test_duration_caps_the_publish_phase(self, case):
        report, _config = run_bench(case, events=10**6, rate=2000.0,
                                    duration=0.3)
        assert report.events_published < 10**6
        assert report.wall_seconds < 30.0

    def test_json_payload_shape(self, case, tmp_path):
        report, config = run_bench(case)
        path = tmp_path / "BENCH_serve_test.json"
        write_loadgen_json(str(path), report, config)
        payload = json.loads(path.read_text())
        assert payload["benchmark"] == "serve_latency"
        assert payload["schema_version"] == LOADGEN_SCHEMA_VERSION
        assert payload["config"]["subscribers"] == 16
        for field in ("latency_p50", "latency_p95", "latency_p99",
                      "delivery_rate", "reoptimizations", "wall_seconds",
                      "achieved_rate", "server_stats"):
            assert field in payload
        assert set(payload["metadata"]) == {"git_commit", "timestamp_utc",
                                            "host"}
