"""Tests for Filter: coverage, nesting (union containment), measure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet
from repro.pubsub import Filter


def filter_of(*rect_pairs):
    return Filter.from_rects([Rect(lo, hi) for lo, hi in rect_pairs])


class TestFilterBasics:
    def test_empty(self):
        f = Filter.empty(2)
        assert f.is_empty()
        assert f.complexity == 0
        assert f.measure() == 0.0
        assert not f.contains_point(np.zeros(2))
        assert not f.contains_subscription(Rect([0, 0], [1, 1]))

    def test_from_rects_empty_rejected(self):
        with pytest.raises(ValueError):
            Filter.from_rects([])

    def test_complexity(self):
        f = filter_of(([0, 0], [1, 1]), ([5, 5], [6, 6]))
        assert f.complexity == 2

    def test_contains_point_any_rect(self):
        f = filter_of(([0, 0], [1, 1]), ([5, 5], [6, 6]))
        assert f.contains_point(np.array([0.5, 0.5]))
        assert f.contains_point(np.array([5.5, 5.5]))
        assert not f.contains_point(np.array([3.0, 3.0]))

    def test_contains_points_vectorized(self):
        f = filter_of(([0, 0], [1, 1]))
        pts = np.array([[0.5, 0.5], [2.0, 2.0]])
        assert f.contains_points(pts).tolist() == [True, False]

    def test_subscription_cover_is_single_rect(self):
        # Subscription spanning two rects is NOT covered (paper semantics).
        f = filter_of(([0, 0], [2, 2]), ([2, 0], [4, 2]))
        spanning = Rect([1, 0.5], [3, 1.5])
        assert not f.contains_subscription(spanning)
        assert f.contains_subscription(Rect([0.5, 0.5], [1.5, 1.5]))

    def test_covering_mask(self):
        f = filter_of(([0, 0], [2, 2]))
        subs = RectSet(np.array([[0.5, 0.5], [3.0, 3.0]]),
                       np.array([[1.0, 1.0], [4.0, 4.0]]))
        assert f.covering_mask(subs).tolist() == [True, False]

    def test_measure_union_not_sum(self):
        f = filter_of(([0, 0], [2, 2]), ([1, 0], [3, 2]))
        assert f.measure() == pytest.approx(6.0)

    def test_expand(self):
        f = filter_of(([0, 0], [2, 2]))
        e = f.expand(0.5)
        assert e.rects.rect(0) == Rect([-0.5, -0.5], [2.5, 2.5])

    def test_merged_with(self):
        f = Filter.empty(2)
        g = f.merged_with(Rect([0, 0], [1, 1]))
        assert g.complexity == 1
        h = g.merged_with(Rect([2, 2], [3, 3]))
        assert h.complexity == 2


class TestUnionContainment:
    def test_single_rect_containment(self):
        f = filter_of(([0, 0], [10, 10]))
        assert f.covers_rect(Rect([2, 2], [5, 5]))
        assert not f.covers_rect(Rect([8, 8], [12, 12]))

    def test_two_rects_jointly_cover(self):
        # Neither rect alone contains the target, but their union does.
        f = filter_of(([0, 0], [2, 4]), ([2, 0], [4, 4]))
        target = Rect([1, 1], [3, 3])
        assert f.covers_rect(target)

    def test_union_with_gap_fails(self):
        f = filter_of(([0, 0], [1.5, 4]), ([2, 0], [4, 4]))
        target = Rect([1, 1], [3, 3])  # gap (1.5, 2) x (1, 3) uncovered
        assert not f.covers_rect(target)

    def test_l_shaped_union(self):
        f = filter_of(([0, 0], [4, 2]), ([0, 0], [2, 4]))
        assert f.covers_rect(Rect([0, 0], [2, 4]))
        assert not f.covers_rect(Rect([0, 0], [4, 4]))

    def test_degenerate_target(self):
        f = filter_of(([0, 0], [2, 2]), ([2, 0], [4, 2]))
        flat = Rect([1, 1], [3, 1])  # zero-height segment spanning both
        assert f.covers_rect(flat)
        outside = Rect([5, 1], [6, 1])
        assert not f.covers_rect(outside)

    def test_covers_filter_nesting(self):
        parent = filter_of(([0, 0], [10, 10]))
        child = filter_of(([1, 1], [2, 2]), ([5, 5], [9, 9]))
        assert parent.covers_filter(child)
        assert not child.covers_filter(parent)

    def test_empty_filter_covers_nothing(self):
        assert not Filter.empty(2).covers_rect(Rect([0, 0], [1, 1]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_covers_rect_matches_sampling(self, seed):
        """Oracle: dense point sampling agrees with the exact test."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        lo = rng.uniform(0, 6, size=(n, 2))
        hi = lo + rng.uniform(0.5, 4, size=(n, 2))
        f = Filter(RectSet(lo, hi))
        t_lo = rng.uniform(0, 6, size=2)
        t_hi = t_lo + rng.uniform(0.5, 3, size=2)
        target = Rect(t_lo, t_hi)

        exact = f.covers_rect(target)
        grid = np.stack(np.meshgrid(
            np.linspace(t_lo[0] + 1e-6, t_hi[0] - 1e-6, 12),
            np.linspace(t_lo[1] + 1e-6, t_hi[1] - 1e-6, 12)), axis=-1
        ).reshape(-1, 2)
        sampled_all_in = bool(f.contains_points(grid).all())
        if exact:
            assert sampled_all_in  # exact cover implies every sample inside
