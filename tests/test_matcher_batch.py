"""Three-way matcher differential suite: batch plane vs scalar oracle.

Every matcher must agree with :class:`BruteForceMatcher` cell-for-cell
in batch mode (``match_points``) and with its own scalar ``match_point``
column-for-column, including the awkward inputs: degenerate (zero-width)
subscription rectangles, events exactly on rectangle boundaries, the
empty tree, and the zero-event batch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect, RectSet
from repro.pubsub import (
    BruteForceMatcher,
    GridMatcher,
    Matcher,
    RTreeMatcher,
    best_matcher,
)
from repro.verify import matcher_oracle

DOMAIN = Rect([0, 0], [100, 100])


def random_subs(rng, n, degenerate_fraction=0.2):
    """Subscriptions inside DOMAIN; a fraction collapse to zero width."""
    lo = rng.uniform(0, 90, size=(n, 2))
    hi = lo + rng.uniform(0.5, 20, size=(n, 2))
    flat = rng.random(n) < degenerate_fraction
    hi[flat] = lo[flat]  # zero-area rect: contains only its own point
    return RectSet(lo, np.minimum(hi, 100.0))


def awkward_events(rng, subs, m):
    """Random events plus boundary-touching ones (corners of the subs)."""
    events = [rng.uniform(-5, 105, size=(m, 2))]
    if len(subs):
        take = rng.integers(0, len(subs), size=min(m, 16))
        events.append(subs.lo[take])          # exact lower corners
        events.append(subs.hi[take])          # exact upper corners
        events.append(np.column_stack([subs.lo[take, 0], subs.hi[take, 1]]))
    return np.concatenate(events, axis=0)


def all_matchers(subs):
    return [
        ("brute", BruteForceMatcher(subs)),
        ("grid", GridMatcher(subs, DOMAIN, resolution=8)),
        ("rtree", RTreeMatcher(subs)),
    ]


class TestThreeWayDifferential:
    @given(seed=st.integers(0, 10**6), n=st.integers(1, 80),
           m=st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_batch_agreement_with_brute_force(self, seed, n, m):
        rng = np.random.default_rng(seed)
        subs = random_subs(rng, n)
        events = awkward_events(rng, subs, m)
        expected = BruteForceMatcher(subs).match_points(events)
        for name, matcher in all_matchers(subs):
            got = matcher.match_points(events)
            assert got.shape == (n, events.shape[0]), name
            assert np.array_equal(got, expected), name

    @given(seed=st.integers(0, 10**6), n=st.integers(1, 40),
           m=st.integers(1, 24))
    @settings(max_examples=30, deadline=None)
    def test_scalar_batch_self_consistency(self, seed, n, m):
        rng = np.random.default_rng(seed)
        subs = random_subs(rng, n)
        events = awkward_events(rng, subs, m)
        for name, matcher in all_matchers(subs):
            matrix = matcher.match_points(events)
            for j in range(events.shape[0]):
                ids = np.asarray(matcher.match_point(events[j]), dtype=int)
                assert np.array_equal(np.flatnonzero(matrix[:, j]), ids), \
                    f"{name} disagrees with its own scalar path at event {j}"

    def test_oracle_harness_agrees(self):
        rng = np.random.default_rng(11)
        subs = random_subs(rng, 60)
        report = matcher_oracle(subs, DOMAIN, awkward_events(rng, subs, 40))
        assert report.agree, report.detail


class TestRTreeEdgeCases:
    def test_empty_tree_batch(self):
        matcher = RTreeMatcher(RectSet.empty(2))
        out = matcher.match_points(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert out.shape == (0, 2)
        assert matcher.match_point(np.array([1.0, 2.0])).size == 0

    def test_zero_event_input(self):
        rng = np.random.default_rng(5)
        subs = random_subs(rng, 12)
        empty = np.empty((0, 2))
        for name, matcher in all_matchers(subs):
            out = matcher.match_points(empty)
            assert out.shape == (12, 0), name

    def test_boundary_points_match_exactly(self):
        subs = RectSet(np.array([[10.0, 10.0], [30.0, 30.0]]),
                       np.array([[20.0, 20.0], [30.0, 30.0]]))
        # Corners, edges, and the degenerate rect's single point all
        # count as inside — closed boxes on every side.
        events = np.array([[10.0, 10.0], [20.0, 20.0], [10.0, 20.0],
                           [30.0, 30.0], [20.0 + 1e-12, 20.0]])
        expected = BruteForceMatcher(subs).match_points(events)
        assert expected[:, :4].any(axis=0).all()  # each touches some box
        for name, matcher in all_matchers(subs):
            assert np.array_equal(matcher.match_points(events), expected), name

    def test_single_subscription_tree(self):
        subs = RectSet(np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]]))
        out = RTreeMatcher(subs).match_points(
            np.array([[0.5, 0.5], [2.0, 2.0]]))
        assert out.tolist() == [[True, False]]


class TestBestMatcher:
    def test_small_population_uses_brute_force(self):
        rng = np.random.default_rng(0)
        subs = random_subs(rng, 30)
        assert isinstance(best_matcher(subs, DOMAIN), BruteForceMatcher)

    def test_compact_population_uses_grid(self):
        # Small boxes spread over the domain: each spans ~one grid cell
        # and no bucket dominates, the grid's sweet spot.
        rng = np.random.default_rng(1)
        lo = rng.uniform(0, 95, size=(200, 2))
        subs = RectSet(lo, lo + rng.uniform(0.5, 4.0, size=(200, 2)))
        assert isinstance(best_matcher(subs, DOMAIN), GridMatcher)

    def test_degenerate_domain_falls_back_to_rtree(self):
        rng = np.random.default_rng(2)
        subs = random_subs(rng, 200)
        flat = Rect([0, 0], [100, 0])  # zero height: grid cannot index it
        assert isinstance(best_matcher(subs, flat), RTreeMatcher)

    def test_degenerate_meb_without_domain_falls_back_to_rtree(self):
        point = np.tile([[5.0, 5.0]], (100, 1))
        subs = RectSet(point, point)  # MEB is a single point
        assert isinstance(best_matcher(subs), RTreeMatcher)

    def test_broad_subscriptions_use_rtree(self):
        # Every subscription spans nearly the whole domain: a grid bucket
        # would hold everyone, so the heuristic must reject it.
        rng = np.random.default_rng(3)
        lo = rng.uniform(0, 2, size=(100, 2))
        hi = rng.uniform(98, 100, size=(100, 2))
        subs = RectSet(lo, hi)
        assert isinstance(best_matcher(subs, DOMAIN), RTreeMatcher)

    def test_skewed_population_uses_rtree(self):
        # Tiny boxes piled into one corner cell: per-sub cell cost is
        # fine but one bucket holds everyone, so grid probes degrade.
        rng = np.random.default_rng(4)
        lo = rng.uniform(0, 1, size=(100, 2))
        subs = RectSet(lo, lo + 0.5)
        assert isinstance(best_matcher(subs, DOMAIN), RTreeMatcher)

    def test_selected_matchers_satisfy_protocol_and_agree(self):
        rng = np.random.default_rng(6)
        for n in (10, 120):
            subs = random_subs(rng, n)
            matcher = best_matcher(subs, DOMAIN)
            assert isinstance(matcher, Matcher)
            events = awkward_events(rng, subs, 20)
            assert np.array_equal(
                matcher.match_points(events),
                BruteForceMatcher(subs).match_points(events))

    def test_rejects_bad_resolution(self):
        rng = np.random.default_rng(7)
        subs = random_subs(rng, 100)
        with pytest.raises(ValueError):
            best_matcher(subs, DOMAIN, resolution=0)
