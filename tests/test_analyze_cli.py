"""CLI surface of ``python -m repro analyze`` and the mypy gate.

Exit codes are the CI contract: 0 = clean (or within baseline), 2 =
violations / regression / unusable input.  The mypy test runs only when
mypy is importable — the library has no hard dependency on it; CI
installs it for the static-analysis job.
"""

import importlib.util
import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture()
def tree(tmp_path):
    """A tiny scan root with one planted DET001 violation."""
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "core" / "dirty.py").write_text(textwrap.dedent("""\
        import numpy as np

        def sample() -> float:
            rng = np.random.default_rng()
            return float(rng.uniform())
        """))
    return root


class TestAnalyzeCommand:
    def test_clean_real_tree_exits_zero(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "CON003" in out

    def test_planted_violation_exits_two(self, tree, capsys):
        assert main(["analyze", "--root", str(tree)]) == 2
        captured = capsys.readouterr()
        assert "repro/core/dirty.py:4" in captured.err
        assert "DET001" in captured.err

    def test_rule_filter(self, tree):
        # The planted hazard is DET001; scanning only ASY stays clean.
        assert main(["analyze", "--root", str(tree), "--rules", "ASY"]) == 0
        assert main(["analyze", "--root", str(tree), "--rules", "DET001"]) == 2

    def test_unknown_rule_selector_exits_two(self, capsys):
        assert main(["analyze", "--rules", "NOPE"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_root_exits_two(self, tmp_path, capsys):
        assert main(["analyze", "--root", str(tmp_path / "nope")]) == 2

    def test_json_report_payload(self, tree, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(["analyze", "--root", str(tree),
                     "--json", str(report_path)]) == 2
        payload = json.loads(report_path.read_text())
        assert payload["schema_version"] == 1
        assert payload["tool"] == "repro.analyze"
        assert payload["counts"] == {"repro/core/dirty.py::DET001": 1}
        assert payload["violations"][0]["line"] == 4
        assert {"git_commit", "timestamp_utc", "host"} \
            <= set(payload["metadata"])

    def test_write_then_check_baseline_roundtrip(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # Freezing the current (dirty) state exits 0 by design …
        assert main(["analyze", "--root", str(tree),
                     "--write-baseline", str(baseline)]) == 0
        # … and a re-run against that baseline is within budget.
        assert main(["analyze", "--root", str(tree),
                     "--check-against", str(baseline)]) == 0
        assert "ratchet clean" in capsys.readouterr().out

    def test_regression_against_baseline_exits_two(self, tree, tmp_path,
                                                   capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["analyze", "--root", str(tree),
                     "--write-baseline", str(baseline)]) == 0
        (tree / "core" / "worse.py").write_text(
            "import random\nr = random.Random()\n")
        assert main(["analyze", "--root", str(tree),
                     "--check-against", str(baseline)]) == 2
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_improvement_against_baseline_exits_zero(self, tree, tmp_path,
                                                     capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["analyze", "--root", str(tree),
                     "--write-baseline", str(baseline)]) == 0
        (tree / "core" / "dirty.py").write_text(textwrap.dedent("""\
            import numpy as np

            def sample(seed: int) -> float:
                rng = np.random.default_rng(seed)
                return float(rng.uniform())
            """))
        assert main(["analyze", "--root", str(tree),
                     "--check-against", str(baseline)]) == 0
        assert "lock these in" in capsys.readouterr().out

    def test_corrupt_baseline_exits_two(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json")
        assert main(["analyze", "--root", str(tree),
                     "--check-against", str(baseline)]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_parse_error_exits_two(self, tree, capsys):
        (tree / "core" / "broken.py").write_text("def oops(:\n")
        # Even with no rule violations in scope, unparseable code fails.
        assert main(["analyze", "--root", str(tree),
                     "--rules", "ASY"]) == 2
        assert "parse error" in capsys.readouterr().err

    def test_pragma_waiver_reported(self, tree, capsys):
        (tree / "core" / "dirty.py").write_text(textwrap.dedent("""\
            import numpy as np

            def sample() -> float:
                rng = np.random.default_rng()  # analyze: allow[DET001] demo
                return float(rng.uniform())
            """))
        assert main(["analyze", "--root", str(tree)]) == 0
        assert "waived" in capsys.readouterr().out


class TestCommittedGate:
    def test_repo_gate_command_passes(self):
        """The exact command the CI static-analysis job runs."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "analyze",
             "--check-against", str(REPO_ROOT / "analyze_baseline.json")],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(importlib.util.find_spec("mypy") is None,
                    reason="mypy not installed (CI installs it)")
class TestMypyStrictPackages:
    def test_strict_packages_typecheck(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--no-error-summary"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
