"""Tests for the Closest / Closest-no-balance / Balance baselines."""

import numpy as np
import pytest

from repro import (
    SAParameters,
    SAProblem,
    balance_assignment,
    build_one_level_tree,
    closest_broker,
)
from repro.geometry import RectSet
from repro.network.space import pairwise_distances


def spread_problem(rng, m=80, brokers=4, beta=1.2, beta_max=1.5,
                   max_delay=2.0):
    points = rng.uniform(-5, 5, size=(m, 3))
    broker_points = rng.uniform(-5, 5, size=(brokers, 3))
    tree = build_one_level_tree(np.zeros(3), broker_points)
    centers = rng.uniform(10, 90, size=(m, 2))
    subs = RectSet(centers, centers + rng.uniform(1, 5, size=(m, 2)))
    params = SAParameters(max_delay=max_delay, beta=beta, beta_max=beta_max)
    return SAProblem(tree, points, subs, params)


class TestClosestNoBalance:
    def test_picks_nearest_broker(self, rng):
        problem = spread_problem(rng)
        solution = closest_broker(problem, enforce_load_cap=False)
        distances = pairwise_distances(problem.tree.leaf_positions(),
                                       problem.subscriber_points)
        nearest_rows = distances.argmin(axis=0)
        expected = problem.tree.leaves[nearest_rows]
        assert np.array_equal(solution.assignment, expected)

    def test_name(self, rng):
        problem = spread_problem(rng)
        solution = closest_broker(problem, enforce_load_cap=False)
        assert solution.info["algorithm"] == "Closest-no-balance"

    def test_can_overload(self):
        rng = np.random.default_rng(0)
        # All subscribers huddle next to broker 0.
        tree = build_one_level_tree(
            np.zeros(2), np.array([[1.0, 0.0], [50.0, 0.0]]))
        points = np.tile([1.0, 0.1], (20, 1))
        subs = RectSet(np.zeros((20, 2)), np.ones((20, 2)))
        params = SAParameters(max_delay=5.0, beta=1.0, beta_max=1.2)
        problem = SAProblem(tree, points, subs, params)
        solution = closest_broker(problem, enforce_load_cap=False)
        assert problem.load_balance_factor(solution.assignment) > 1.5


class TestClosest:
    def test_respects_beta_max_cap(self):
        rng = np.random.default_rng(0)
        tree = build_one_level_tree(
            np.zeros(2), np.array([[1.0, 0.0], [50.0, 0.0]]))
        points = np.tile([1.0, 0.1], (20, 1))
        subs = RectSet(np.zeros((20, 2)), np.ones((20, 2)))
        params = SAParameters(max_delay=60.0, beta=1.0, beta_max=1.2)
        problem = SAProblem(tree, points, subs, params)
        solution = closest_broker(problem, enforce_load_cap=True)
        loads = problem.loads(solution.assignment)
        cap = int(np.floor(1.2 * 0.5 * 20))
        assert loads.max() <= cap

    def test_overflow_goes_to_next_nearest(self):
        rng = np.random.default_rng(0)
        tree = build_one_level_tree(
            np.zeros(2),
            np.array([[1.0, 0.0], [2.0, 0.0], [50.0, 0.0]]))
        points = np.tile([1.0, 0.1], (9, 1))
        subs = RectSet(np.zeros((9, 2)), np.ones((9, 2)))
        params = SAParameters(max_delay=60.0, beta=1.0, beta_max=1.0)
        problem = SAProblem(tree, points, subs, params)
        solution = closest_broker(problem, enforce_load_cap=True)
        loads = problem.loads(solution.assignment)
        # Equal caps of 3: overflow cascades to broker 2 then broker 3.
        assert loads.tolist() == [3, 3, 3]

    def test_filters_cover_assignments(self, rng):
        problem = spread_problem(rng)
        solution = closest_broker(problem, enforce_load_cap=True)
        for j in range(problem.num_subscribers):
            leaf = int(solution.assignment[j])
            assert solution.filters[leaf].contains_subscription(
                problem.subscriptions.rect(j))


class TestBalance:
    def test_achieves_best_lbf(self, rng):
        problem = spread_problem(rng, beta=1.2, beta_max=1.5)
        solution = balance_assignment(problem)
        report = solution.validate()
        assert report.all_assigned
        # Balance may beat even the desired beta.
        assert solution.info["achieved_lbf"] <= 64.0

    def test_lbf_not_worse_than_closest(self, rng):
        problem = spread_problem(rng)
        balance_lbf = problem.load_balance_factor(
            balance_assignment(problem).assignment)
        closest_lbf = problem.load_balance_factor(
            closest_broker(problem, enforce_load_cap=False).assignment)
        assert balance_lbf <= closest_lbf + 1e-9

    def test_latency_respected(self, rng):
        problem = spread_problem(rng, max_delay=0.8)
        solution = balance_assignment(problem)
        delays = problem.delays(solution.assignment)
        finite = delays[np.isfinite(delays)]
        assert (finite <= 0.8 + 1e-6).all()

    def test_ignores_event_space(self, rng):
        """Balance never looks at subscriptions: permuting them changes
        nothing about the assignment."""
        problem = spread_problem(rng)
        shuffled = SAProblem(
            problem.tree, problem.subscriber_points,
            problem.subscriptions.take(
                np.random.default_rng(1).permutation(
                    problem.num_subscribers)),
            problem.params)
        a = balance_assignment(problem).assignment
        b = balance_assignment(shuffled).assignment
        assert np.array_equal(a, b)
