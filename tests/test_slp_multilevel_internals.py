"""Tests for multi-level SLP internals: rebalance, widening, escalation."""

import numpy as np
import pytest

from repro import SAParameters, SAProblem, build_one_level_tree
from repro.core.slp.assign_flow import assign_subscriptions
from repro.core.slp.multilevel import _global_rebalance
from repro.core.slp.view import SLPView
from repro.geometry import RectSet
from repro.network import BrokerTree


def overloaded_problem():
    """3 brokers; every subscriber latency-feasible everywhere."""
    tree = build_one_level_tree(
        np.zeros(2), np.array([[1.0, 0.0], [1.1, 0.0], [0.9, 0.0]]))
    m = 30
    points = np.tile([1.0, 0.05], (m, 1))
    centers = np.random.default_rng(0).uniform(10, 90, size=(m, 2))
    subs = RectSet(centers, centers + 1.0)
    params = SAParameters(max_delay=2.0, beta=1.2, beta_max=1.5)
    return SAProblem(tree, points, subs, params)


class TestGlobalRebalance:
    def test_noop_when_within_caps(self):
        problem = overloaded_problem()
        # 10 subscribers per leaf: perfectly balanced.
        assignment = problem.tree.leaves[np.arange(30) % 3]
        info = {}
        out = _global_rebalance(problem, assignment, info)
        assert np.array_equal(out, assignment)
        assert "rebalanced" not in info

    def test_repairs_overload(self):
        problem = overloaded_problem()
        # Everyone piled on the first leaf: lbf = 3 >> beta_max.
        assignment = np.full(30, problem.tree.leaves[0])
        info = {}
        out = _global_rebalance(problem, assignment, info)
        assert info["rebalanced"] > 0
        lbf = problem.load_balance_factor(out)
        assert lbf <= problem.params.beta_max + 1e-9
        assert (out >= 0).all()

    def test_respects_latency_feasibility(self):
        problem = overloaded_problem()
        assignment = np.full(30, problem.tree.leaves[0])
        out = _global_rebalance(problem, assignment, {})
        for j in range(30):
            row = problem.tree.leaf_row(int(out[j]))
            assert problem.feasible_leaf[row, j]

    def test_preserves_unmoved_majority(self):
        """Only the excess moves; subscribers under the cap stay put."""
        problem = overloaded_problem()
        assignment = np.full(30, problem.tree.leaves[0])
        out = _global_rebalance(problem, assignment, {})
        cap = int(np.floor(problem.params.beta_max / 3 * 30))
        stayed = int((out == problem.tree.leaves[0]).sum())
        assert stayed >= cap - 1


class TestCoverageWidening:
    def make_view(self):
        """2 targets; target 1's filter covers nobody, caps force its use."""
        m = 8
        centers = np.full((m, 2), 50.0)
        subs = RectSet(centers, centers + 1.0)
        return SLPView(
            subscriptions=subs,
            network_points=np.zeros((m, 3)),
            feasible=np.ones((2, m), dtype=bool),
            kappas_effective=np.array([0.5, 0.5]),
            alpha=2,
            beta=1.0,
            beta_max=1.0,
        )

    def test_stranded_use_latency_feasible_targets(self):
        view = self.make_view()
        covering = RectSet(np.array([[49.0, 49.0]]), np.array([[52.0, 52.0]]))
        filters = [covering, RectSet.empty(2)]  # target 1 covers nothing
        outcome = assign_subscriptions(view, filters)
        # Caps of 4 each force half the subscribers onto target 1, which
        # covers nobody — the widening pass must route them there anyway.
        loads = np.bincount(outcome.target_of, minlength=2)
        assert loads.tolist() == [4, 4]
        assert outcome.feasible

    def test_without_widening_would_be_stuck(self):
        view = self.make_view()
        covering = RectSet(np.array([[49.0, 49.0]]), np.array([[52.0, 52.0]]))
        coverage = view.coverage([covering, RectSet.empty(2)])
        # Sanity: coverage alone only offers target 0.
        assert coverage[1].sum() == 0


class TestStagedEscalation:
    def test_topic_workload_converges(self):
        """Coverage of many distinct (topic, location) cells requires the
        certificate-size search to escalate; the staged cap makes that
        happen within the iteration budget (regression for the RSS
        fallback)."""
        from repro import RssConfig, generate_rss, one_level_problem, slp1
        config = RssConfig(num_subscribers=600, num_brokers=10)
        problem = one_level_problem(generate_rss(seed=3, config=config))
        solution = slp1(problem, seed=1)
        assert not solution.info["filter_assign"].get("fallback", False)
        assert solution.fractional_bandwidth is not None
        assert solution.validate().all_assigned
