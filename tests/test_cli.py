"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


SMALL = ["--subscribers", "150", "--brokers", "5", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "googlegroups"
        assert args.algorithms == ["SLP1", "Gr*"]
        assert args.alpha == 3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithms", "wat"])

    def test_workload_choices(self):
        for wl in ("googlegroups", "rss", "grid"):
            args = build_parser().parse_args(["run", "--workload", wl])
            assert args.workload == wl


class TestCommands:
    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "SLP1" in out
        assert "Gr*" in out

    def test_run_greedy(self, capsys):
        assert main(["run", *SMALL, "--algorithms", "Gr*"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out
        assert "Gr*" in out

    def test_run_multilevel(self, capsys):
        assert main(["run", *SMALL, "--brokers", "9", "--multilevel",
                     "--max-out-degree", "3", "--algorithms", "Gr"]) == 0
        assert "Gr" in capsys.readouterr().out

    def test_run_rss_workload(self, capsys):
        assert main(["run", *SMALL, "--workload", "rss",
                     "--algorithms", "Gr"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_simulate_no_misses(self, capsys):
        code = main(["simulate", *SMALL, "--algorithm", "Gr*",
                     "--events", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "missed deliveries" in out

    def test_dynamic_trajectory(self, capsys):
        assert main(["dynamic", *SMALL, "--horizon", "4",
                     "--reopt-every", "10"]) == 0
        out = capsys.readouterr().out
        assert "initial" in out
        assert "final" in out

    def test_beta_overrides(self, capsys):
        assert main(["run", *SMALL, "--beta", "2.0", "--beta-max", "2.5",
                     "--algorithms", "Gr"]) == 0
