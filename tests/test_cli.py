"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


SMALL = ["--subscribers", "150", "--brokers", "5", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "googlegroups"
        assert args.algorithms == ["SLP1", "Gr*"]
        assert args.alpha == 3

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithms", "wat"])

    def test_workload_choices(self):
        for wl in ("googlegroups", "rss", "grid"):
            args = build_parser().parse_args(["run", "--workload", wl])
            assert args.workload == wl

    def test_runtime_crash_spec(self):
        args = build_parser().parse_args(
            ["runtime", "--crash", "3:10", "--crash", "4:20:50"])
        assert [(o.node, o.start, o.end) for o in args.crash] == [
            (3, 10.0, None), (4, 20.0, 50.0)]

    def test_runtime_bad_crash_spec_rejected(self):
        # Malformed specs and the un-crashable publisher node 0.
        for spec in ("3", "x:10", "3:10:20:30", "3:oops", "0:10"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["runtime", "--crash", spec])


class TestCommands:
    def test_algorithms_lists_registry(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "SLP1" in out
        assert "Gr*" in out

    def test_run_greedy(self, capsys):
        assert main(["run", *SMALL, "--algorithms", "Gr*"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out
        assert "Gr*" in out

    def test_run_multilevel(self, capsys):
        assert main(["run", *SMALL, "--brokers", "9", "--multilevel",
                     "--max-out-degree", "3", "--algorithms", "Gr"]) == 0
        assert "Gr" in capsys.readouterr().out

    def test_run_rss_workload(self, capsys):
        assert main(["run", *SMALL, "--workload", "rss",
                     "--algorithms", "Gr"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_simulate_no_misses(self, capsys):
        code = main(["simulate", *SMALL, "--algorithm", "Gr*",
                     "--events", "500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "missed deliveries" in out

    def test_dynamic_trajectory(self, capsys):
        assert main(["dynamic", *SMALL, "--horizon", "4",
                     "--reopt-every", "10"]) == 0
        out = capsys.readouterr().out
        assert "initial" in out
        assert "final" in out

    def test_beta_overrides(self, capsys):
        assert main(["run", *SMALL, "--beta", "2.0", "--beta-max", "2.5",
                     "--algorithms", "Gr"]) == 0

    def test_runtime_fault_free(self, capsys):
        assert main(["runtime", *SMALL, "--events", "300"]) == 0
        out = capsys.readouterr().out
        assert "events published" in out
        assert "delivery rate" in out

    def test_runtime_crash_with_failover(self, capsys, tmp_path):
        path = tmp_path / "telemetry.json"
        assert main(["runtime", *SMALL, "--events", "300",
                     "--crash", "2:50:200",
                     "--telemetry-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "outage" in out
        assert "failover migrations" in out
        assert path.exists()

    def test_runtime_churn_replay(self, capsys):
        assert main(["runtime", *SMALL, "--events", "200",
                     "--churn-horizon", "4", "--reopt-every", "2"]) == 0
        assert "delivery rate" in capsys.readouterr().out

    def test_runtime_invalid_config_exits_cleanly(self, capsys):
        # Engine-level validation errors surface as CLI errors, not
        # tracebacks: exit code 2 and a one-line message on stderr.
        assert main(["runtime", *SMALL, "--link-loss", "1.5"]) == 2
        assert "link_loss" in capsys.readouterr().err
        assert main(["runtime", *SMALL, "--crash", "99:5"]) == 2
        assert "not a broker" in capsys.readouterr().err

    def test_runtime_max_events_guard(self, capsys):
        assert main(["runtime", *SMALL, "--events", "300",
                     "--max-events", "100"]) == 2
        err = capsys.readouterr().err
        assert "refusing an unbounded replay" in err
        # Within the guard the run proceeds normally.
        assert main(["runtime", *SMALL, "--events", "100",
                     "--max-events", "100"]) == 0

    def test_runtime_duration_guard_aborts(self, capsys, tmp_path):
        # 300 events at the default 1s publish spacing cannot drain
        # inside 2 simulated seconds, so the guard must fire.
        path = tmp_path / "result.json"
        assert main(["runtime", *SMALL, "--events", "300",
                     "--duration", "2.0", "--result-json", str(path)]) == 2
        captured = capsys.readouterr()
        assert "aborted at simulated time" in captured.err
        assert "--duration guard" in captured.err
        import json as json_mod

        payload = json_mod.loads(path.read_text())
        assert payload["aborted"] is True
        assert payload["schema_version"] == 1
        assert set(payload["metadata"]) == {"git_commit", "timestamp_utc",
                                            "host"}

    def test_runtime_result_json_export(self, capsys, tmp_path):
        path = tmp_path / "result.json"
        assert main(["runtime", *SMALL, "--events", "200",
                     "--result-json", str(path)]) == 0
        import json as json_mod

        payload = json_mod.loads(path.read_text())
        assert payload["kind"] == "runtime_result"
        assert payload["aborted"] is False
        assert payload["delivery_rate"] == 1.0
        assert sum(payload["deliveries"]) > 0


class TestVerifyCommand:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["verify", *SMALL, "--algorithms", "Gr*",
                     "--events", "200", "--mc-samples", "40000"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "oracle:matcher" in out
        assert "oracle:runtime" in out
        assert "FAILED" not in out

    def test_skip_oracles_runs_only_checks(self, capsys):
        assert main(["verify", *SMALL, "--algorithms", "Gr",
                     "--skip-oracles"]) == 0
        out = capsys.readouterr().out
        assert "oracle:" not in out

    def test_all_checks_mode(self, capsys):
        assert main(["verify", *SMALL, "--algorithms", "Gr*",
                     "--checks", "all", "--skip-oracles"]) == 0
        assert "load" in capsys.readouterr().out

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--algorithms", "wat"])

    def test_unknown_corruption_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--corrupt", "wat"])

    def test_corrupt_nesting_exits_two(self, capsys):
        assert main(["verify", *SMALL, "--algorithms", "Gr*",
                     "--corrupt", "nesting", "--skip-oracles"]) == 2
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "nesting" in captured.err

    def test_corrupt_latency_exits_two(self, capsys):
        assert main(["verify", *SMALL, "--algorithms", "Gr*",
                     "--corrupt", "latency", "--skip-oracles"]) == 2
        assert "latency" in capsys.readouterr().err


class TestProfileCommand:
    TINY = ["--subscribers", "120", "--brokers", "4", "--seed", "3"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.algorithm == "SLP1"
        assert args.repeats == 3
        assert args.tolerance == 0.30
        assert args.json is None
        assert args.check_against is None

    def test_profile_smoke(self, capsys):
        assert main(["profile", *self.TINY, "--repeats", "1",
                     "--algorithm", "Gr*"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert "total" in out
        assert "calibration" in out

    def test_profile_json_payload(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["profile", *self.TINY, "--repeats", "1",
                     "--algorithm", "SLP1", "--json", str(path)]) == 0
        import json as json_mod

        payload = json_mod.loads(path.read_text())
        assert payload["algorithm"] == "SLP1"
        assert payload["total_seconds"] > 0
        assert payload["calibration_seconds"] > 0
        names = {stage["name"] for stage in payload["stages"]}
        assert {"filtergen", "lp_solve", "assign"} <= names
        assert payload["metadata"]["host"]["python"]
        assert payload["metrics"]["feasible"] in (True, False)

    def test_check_against_passes_against_self(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        assert main(["profile", *self.TINY, "--repeats", "1",
                     "--algorithm", "Gr*", "--json", str(path)]) == 0
        # Wide tolerance: a micro run's wall-clock jitters far more than
        # a real benchmark's; this asserts the gate plumbing, not timing.
        assert main(["profile", *self.TINY, "--repeats", "1",
                     "--algorithm", "Gr*", "--tolerance", "5.0",
                     "--check-against", str(path)]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_check_against_regression_exits_three(self, tmp_path, capsys):
        import json as json_mod

        path = tmp_path / "baseline.json"
        assert main(["profile", *self.TINY, "--repeats", "1",
                     "--algorithm", "Gr*", "--json", str(path)]) == 0
        baseline = json_mod.loads(path.read_text())
        # Shrink the baseline 10x: the rerun now "regresses" far past 30%.
        baseline["total_seconds"] /= 10.0
        for stage in baseline["stages"]:
            stage["seconds"] /= 10.0
        path.write_text(json_mod.dumps(baseline))
        assert main(["profile", *self.TINY, "--repeats", "1",
                     "--algorithm", "Gr*",
                     "--check-against", str(path)]) == 3
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "perf regression" in captured.err


class TestServeCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7411
        assert args.queue_capacity == 1024
        assert args.reopt_threshold == 64
        assert args.reopt_poll == 0.25
        assert args.reopt_algorithm == "SLP1"
        assert args.run_for is None

    def test_loadgen_parser_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.active == 100
        assert args.publishers == 4
        assert args.events == 2000
        assert args.rate == 500.0
        assert args.min_delivery_rate == 0.0
        assert args.min_reopts == 0
        assert args.json is None

    def test_serve_run_for_smoke(self, capsys):
        assert main(["serve", *SMALL, "--port", "0",
                     "--run-for", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "serving" in out
        assert "active_subscribers" in out

    def test_loadgen_active_beyond_population_exits_two(self, capsys):
        assert main(["loadgen", *SMALL, "--active", "151"]) == 2
        assert "exceeds the population" in capsys.readouterr().err

    def test_loadgen_unreachable_daemon_exits_two(self, capsys):
        # Nothing listens on a fresh ephemeral port we immediately close.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        assert main(["loadgen", *SMALL, "--active", "2", "--events", "1",
                     "--port", str(free_port)]) == 2
        assert "cannot reach the daemon" in capsys.readouterr().err
