"""End-to-end aggregation equivalence (the scaling mode's contract).

Two guarantees, both on fixed seeds at small ``m`` where the exact
pipeline is affordable:

* **threshold 0 is bit-identical** — a disabled aggregation config
  (``max_group_size=0``) returns before any RNG use and runs exactly
  the unaggregated calls, so assignments *and* filters hash
  (sha256-)equal to the plain pipeline, for SLP1 and multilevel SLP;
* **aggregation is a bounded approximation** — forced aggregation
  (groups of <= 8) still passes ``verify_solution`` and lands within
  ``COST_BOUND`` of the exact pipeline's total bandwidth.  The bound is
  empirical, not worst-case: measured ratios on these workloads span
  0.92-1.40x (aggregation sometimes *wins* — the LP sees a smaller,
  denser model), documented in DESIGN.md's approximation contract.
"""

import hashlib

import numpy as np
import pytest

from repro.core.slp import AggregationConfig, slp, slp1
from repro.metrics import total_bandwidth
from repro.verify import guaranteed_checks, verify_solution
from repro.workloads import (
    GoogleGroupsConfig,
    generate_google_groups,
    multilevel_problem,
    one_level_problem,
)

DISABLED = AggregationConfig(max_group_size=0)
FORCED = AggregationConfig(max_group_size=8, min_subscribers=1)

#: Documented approximation bound: forced-aggregation total bandwidth
#: stays within this factor of the exact pipeline on the fixed seeds.
COST_BOUND = 1.5

M = 300
SEEDS = (1, 2)


def one_level(seed):
    workload = generate_google_groups(
        seed, GoogleGroupsConfig(num_subscribers=M, num_brokers=10))
    return one_level_problem(workload)


def multilevel(seed):
    workload = generate_google_groups(
        seed, GoogleGroupsConfig(num_subscribers=M, num_brokers=10))
    return multilevel_problem(workload, max_out_degree=4, seed=seed)


def solution_digest(solution):
    """sha256 over the assignment and every leaf filter's rectangles."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(solution.assignment,
                                  dtype=np.int64).tobytes())
    for node in sorted(solution.filters):
        filt = solution.filters[node]
        h.update(np.int64(node).tobytes())
        h.update(np.ascontiguousarray(filt.rects.lo).tobytes())
        h.update(np.ascontiguousarray(filt.rects.hi).tobytes())
    return h.hexdigest()


@pytest.mark.parametrize("seed", SEEDS)
def test_slp1_threshold_zero_is_bit_identical(seed):
    problem = one_level(seed)
    plain = slp1(problem, seed=seed)
    disabled = slp1(problem, seed=seed, aggregation=DISABLED)
    assert solution_digest(disabled) == solution_digest(plain)
    assert disabled.fractional_bandwidth == plain.fractional_bandwidth
    assert disabled.info["aggregation"]["identity"] is True


def test_slp_threshold_zero_is_bit_identical():
    seed = SEEDS[0]
    problem = multilevel(seed)
    plain = slp(problem, seed=seed)
    disabled = slp(problem, seed=seed, aggregation=DISABLED)
    assert solution_digest(disabled) == solution_digest(plain)
    assert "aggregated_levels" not in disabled.info


@pytest.mark.parametrize("seed", SEEDS)
def test_aggregated_slp1_is_verified_and_cost_bounded(seed):
    problem = one_level(seed)
    exact = slp1(problem, seed=seed)
    aggregated = slp1(problem, seed=seed, aggregation=FORCED)

    report = verify_solution(problem, aggregated,
                             guaranteed_checks("SLP1", aggregated))
    assert report.ok, report.summary(5)
    assert aggregated.info["aggregation"]["identity"] is False
    assert aggregated.info["aggregation"]["compression"] > 1.0

    ratio = total_bandwidth(aggregated.filters) \
        / total_bandwidth(exact.filters)
    assert ratio <= COST_BOUND, f"cost ratio {ratio:.4f} > {COST_BOUND}"


def test_aggregated_slp_is_verified_and_cost_bounded():
    seed = SEEDS[0]
    problem = multilevel(seed)
    exact = slp(problem, seed=seed)
    aggregated = slp(problem, seed=seed, aggregation=FORCED)

    report = verify_solution(problem, aggregated,
                             guaranteed_checks("SLP", aggregated))
    assert report.ok, report.summary(5)
    assert aggregated.info.get("aggregated_levels", 0) >= 1

    ratio = total_bandwidth(aggregated.filters) \
        / total_bandwidth(exact.filters)
    assert ratio <= COST_BOUND, f"cost ratio {ratio:.4f} > {COST_BOUND}"
