"""Tests for the joint topology optimization extension."""

import numpy as np
import pytest

from repro import (
    GoogleGroupsConfig,
    SAParameters,
    generate_google_groups,
    offline_greedy,
)
from repro.network import BrokerTree, build_hierarchical_tree
from repro.network.topology import optimize_topology, reattach


def simple_tree():
    """pub(0) -> 1 -> 2, pub -> 3."""
    positions = np.array([[0.0, 0], [1.0, 0], [2.0, 0], [0.0, 1]])
    parents = np.array([-1, 0, 1, 0])
    return BrokerTree(positions, parents)


class TestReattach:
    def test_basic_move(self):
        tree = simple_tree()
        moved = reattach(tree, 2, 3)
        assert moved is not None
        assert int(moved.parents[2]) == 3
        assert moved.num_brokers == 3

    def test_cannot_move_publisher(self):
        assert reattach(simple_tree(), 0, 1) is None

    def test_cannot_attach_to_self(self):
        assert reattach(simple_tree(), 1, 1) is None

    def test_cannot_attach_to_descendant(self):
        assert reattach(simple_tree(), 1, 2) is None

    def test_noop_rejected(self):
        assert reattach(simple_tree(), 2, 1) is None

    def test_move_changes_leaf_set(self):
        tree = simple_tree()
        moved = reattach(tree, 2, 3)
        # Node 1 becomes a leaf; node 3 becomes internal.
        assert moved.is_leaf(1)
        assert not moved.is_leaf(3)


class TestOptimizeTopology:
    @pytest.fixture(scope="class")
    def instance(self):
        config = GoogleGroupsConfig(num_subscribers=250, num_brokers=12,
                                    interest_skew="H", broad_interests="L")
        workload = generate_google_groups(seed=6, config=config)
        rng = np.random.default_rng(0)
        tree = build_hierarchical_tree(workload.publisher,
                                       workload.broker_points, 4, rng)
        params = SAParameters(alpha=3, max_delay=0.6, beta=2.0,
                              beta_max=2.5)
        return workload, tree, params

    def test_never_worse_than_initial(self, instance):
        workload, tree, params = instance
        result = optimize_topology(
            tree, workload.subscriber_points, workload.subscriptions,
            params, offline_greedy, move_budget=15, seed=1)
        assert result.objective <= result.initial_objective + 1e-9
        assert result.moves_tried <= 15

    def test_history_monotone(self, instance):
        workload, tree, params = instance
        result = optimize_topology(
            tree, workload.subscriber_points, workload.subscriptions,
            params, offline_greedy, move_budget=12, seed=2)
        assert all(b <= a + 1e-9 for a, b in zip(result.history,
                                                 result.history[1:]))

    def test_final_solution_valid(self, instance):
        workload, tree, params = instance
        result = optimize_topology(
            tree, workload.subscriber_points, workload.subscriptions,
            params, offline_greedy, move_budget=10, seed=3)
        report = result.solution.validate()
        assert report.all_assigned
        assert report.nesting_ok

    def test_respects_out_degree(self, instance):
        workload, tree, params = instance
        result = optimize_topology(
            tree, workload.subscriber_points, workload.subscriptions,
            params, offline_greedy, move_budget=25, seed=4,
            max_out_degree=4)
        final = result.tree
        # The publisher's degree may exceed the bound only if it already
        # did initially; moves themselves respect it.
        for node in range(1, final.num_nodes):
            if len(tree.children(node)) <= 4:
                assert len(final.children(node)) <= 4

    def test_improvement_metric(self, instance):
        workload, tree, params = instance
        result = optimize_topology(
            tree, workload.subscriber_points, workload.subscriptions,
            params, offline_greedy, move_budget=20, seed=5)
        assert 0.0 <= result.improvement <= 1.0
