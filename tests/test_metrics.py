"""Tests for bandwidth, delay, and load metrics plus reports."""

import numpy as np
import pytest

from repro import (
    SAParameters,
    SAProblem,
    UniformEvents,
    build_one_level_tree,
    evaluate_solution,
    filters_from_assignment,
    total_bandwidth,
)
from repro.core.problem import SASolution
from repro.geometry import Rect, RectSet
from repro.metrics import (
    broker_bandwidths,
    delay_scatter,
    load_boxplot,
    load_cdf,
    load_stdev,
    max_delay,
    overloaded_fraction,
    rms_delay,
)
from repro.pubsub import Filter


def make_problem():
    tree = build_one_level_tree(np.zeros(2),
                                np.array([[1.0, 0.0], [2.0, 0.0]]))
    points = np.array([[1.0, 0.0], [1.5, 0.0], [2.0, 0.0], [2.5, 0.0]])
    subs = RectSet(np.zeros((4, 2)), np.ones((4, 2)) * np.arange(1, 5)[:, None])
    params = SAParameters(max_delay=1.0, beta=1.5, beta_max=2.0)
    return SAProblem(tree, points, subs, params)


class TestBandwidth:
    def test_total_is_sum_of_union_volumes(self):
        filters = {
            1: Filter.from_rects([Rect([0, 0], [2, 2]), Rect([1, 0], [3, 2])]),
            2: Filter.from_rects([Rect([0, 0], [1, 1])]),
        }
        assert total_bandwidth(filters) == pytest.approx(6.0 + 1.0)

    def test_empty_filters_zero(self):
        filters = {1: Filter.empty(2)}
        assert total_bandwidth(filters) == 0.0

    def test_per_broker(self):
        filters = {1: Filter.from_rects([Rect([0, 0], [2, 3])]),
                   2: Filter.empty(2)}
        per = broker_bandwidths(filters)
        assert per[1] == pytest.approx(6.0)
        assert per[2] == 0.0

    def test_with_distribution(self):
        dist = UniformEvents(Rect([0, 0], [10, 10]))
        filters = {1: Filter.from_rects([Rect([0, 0], [5, 10])])}
        assert total_bandwidth(filters, dist) == pytest.approx(50.0)


class TestDelayMetrics:
    def test_rms_zero_for_best_assignment(self):
        problem = make_problem()
        best_rows = problem.leaf_latency.argmin(axis=0)
        assignment = problem.tree.leaves[best_rows]
        assert rms_delay(problem, assignment) == pytest.approx(0.0)

    def test_rms_and_max_for_detours(self):
        problem = make_problem()
        worst_rows = problem.leaf_latency.argmax(axis=0)
        assignment = problem.tree.leaves[worst_rows]
        assert rms_delay(problem, assignment) > 0
        assert max_delay(problem, assignment) >= rms_delay(problem, assignment)

    def test_unassigned_all_inf(self):
        problem = make_problem()
        assignment = np.full(4, -1)
        assert rms_delay(problem, assignment) == np.inf

    def test_scatter_shape(self):
        problem = make_problem()
        assignment = problem.tree.leaves[
            problem.leaf_latency.argmin(axis=0)]
        scatter = delay_scatter(problem, assignment)
        assert scatter.shape == (4, 2)
        assert np.allclose(scatter[:, 0], problem.shortest_latency)


class TestLoadMetrics:
    def test_stdev(self):
        problem = make_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0]] * 4)
        assert load_stdev(problem, assignment) == pytest.approx(2.0)

    def test_boxplot_stats(self):
        problem = make_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[0], leaves[0], leaves[1]])
        stats = load_boxplot(problem, assignment)
        assert stats.minimum == 1
        assert stats.maximum == 3
        assert stats.desired_cap == pytest.approx(1.5 * 0.5 * 4)
        assert stats.maximum_cap == pytest.approx(2.0 * 0.5 * 4)

    def test_cdf_monotone(self):
        problem = make_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[1], leaves[1], leaves[1]])
        cdf = load_cdf(problem, assignment)
        assert (np.diff(cdf[:, 0]) >= 0).all()
        assert cdf[-1, 1] == pytest.approx(1.0)

    def test_overloaded_fraction(self):
        problem = make_problem()  # caps at beta_max: 2 * 0.5 * 4 = 4
        leaves = problem.tree.leaves
        balanced = np.array([leaves[0], leaves[0], leaves[1], leaves[1]])
        assert overloaded_fraction(problem, balanced) == 0.0
        # Pile 5 subscribers onto one broker via a bigger instance.
        skewed = np.array([leaves[0]] * 4)
        assert overloaded_fraction(problem, skewed) == 0.0  # 4 <= 4
        problem2 = make_problem()
        problem2.params = SAParameters(max_delay=1.0, beta=1.0,
                                       beta_max=1.0)
        assert overloaded_fraction(problem2, skewed) == pytest.approx(0.5)


class TestSolutionReport:
    def test_evaluate_end_to_end(self):
        problem = make_problem()
        rows = problem.leaf_latency.argmin(axis=0)
        assignment = problem.tree.leaves[rows]
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        solution = SASolution(problem, assignment, filters,
                              fractional_bandwidth=1.0)
        report = evaluate_solution("test", solution, runtime_seconds=0.5)
        assert report.algorithm == "test"
        assert report.bandwidth > 0
        assert report.fractional_bandwidth == 1.0
        assert report.runtime_seconds == 0.5
        row = report.as_row()
        assert row["algorithm"] == "test"
        assert "bandwidth" in row
