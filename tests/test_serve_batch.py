"""Batched publish path of the live broker and gateway.

``publish_batch`` must be an exact aggregation of sequential
``publish`` calls — same counts, same queue contents, same order —
while reading a single routing-table snapshot.  The gateway's
``publish_batch`` op and the micro-batched pump must preserve
per-subscriber delivery order and sequence numbering on the wire.
"""

import asyncio

import numpy as np
import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon, ServeError
from repro.serve.broker import DeliveryQueue, LiveBroker
from repro.workloads import GridConfig, generate_grid, one_level_problem


@pytest.fixture(scope="module")
def problem():
    workload = generate_grid(3, GridConfig(num_subscribers=60, num_brokers=6))
    return one_level_problem(workload)


def make_broker(problem, subscribers=range(0, 40)):
    broker = LiveBroker(problem, queue_capacity=256, seed=0)
    for j in subscribers:
        broker.subscribe(int(j))
    return broker


def event_batch(problem, n, seed=0):
    rng = np.random.default_rng(seed)
    lo, hi = problem.subscriptions.lo.min(0), problem.subscriptions.hi.max(0)
    return rng.uniform(lo, hi, size=(n, problem.event_dim))


def drain(queue):
    items = []
    while True:
        try:
            item = queue.get_nowait()
        except asyncio.QueueEmpty:
            return items
        if DeliveryQueue.is_close(item):
            return items
        items.append(item)


class TestBrokerBatch:
    def test_batch_equals_sequential_publishes(self, problem):
        pts = event_batch(problem, 64)
        seq_broker = make_broker(problem)
        summaries = [seq_broker.publish(p, sent_at=1.5, event_id=i)
                     for i, p in enumerate(pts)]
        batch_broker = make_broker(problem)
        summary = batch_broker.publish_batch(
            pts, sent_at=1.5, event_ids=list(range(len(pts))))

        for key in ("matched", "delivered", "dropped", "missed"):
            assert summary[key] == sum(s[key] for s in summaries), key
        assert summary["events"] == len(pts)
        assert np.array_equal(seq_broker.deliveries, batch_broker.deliveries)
        assert np.array_equal(seq_broker.node_entries,
                              batch_broker.node_entries)
        assert seq_broker.matched == batch_broker.matched
        assert seq_broker.missed == batch_broker.missed

        # Queue contents: same events, same order, same metadata.
        for j in range(40):
            seq_items = drain(seq_broker.queue(j)._queue)
            batch_items = drain(batch_broker.queue(j)._queue)
            assert len(seq_items) == len(batch_items)
            for (p1, s1, e1), (p2, s2, e2) in zip(seq_items, batch_items):
                assert np.array_equal(p1, p2)
                assert s1 == s2 == 1.5
                assert e1 == e2

    def test_empty_batch_is_a_no_op(self, problem):
        broker = make_broker(problem)
        summary = broker.publish_batch([])
        assert summary == {"matched": 0, "delivered": 0, "dropped": 0,
                           "missed": 0, "events": 0}
        assert broker.published == 0

    def test_batch_validation(self, problem):
        broker = make_broker(problem)
        with pytest.raises(ValueError):
            broker.publish_batch([[1.0]])  # wrong dimensionality
        with pytest.raises(ValueError):
            broker.publish_batch([[np.nan] * problem.event_dim])
        with pytest.raises(ValueError):
            broker.publish_batch(event_batch(problem, 3), event_ids=[1, 2])

    def test_route_batch_matches_scalar_route(self, problem):
        broker = make_broker(problem)
        table = broker.routing
        pts = event_batch(problem, 50, seed=3)
        entered_cols, reached_cols = table.route_batch(pts)
        for i, p in enumerate(pts):
            entered, reached = table.route(p)
            batch_entered = {n for n, col in entered_cols.items() if col[i]}
            batch_reached = {n for n, col in reached_cols.items() if col[i]}
            assert batch_entered == set(entered)
            assert batch_reached == reached

    def test_backpressure_accounting_matches(self, problem):
        # A tiny queue overflows identically on either path.
        pts = event_batch(problem, 200, seed=4)

        def overflowed(publish):
            broker = LiveBroker(problem, queue_capacity=4, seed=0)
            for j in range(20):
                broker.subscribe(j)
            publish(broker)
            return (int(broker.drops.sum()), broker.deliveries.copy())

        seq_drops, seq_deliv = overflowed(
            lambda b: [b.publish(p) for p in pts])
        batch_drops, batch_deliv = overflowed(
            lambda b: b.publish_batch(pts))
        assert seq_drops == batch_drops > 0
        assert np.array_equal(seq_deliv, batch_deliv)


def serve_config(**overrides):
    defaults = dict(port=0, reopt_threshold=10**9)
    defaults.update(overrides)
    return ServeConfig(**defaults)


async def with_daemon(problem, body, **config_overrides):
    daemon = ServeDaemon(problem, serve_config(**config_overrides))
    await daemon.start()
    try:
        return await body(daemon)
    finally:
        await daemon.stop()


class TestGatewayBatch:
    def test_publish_batch_roundtrip_and_order(self, problem):
        async def body(daemon):
            client = await ServeClient.connect("127.0.0.1", daemon.port)
            async with client:
                await client.subscribe(0)
                sub = problem.subscriptions.take(np.array([0]))
                inside = (sub.lo[0] + sub.hi[0]) / 2.0
                pts = [list(inside)] * 5
                reply = await client.publish_batch(
                    pts, sent_at=2.0, event_ids=list(range(5)))
                assert reply["events"] == 5
                assert reply["delivered"] >= 5  # at least subscriber 0
                got = [await asyncio.wait_for(client.events.get(), 5.0)
                       for _ in range(5)]
                mine = [e for e in got if e["subscriber"] == 0]
                assert [e["eventId"] for e in mine] == list(range(len(mine)))
                seqs = [e["seq"] for e in mine]
                assert seqs == sorted(seqs)
                assert all(e["sentAt"] == 2.0 for e in mine)
        asyncio.run(with_daemon(problem, body))

    def test_publish_batch_is_idempotent(self, problem):
        async def body(daemon):
            client = await ServeClient.connect("127.0.0.1", daemon.port)
            async with client:
                pts = event_batch(problem, 8).tolist()
                first = await client.request("publish_batch", points=pts,
                                             key="batch-1")
                replay = await client.request("publish_batch", points=pts,
                                              key="batch-1")
                assert replay["idempotent_replay"] is True
                assert replay["matched"] == first["matched"]
                stats = await client.stats()
                assert stats["published"] == 8  # applied exactly once
        asyncio.run(with_daemon(problem, body))

    def test_publish_batch_validation_errors(self, problem):
        async def body(daemon):
            client = await ServeClient.connect("127.0.0.1", daemon.port)
            async with client:
                with pytest.raises(ServeError):
                    await client.request("publish_batch", points="nope")
                with pytest.raises(ServeError):
                    await client.request("publish_batch",
                                         points=[[1.0, 2.0]],
                                         eventIds=[1, 2])
                with pytest.raises(ServeError):
                    await client.request("publish_batch",
                                         points=[[1.0, 2.0]],
                                         sentAt="late")
                # The connection survives every rejection.
                assert (await client.ping())["pong"] is True
        asyncio.run(with_daemon(problem, body))

    def test_pump_microbatch_preserves_full_stream(self, problem):
        # Many events for one subscriber queued at once: the pump must
        # deliver all of them, in order, with contiguous seq numbers.
        async def body(daemon):
            client = await ServeClient.connect("127.0.0.1", daemon.port)
            async with client:
                await client.subscribe(3)
                sub = problem.subscriptions.take(np.array([3]))
                inside = list((sub.lo[0] + sub.hi[0]) / 2.0)
                n = 300  # several _PUMP_BATCH windows
                await client.publish_batch([inside] * n,
                                           event_ids=list(range(n)))
                mine = []
                while len(mine) < n:
                    event = await asyncio.wait_for(client.events.get(), 5.0)
                    if event["subscriber"] == 3:
                        mine.append(event)
                assert [e["eventId"] for e in mine] == list(range(n))
                assert [e["seq"] for e in mine] == list(range(n))
        asyncio.run(with_daemon(problem, body))
