"""Empirical checks of the paper's theoretical claims (appendix lemmas).

These don't prove the lemmas, but they verify that the implementation
exhibits the behaviour the analysis predicts — a useful guard against
implementation drift (e.g. a wrong rounding exponent would break the
1/2 success-probability claim immediately).
"""

import math

import numpy as np
import pytest

from repro import SAParameters, SAProblem, build_one_level_tree
from repro.core.greedy import _TreeFilterState
from repro.core.slp.lp_relax import lp_relax
from repro.core.slp.sampling import FilterAssignConfig, filter_assign
from repro.core.slp.view import SLPView
from repro.geometry import RectSet
from repro.network import BrokerTree


def clustered_view(rng, m=150, brokers=5, clusters=5):
    anchors = rng.uniform(0, 100, size=(clusters, 2))
    which = rng.integers(0, clusters, size=m)
    centers = anchors[which] + rng.uniform(-2, 2, size=(m, 2))
    half = rng.uniform(0.2, 1.0, size=(m, 2))
    return SLPView(
        subscriptions=RectSet(centers - half, centers + half),
        network_points=rng.normal(size=(m, 5)),
        feasible=np.ones((brokers, m), dtype=bool),
        kappas_effective=np.full(brokers, 1.0 / brokers),
        alpha=3, beta=1.5, beta_max=2.0)


class TestRoundingSuccessProbability:
    """LPRelax's rounding covers Sa with probability >= 1/2 per attempt,
    so the attempt count is geometric with mean <= 2."""

    def test_mean_attempts_small(self):
        rng = np.random.default_rng(0)
        attempts = []
        for seed in range(12):
            local = np.random.default_rng(seed)
            view = clustered_view(local, m=60, brokers=4)
            candidates_rng = np.random.default_rng(seed + 100)
            from repro.core.slp.filtergen import generate_candidate_filters
            rects = generate_candidate_filters(view.subscriptions, 4,
                                               candidates_rng)
            outcome = lp_relax(view.subscriptions, view.feasible,
                               np.ones(60, dtype=bool), rects,
                               view.kappas_effective, 3, 1.5, rng)
            assert outcome is not None
            attempts.append(outcome.rounding_attempts)
            assert outcome.forced_rects == 0
        assert np.mean(attempts) <= 3.0


class TestEpsilonExpansionSemantics:
    """The returned filters are the eps-expanded ones and cover all of S;
    a certificate's raw (unexpanded) cover would generally miss members."""

    def test_expanded_covers_everyone(self):
        rng = np.random.default_rng(1)
        view = clustered_view(rng)
        result = filter_assign(view, rng)
        assert len(view.uncovered(result.filters)) == 0

    def test_certificate_size_within_sampling_bound(self):
        rng = np.random.default_rng(2)
        view = clustered_view(rng, m=200)
        result = filter_assign(view, rng)
        if result.used_fallback:
            pytest.skip("fallback: no certificate found")
        g = result.info.get("final_g")
        size = result.info.get("certificate_size")
        if g is None or size is None:
            pytest.skip("accepted via best-candidate path")
        config = FilterAssignConfig()
        bound = math.ceil(config.sample_factor * g * math.log(max(g, 2)))
        assert size <= bound


class TestGreedyNestingInvariant:
    """After any commit sequence, every slot rectangle of a node is
    contained in some slot of its parent (the greedy nesting invariant)."""

    def multilevel_problem(self, rng):
        positions = np.vstack([np.zeros(2), rng.uniform(0, 5, size=(7, 2))])
        parents = np.array([-1, 0, 0, 1, 1, 2, 2, 3])
        tree = BrokerTree(positions, parents)
        m = 40
        points = rng.uniform(0, 5, size=(m, 2))
        centers = rng.uniform(0, 100, size=(m, 2))
        half = rng.uniform(0.5, 8, size=(m, 2))
        subs = RectSet(centers - half, centers + half)
        params = SAParameters(alpha=2, max_delay=3.0, beta=3.0,
                              beta_max=4.0)
        return SAProblem(tree, points, subs, params)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_invariant_holds(self, seed):
        rng = np.random.default_rng(seed)
        problem = self.multilevel_problem(rng)
        state = _TreeFilterState(problem)
        leaves = problem.tree.leaves
        for j in range(problem.num_subscribers):
            row = int(rng.integers(len(leaves)))
            state.commit(row, problem.subscriptions.lo[j],
                         problem.subscriptions.hi[j])

        tree = problem.tree
        for node in range(1, tree.num_nodes):
            parent = int(tree.parents[node])
            if parent == 0:
                continue
            for slot in range(int(state.count[node])):
                lo = state.lo[node, slot]
                hi = state.hi[node, slot]
                nested = any(
                    (state.lo[parent, s] <= lo).all()
                    and (hi <= state.hi[parent, s]).all()
                    for s in range(int(state.count[parent])))
                assert nested, (node, slot)

    def test_path_costs_match_commit_effect(self):
        """The advertised cost of the chosen leaf equals the actual volume
        growth caused by committing there."""
        rng = np.random.default_rng(7)
        problem = self.multilevel_problem(rng)
        state = _TreeFilterState(problem)

        def total_volume():
            used = np.arange(state.alpha)[None, :] < state.count[:, None]
            volumes = np.prod(np.maximum(state.hi - state.lo, 0.0), axis=2)
            return float(np.where(used, volumes, 0.0).sum())

        for j in range(problem.num_subscribers):
            rows = np.arange(len(problem.tree.leaves))
            costs = state.path_costs(rows, problem.subscriptions.lo[j],
                                     problem.subscriptions.hi[j])
            pick = int(costs.argmin())
            before = total_volume()
            state.commit(pick, problem.subscriptions.lo[j],
                         problem.subscriptions.hi[j])
            growth = total_volume() - before
            assert growth == pytest.approx(costs[pick], rel=1e-9, abs=1e-9)
