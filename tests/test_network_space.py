"""Tests for the network (latency) space helpers and embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    Region,
    RegionModel,
    default_world_regions,
    distance,
    distances_from_point,
    pairwise_distances,
)


class TestDistances:
    def test_distance(self):
        assert distance(np.array([0, 0]), np.array([3, 4])) == pytest.approx(5.0)

    def test_distances_from_point(self):
        points = np.array([[3.0, 4.0], [0.0, 0.0], [6.0, 8.0]])
        d = distances_from_point(np.zeros(2), points)
        assert np.allclose(d, [5, 0, 10])

    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 5))
        b = rng.normal(size=(7, 5))
        fast = pairwise_distances(a, b)
        naive = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        assert np.allclose(fast, naive)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_pairwise_non_negative_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(scale=100, size=(6, 4))
        matrix = pairwise_distances(a, a)
        assert (matrix >= 0).all()
        assert np.allclose(matrix, matrix.T, atol=1e-6)
        assert np.allclose(np.diag(matrix), 0.0, atol=1e-5)


class TestRegionModel:
    def test_default_world_shape(self):
        model = default_world_regions()
        assert model.dim == 5
        assert len(model.regions) == 3
        assert model.weights == (4.0, 1.0, 4.0)

    def test_sample_ratio(self):
        model = default_world_regions()
        rng = np.random.default_rng(0)
        picks = model.region_index(rng, 90_000)
        counts = np.bincount(picks, minlength=3) / 90_000
        assert counts[0] == pytest.approx(4 / 9, abs=0.01)
        assert counts[1] == pytest.approx(1 / 9, abs=0.01)
        assert counts[2] == pytest.approx(4 / 9, abs=0.01)

    def test_intra_vs_inter_region_distances(self):
        model = default_world_regions()
        rng = np.random.default_rng(1)
        asia = model.sample_region(rng, "asia", 50)
        europe = model.sample_region(rng, "europe", 50)
        intra = pairwise_distances(asia, asia).mean()
        inter = pairwise_distances(asia, europe).mean()
        assert inter > 3 * intra

    def test_sample_shapes(self):
        model = default_world_regions()
        points = model.sample(np.random.default_rng(2), 25)
        assert points.shape == (25, 5)

    def test_unknown_region(self):
        model = default_world_regions()
        with pytest.raises(KeyError):
            model.sample_region(np.random.default_rng(0), "atlantis", 1)

    def test_bad_weights_rejected(self):
        region = Region("x", (0.0, 0.0), 1.0)
        with pytest.raises(ValueError):
            RegionModel((region,), (-1.0,))
        with pytest.raises(ValueError):
            RegionModel((), ())

    def test_region_sample_spread(self):
        region = Region("x", (10.0, 20.0), 0.5)
        points = region.sample(np.random.default_rng(0), 1000)
        assert np.allclose(points.mean(axis=0), [10, 20], atol=0.1)
        assert np.allclose(points.std(axis=0), 0.5, atol=0.05)
