"""Reoptimizer tests: churn triggering, invariant gating, veto behaviour."""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    LiveBroker,
    Reoptimizer,
    ReoptimizerConfig,
    ServeClient,
    ServeConfig,
    ServeDaemon,
)
from repro.workloads import GridConfig, generate_grid, one_level_problem


@pytest.fixture(scope="module")
def problem():
    workload = generate_grid(9, GridConfig(num_subscribers=48, num_brokers=6))
    return one_level_problem(workload)


def run(coro):
    return asyncio.run(coro)


def make_reoptimizer(problem, *, validator=None, **config_overrides):
    defaults = dict(churn_threshold=8, poll_interval=0.01)
    defaults.update(config_overrides)
    broker = LiveBroker(problem)
    reopt = Reoptimizer(broker, ReoptimizerConfig(**defaults),
                        churn_lock=asyncio.Lock(), validator=validator)
    return broker, reopt


class TestConfig:
    @pytest.mark.parametrize("kwargs", [dict(churn_threshold=0),
                                        dict(poll_interval=0.0),
                                        dict(min_active=0)])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReoptimizerConfig(**kwargs)


class TestTriggering:
    def test_not_due_below_threshold_or_population(self, problem):
        async def body():
            broker, reopt = make_reoptimizer(problem, churn_threshold=4)
            assert not reopt.due()
            broker.subscribe(0)
            broker.subscribe(1)
            broker.subscribe(2)
            assert not reopt.due()      # 3 churn events < 4
            broker.subscribe(3)
            assert reopt.due()

        run(body())

    def test_min_active_guard(self, problem):
        async def body():
            broker, reopt = make_reoptimizer(problem, churn_threshold=2,
                                             min_active=4)
            broker.subscribe(0)
            broker.subscribe(1)
            broker.unsubscribe(1)       # 3 churn events, 1 active
            assert not reopt.due()

        run(body())

    def test_commit_resets_churn_and_swaps_routing(self, problem):
        async def body():
            broker, reopt = make_reoptimizer(problem)
            for j in range(10):
                broker.subscribe(j)
            version = broker.routing.version
            info = await reopt.reoptimize_now()
            assert info["committed"] is True
            assert reopt.runs == 1 and reopt.rejected == 0
            assert broker.churn_since_reopt == 0
            assert broker.routing.version == version + 1
            # The fresh table serves exactly the active set.
            assert (broker.routing.assignment >= 0).sum() == 10

        run(body())


class TestInvariantGate:
    def test_default_validator_verifies_and_commits(self, problem):
        """The stock gate runs verify_solution and lets a sound SLP pass."""
        async def body():
            broker, reopt = make_reoptimizer(problem)
            for j in range(12):
                broker.subscribe(j)
            info = await reopt.reoptimize_now()
            assert info["committed"] is True
            assert reopt.last_report is None

        run(body())

    def test_vetoed_solution_keeps_old_routing_table(self, problem):
        async def body():
            broker, reopt = make_reoptimizer(
                problem, validator=lambda sub_problem, solution: False)
            for j in range(10):
                broker.subscribe(j)
            table = broker.routing
            before = broker.manager.assignment.copy()

            info = await reopt.reoptimize_now()
            assert info["committed"] is False
            assert info["migrations"] == 0
            assert reopt.rejected == 1 and reopt.runs == 0
            # Old snapshot still installed, manager state untouched.
            assert broker.routing is table
            assert np.array_equal(broker.manager.assignment, before)
            # Churn is consumed so the loop waits for *new* churn
            # instead of re-solving the same rejected instance forever.
            assert broker.churn_since_reopt == 0

        run(body())

    def test_background_loop_reoptimizes_over_live_churn(self, problem):
        """End-to-end: gateway churn trips the loop, gate verifies, swap."""
        async def body():
            config = ServeConfig(port=0, reopt_threshold=6,
                                 reopt_poll_interval=0.02)
            daemon = ServeDaemon(problem, config)
            await daemon.start()
            try:
                async with await ServeClient.connect(
                        "127.0.0.1", daemon.port) as client:
                    for j in range(12):
                        await client.subscribe(j)
                    for _ in range(200):
                        stats = await client.stats()
                        if stats["reoptimizations"] >= 1:
                            break
                        await asyncio.sleep(0.02)
                    assert stats["reoptimizations"] >= 1
                    assert stats["reopt_rejected"] == 0
                    # Publishing still works against the swapped table.
                    summary = await client.publish([0.5, 0.5])
                    assert summary["missed"] == 0
            finally:
                await daemon.stop()

        run(body())
