"""Tests for the dynamic subscriber assignment extension."""

import numpy as np
import pytest

from repro import GoogleGroupsConfig, generate_google_groups, one_level_problem
from repro.dynamic import (
    ChurnStep,
    DynamicPubSub,
    generate_churn_trace,
)


@pytest.fixture(scope="module")
def population_problem():
    config = GoogleGroupsConfig(num_subscribers=300, num_brokers=6,
                                interest_skew="H", broad_interests="L")
    return one_level_problem(generate_google_groups(seed=4, config=config))


def booted_system(problem, count=100, seed=1):
    system = DynamicPubSub(problem, seed=seed)
    for j in range(count):
        system.arrive(j)
    return system


class TestChurnTrace:
    def test_shapes_and_determinism(self):
        a = generate_churn_trace(200, 10, np.random.default_rng(0))
        b = generate_churn_trace(200, 10, np.random.default_rng(0))
        assert a.horizon == 10
        assert np.array_equal(a.initially_active, b.initially_active)
        for sa, sb in zip(a.steps, b.steps):
            assert np.array_equal(sa.arrivals, sb.arrivals)
            assert np.array_equal(sa.departures, sb.departures)

    def test_active_after_consistency(self):
        trace = generate_churn_trace(150, 20, np.random.default_rng(1),
                                     arrival_rate=6, departure_rate=6)
        active = trace.initially_active.copy()
        for i, step in enumerate(trace.steps):
            # Arrivals were inactive; departures active at sampling time.
            assert not active[step.arrivals].any()
            active[step.arrivals] = True
            assert active[step.departures].all()
            active[step.departures] = False
            assert np.array_equal(active, trace.active_after(i + 1))

    def test_never_empties(self):
        trace = generate_churn_trace(50, 30, np.random.default_rng(2),
                                     initial_active_fraction=0.1,
                                     arrival_rate=0.0, departure_rate=10.0)
        assert trace.active_after(30).sum() >= 1

    def test_growth_with_unbalanced_rates(self):
        trace = generate_churn_trace(400, 20, np.random.default_rng(3),
                                     initial_active_fraction=0.2,
                                     arrival_rate=10.0, departure_rate=1.0)
        assert trace.active_after(20).sum() > trace.initially_active.sum()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            generate_churn_trace(10, 5, rng, initial_active_fraction=0.0)
        with pytest.raises(ValueError):
            generate_churn_trace(10, -1, rng)


class TestDynamicPubSub:
    def test_arrivals_assign_to_feasible_leaves(self, population_problem):
        system = booted_system(population_problem, count=60)
        assignment = system.assignment
        for j in range(60):
            row = population_problem.tree.leaf_row(int(assignment[j]))
            assert population_problem.feasible_leaf[row, j]

    def test_double_arrival_rejected(self, population_problem):
        system = booted_system(population_problem, count=5)
        with pytest.raises(ValueError):
            system.arrive(0)

    def test_depart_frees_capacity(self, population_problem):
        system = booted_system(population_problem, count=50)
        before = system.active_count
        system.depart(0)
        assert system.active_count == before - 1
        with pytest.raises(ValueError):
            system.depart(0)

    def test_filters_grow_only_until_reopt(self, population_problem):
        system = booted_system(population_problem, count=80)
        bandwidth_before = system.bandwidth()
        for j in range(40):
            system.depart(j)
        # Departures never shrink the online filters.
        assert system.bandwidth() == pytest.approx(bandwidth_before)
        # ... but the tight bandwidth drops.
        assert system.bandwidth(tight=True) < bandwidth_before * 1.0001

    def test_drift_is_real(self, population_problem):
        """After churn, online filters are strictly looser than tight ones."""
        system = booted_system(population_problem, count=100)
        trace = generate_churn_trace(300, 12, np.random.default_rng(5),
                                     arrival_rate=8, departure_rate=8)
        # Start from the trace's initial set to keep indices consistent.
        system = DynamicPubSub(population_problem, seed=1)
        for j in np.flatnonzero(trace.initially_active):
            system.arrive(int(j))
        for step in trace.steps:
            system.apply(step)
        snap = system.snapshot()
        assert snap.bandwidth >= snap.tight_bandwidth - 1e-6

    def test_reoptimize_reduces_bandwidth_and_counts_migrations(
            self, population_problem):
        trace = generate_churn_trace(300, 12, np.random.default_rng(5),
                                     arrival_rate=8, departure_rate=8)
        system = DynamicPubSub(population_problem, seed=1)
        for j in np.flatnonzero(trace.initially_active):
            system.arrive(int(j))
        for step in trace.steps:
            system.apply(step)
        drifted = system.bandwidth()
        info = system.reoptimize("Gr*")
        assert info["active"] == system.active_count
        assert info["migrations"] >= 0
        assert system.total_migrations == info["migrations"]
        assert system.bandwidth() <= drifted * 1.05

    def test_reoptimize_empty_system(self, population_problem):
        system = DynamicPubSub(population_problem, seed=0)
        assert system.reoptimize("Gr*")["migrations"] == 0

    def test_reoptimize_preserves_active_set(self, population_problem):
        system = booted_system(population_problem, count=70)
        active_before = set(system.active_indices.tolist())
        system.reoptimize("Gr*")
        assert set(system.active_indices.tolist()) == active_before

    def test_snapshot_fields(self, population_problem):
        system = booted_system(population_problem, count=30)
        snap = system.snapshot()
        assert snap.active_count == 30
        assert snap.bandwidth > 0
        assert snap.lbf > 0
        assert snap.total_migrations == 0

    def test_apply_step_roundtrip(self, population_problem):
        system = booted_system(population_problem, count=30)
        step = ChurnStep(step=0, arrivals=np.array([200, 201]),
                         departures=np.array([0, 1]))
        system.apply(step)
        assert system.active_count == 30
        assert system.assignment[200] >= 0
        assert system.assignment[0] == -1

    def test_load_caps_respected_online(self, population_problem):
        """Online arrivals respect the (current-population) caps whenever
        candidates allow it."""
        system = booted_system(population_problem, count=120)
        lbf = system.load_balance_factor()
        assert lbf <= population_problem.params.beta_max + 0.5
