"""Churn-trace replay through the discrete-event runtime."""

import numpy as np
import pytest

from repro import (
    ReplayConfig,
    RuntimeConfig,
    UniformEvents,
    replay_churn,
)
from repro.dynamic import generate_churn_trace
from repro.geometry import Rect


DIST = UniformEvents(Rect([0, 0], [100, 100]))


def make_trace(problem, horizon=6, seed=21):
    return generate_churn_trace(problem.num_subscribers, horizon,
                                np.random.default_rng(seed),
                                initial_active_fraction=0.5,
                                arrival_rate=3.0, departure_rate=3.0)


class TestReplay:
    def test_frozen_population_has_no_misses(self, tiny_problem):
        trace = generate_churn_trace(tiny_problem.num_subscribers, 0,
                                     np.random.default_rng(21),
                                     initial_active_fraction=0.5)
        result, system = replay_churn(tiny_problem, trace, DIST,
                                      np.random.default_rng(4), 300)
        assert result.total_missed == 0
        # Inactive subscribers never receive anything.
        inactive = np.flatnonzero(~trace.initially_active)
        assert result.deliveries[inactive].sum() == 0
        assert (system.assignment >= 0).sum() == trace.initially_active.sum()

    def test_churn_steps_applied_on_schedule(self, tiny_problem):
        trace = make_trace(tiny_problem)
        result, system = replay_churn(tiny_problem, trace, DIST,
                                      np.random.default_rng(4), 300)
        arrivals = sum(len(s.arrivals) for s in trace.steps)
        departures = sum(len(s.departures) for s in trace.steps)
        assert result.telemetry.counter("churn_arrivals").value == arrivals
        assert (result.telemetry.counter("churn_departures").value
                == departures)

    def test_deterministic_replay(self, tiny_problem):
        trace = make_trace(tiny_problem)
        outputs = []
        for _ in range(2):
            result, _ = replay_churn(
                tiny_problem, trace, DIST, np.random.default_rng(4), 300,
                replay_config=ReplayConfig(reopt_every=3,
                                           reopt_algorithm="Gr*"))
            outputs.append(result)
        assert outputs[0].telemetry.to_json() == outputs[1].telemetry.to_json()
        assert np.array_equal(outputs[0].deliveries, outputs[1].deliveries)

    def test_reoptimization_fires(self, tiny_problem):
        trace = make_trace(tiny_problem)
        result, _ = replay_churn(
            tiny_problem, trace, DIST, np.random.default_rng(4), 300,
            replay_config=ReplayConfig(reopt_every=2,
                                       reopt_algorithm="Gr*"))
        assert result.telemetry.counter("reoptimizations").value > 0
        assert len(result.telemetry.find_spans("reoptimization")) > 0

    def test_population_mismatch_rejected(self, tiny_problem):
        trace = generate_churn_trace(tiny_problem.num_subscribers + 1, 2,
                                     np.random.default_rng(0))
        with pytest.raises(ValueError):
            replay_churn(tiny_problem, trace, DIST,
                         np.random.default_rng(0), 50)

    def test_step_interval_validation(self):
        with pytest.raises(ValueError):
            ReplayConfig(step_interval=0.0)
        with pytest.raises(ValueError):
            ReplayConfig(reopt_every=-1)

    def test_explicit_step_interval(self, tiny_problem):
        trace = make_trace(tiny_problem, horizon=3)
        config = RuntimeConfig(publish_interval=1.0)
        result, _ = replay_churn(
            tiny_problem, trace, DIST, np.random.default_rng(4), 100,
            engine_config=config,
            replay_config=ReplayConfig(step_interval=5.0))
        # All steps land inside the run: the counters saw every arrival.
        arrivals = sum(len(s.arrivals) for s in trace.steps)
        assert result.telemetry.counter("churn_arrivals").value == arrivals
