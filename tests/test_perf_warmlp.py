"""Differential oracle for the persistent LP workspace (repro.perf.fastlp).

The workspace's block decomposition must be *invisible*: on a
block-diagonal model, the stitched solution must be byte-identical
(sha256) to solving each block with cold public ``linprog`` and placing
the pieces by hand — the same oracle discipline ``test_perf_fastlp.py``
applies to the direct HiGHS path.  Memoization must return the identical
object, single-component models must take the exact direct path, and
``split_lp_blocks`` must recover a planted block structure.
"""

import hashlib

import numpy as np
import pytest
from scipy import sparse
from scipy.optimize import linprog

from repro.perf.fastlp import (
    HIGHSPY_AVAILABLE,
    LPWorkspace,
    active_lp_workspace,
    lp_workspace,
    solve_bounded_lp,
    split_lp_blocks,
)
from repro.perf.parallel import run_tasks


def random_block(rng, num_vars=30, num_rows=40, density=0.3):
    """One random feasible-by-construction box-bounded LP block."""
    mask = rng.random((num_rows, num_vars)) < density
    a = np.where(mask, rng.uniform(-1.0, 2.0, mask.shape), 0.0)
    interior = rng.uniform(0.2, 0.8, num_vars)
    b = a @ interior + rng.uniform(0.0, 0.5, num_rows)
    cost = rng.uniform(-1.0, 1.0, num_vars)
    return cost, a, b


def block_diagonal_lp(seed, num_blocks=3):
    """A planted block-diagonal LP with equal-sized (balanced) blocks."""
    rng = np.random.default_rng(seed)
    blocks = [random_block(rng) for _ in range(num_blocks)]
    cost = np.concatenate([c for c, _a, _b in blocks])
    a_ub = sparse.block_diag([a for _c, a, _b in blocks], format="csr")
    b_ub = np.concatenate([b for _c, _a, b in blocks])
    return blocks, cost, a_ub, b_ub


def workspace(**kwargs):
    """An LPWorkspace whose size floor admits the planted 90-col models.

    The production floor (256 columns) reflects where decomposition
    starts paying on real LPRelax models; the differential tests only
    need the machinery to fire, not to win wall-clock.
    """
    ws = LPWorkspace(**kwargs)
    ws.MIN_DECOMPOSE_COLS = 64
    return ws


def sha256(x):
    return hashlib.sha256(np.ascontiguousarray(x).tobytes()).hexdigest()


class TestSplitLpBlocks:
    def test_recovers_planted_block_structure(self):
        _blocks, _cost, a_ub, _b_ub = block_diagonal_lp(0)
        num_blocks, row_labels, col_labels = split_lp_blocks(a_ub)
        assert num_blocks == 3
        # block_diag lays blocks out contiguously, and labels are
        # assigned in discovery order, so both labelings are sorted.
        assert (np.diff(row_labels) >= 0).all()
        assert (np.diff(col_labels) >= 0).all()
        assert np.bincount(row_labels).tolist() == [40, 40, 40]
        assert np.bincount(col_labels).tolist() == [30, 30, 30]

    def test_rows_and_columns_sharing_a_nonzero_join(self):
        a = sparse.csr_matrix(np.array([[1.0, 0.0, 0.0],
                                        [1.0, 1.0, 0.0],
                                        [0.0, 0.0, 1.0]]))
        num_blocks, row_labels, col_labels = split_lp_blocks(a)
        assert num_blocks == 2
        assert row_labels[0] == row_labels[1] == col_labels[0] \
            == col_labels[1]
        assert row_labels[2] == col_labels[2] != row_labels[0]

    def test_zero_column_and_empty_row_are_singletons(self):
        a = sparse.csr_matrix(np.array([[1.0, 0.0],
                                        [0.0, 0.0]]))
        num_blocks, row_labels, col_labels = split_lp_blocks(a)
        assert num_blocks == 3
        assert len({row_labels[1], col_labels[1],
                    row_labels[0]}) == 3  # all distinct


class TestDecomposedAgainstColdLinprog:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_stitched_solution_is_byte_identical(self, seed):
        # Oracle: solve each planted block with cold public linprog and
        # stitch by hand; the workspace must produce those exact bytes.
        blocks, cost, a_ub, b_ub = block_diagonal_lp(seed)
        ws = workspace(memoize=False)
        result = ws.solve(cost, a_ub, b_ub)
        assert result.success
        assert ws.stats()["decomposed_solves"] == 1
        assert ws.stats()["blocks_solved"] == len(blocks)

        expected_x = np.zeros(a_ub.shape[1])
        fun_parts = []
        offset = 0
        for c, a, b in blocks:
            ref = linprog(c, A_ub=sparse.csr_matrix(a), b_ub=b,
                          bounds=(0.0, 1.0), method="highs")
            assert ref.success
            expected_x[offset:offset + len(c)] = ref.x
            fun_parts.append(float(ref.fun))
            offset += len(c)
        expected_fun = float(np.asarray(fun_parts, dtype=np.float64).sum())

        assert sha256(result.x) == sha256(expected_x)
        assert result.fun == expected_fun

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_objective_matches_the_full_cold_solve(self, seed):
        # Decomposition is exact in the objective; the full-model HiGHS
        # solve agrees to float precision (iteration order may differ).
        _blocks, cost, a_ub, b_ub = block_diagonal_lp(seed)
        ws = workspace(memoize=False)
        result = ws.solve(cost, a_ub, b_ub)
        full = linprog(cost, A_ub=a_ub, b_ub=b_ub,
                       bounds=(0.0, 1.0), method="highs")
        assert full.success
        assert result.fun == pytest.approx(full.fun, abs=1e-9)

    def test_infeasible_block_fails_the_whole_model(self):
        _blocks, cost, a_ub, b_ub = block_diagonal_lp(0)
        bad = b_ub.copy()
        # -x_0 <= -2 inside the unit box: block 0 becomes infeasible.
        row = sparse.csr_matrix(
            (np.array([-1.0]), (np.array([0]), np.array([0]))),
            shape=(1, a_ub.shape[1]))
        a_bad = sparse.vstack([a_ub, row], format="csr")
        b_bad = np.concatenate([bad, [-2.0]])
        result = workspace(memoize=False).solve(cost, a_bad, b_bad)
        assert not result.success
        assert result.status == 2


class TestWorkspaceBehavior:
    def test_memo_returns_the_identical_object(self):
        _blocks, cost, a_ub, b_ub = block_diagonal_lp(1)
        ws = LPWorkspace()
        first = ws.solve(cost, a_ub, b_ub)
        second = ws.solve(cost, a_ub, b_ub)
        assert second is first
        assert ws.stats()["memo_hits"] == 1
        assert ws.stats()["solves"] == 2

    def test_single_component_takes_the_exact_direct_path(self):
        # A connected model must be bitwise what solve_bounded_lp gives.
        rng = np.random.default_rng(7)
        cost, a, b = random_block(rng, num_vars=80, num_rows=60,
                                  density=0.5)
        a_ub = sparse.csr_matrix(a)
        num_blocks, _rows, _cols = split_lp_blocks(a_ub)
        assert num_blocks == 1
        ws = LPWorkspace(memoize=False)
        result = ws.solve(cost, a_ub, b)
        ref = solve_bounded_lp(cost, a_ub, b)
        assert result.fun == ref.fun
        assert np.array_equal(result.x, ref.x)
        assert ws.stats()["decomposed_solves"] == 0

    def test_small_models_skip_decomposition_bookkeeping(self):
        rng = np.random.default_rng(3)
        cost, a, b = random_block(rng, num_vars=10, num_rows=8)
        ws = LPWorkspace(memoize=False)
        assert ws.solve(cost, sparse.csr_matrix(a), b).success
        assert ws.stats()["decomposed_solves"] == 0

    def test_decompose_off_solves_whole_models(self):
        _blocks, cost, a_ub, b_ub = block_diagonal_lp(2)
        ws = LPWorkspace(decompose=False, memoize=False)
        result = ws.solve(cost, a_ub, b_ub)
        full = solve_bounded_lp(cost, a_ub, b_ub)
        assert result.fun == full.fun
        assert np.array_equal(result.x, full.x)

    def test_context_manager_installs_and_restores(self):
        assert active_lp_workspace() is None
        with lp_workspace() as ws:
            assert active_lp_workspace() is ws
            with lp_workspace() as inner:   # nested: reuse, not replace
                assert inner is ws
            assert active_lp_workspace() is ws
        assert active_lp_workspace() is None

    def test_imbalanced_splits_are_solved_whole(self):
        # One dominant block keeping most columns: decomposition would
        # pay per-fragment overhead for almost no shrink, so the model
        # must take the direct path (still exact, by the oracle above).
        cost = np.concatenate([np.array([-0.5]), np.zeros(70)])
        a = sparse.hstack(
            [sparse.csr_matrix(np.ones((3, 1)) * 0.0),
             sparse.csr_matrix(np.ones((3, 70)))], format="csr")
        b = np.full(3, 100.0)
        ws = workspace(memoize=False)
        ws.MIN_DECOMPOSE_COLS = 8
        result = ws.solve(cost, a, b)
        assert result.success
        assert ws.stats()["decomposed_solves"] == 0

    def test_zero_column_variables_sit_at_their_cheap_bound(self):
        # Two variables in no constraint plus two balanced constrained
        # blocks and one empty (slack-only) row: every special-case
        # branch of the decomposed stitch in one model.
        cost = np.concatenate([np.array([-0.5, 0.5]), np.zeros(70)])
        constrained = sparse.block_diag(
            [np.ones((3, 35)), np.ones((3, 35))], format="csr")
        a = sparse.vstack(
            [sparse.hstack([sparse.csr_matrix((6, 2)), constrained]),
             sparse.csr_matrix((1, 72))], format="csr")
        b = np.concatenate([np.full(6, 100.0), [5.0]])
        ws = workspace(memoize=False)
        ws.MIN_DECOMPOSE_COLS = 8
        result = ws.solve(cost, a, b)
        assert result.success
        assert ws.stats()["decomposed_solves"] == 1
        assert result.x[0] == 1.0 and result.x[1] == 0.0
        assert result.fun == pytest.approx(-0.5)
        assert result.slack[-1] == 5.0

    def test_empty_row_with_negative_rhs_is_infeasible(self):
        # 0 <= -1 can never hold; the stitch must report infeasibility
        # without invoking HiGHS on the degenerate fragment.
        _blocks, cost, a_ub, b_ub = block_diagonal_lp(0)
        a_bad = sparse.vstack(
            [a_ub, sparse.csr_matrix((1, a_ub.shape[1]))], format="csr")
        b_bad = np.concatenate([b_ub, [-1.0]])
        result = workspace(memoize=False).solve(cost, a_bad, b_bad)
        assert not result.success
        assert result.status == 2


def test_run_tasks_preserves_task_order():
    tasks = [np.array([float(i)]) for i in range(6)]
    serial = run_tasks(_double, tasks, workers=1)
    assert [float(r[0]) for r in serial] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]


def _double(x):
    return x * 2.0


def test_highspy_gate_matches_the_environment():
    # The container ships scipy's embedded HiGHS only; if highspy ever
    # appears, the warm-start path activates and this canary flags the
    # behavior change so the differential tests can be extended to it.
    try:
        import highspy  # noqa: F401
        installed = True
    except ImportError:
        installed = False
    assert HIGHSPY_AVAILABLE == installed
