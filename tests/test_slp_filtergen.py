"""Tests for candidate filter generation (FilterGen)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slp import FilterGenConfig, generate_candidate_filters
from repro.core.slp.filtergen import _interval_classes
from repro.geometry import RectSet


def clustered_subs(rng, clusters=4, per=10, extent=100.0):
    anchors = rng.uniform(0, extent, size=(clusters, 2))
    centers = np.repeat(anchors, per, axis=0) \
        + rng.uniform(-2, 2, size=(clusters * per, 2))
    half = rng.uniform(0.2, 1.0, size=(clusters * per, 2))
    return RectSet(centers - half, centers + half)


class TestIntervalClasses:
    def test_every_projection_covered(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(0, 50, size=30)
        hi = lo + rng.uniform(0.5, 10, size=30)
        intervals = _interval_classes(lo, hi, eta=0.5, max_classes=24)
        for a, b in zip(lo, hi):
            assert any(ia <= a and b <= ib for ia, ib in intervals), \
                f"projection [{a}, {b}] uncovered"

    def test_identical_intervals(self):
        lo = np.zeros(5)
        hi = np.ones(5)
        intervals = _interval_classes(lo, hi, eta=0.5, max_classes=24)
        assert (0.0, 1.0) in intervals

    def test_degenerate_projections(self):
        lo = np.array([1.0, 2.0, 3.0])
        hi = lo.copy()
        intervals = _interval_classes(lo, hi, eta=0.5, max_classes=24)
        for a, b in zip(lo, hi):
            assert any(ia <= a and b <= ib for ia, ib in intervals)

    def test_span_always_included(self):
        rng = np.random.default_rng(1)
        lo = rng.uniform(0, 50, size=10)
        hi = lo + rng.uniform(0.5, 5, size=10)
        intervals = _interval_classes(lo, hi, eta=0.5, max_classes=24)
        assert (float(lo.min()), float(hi.max())) in intervals

    @given(st.integers(0, 10_000), st.integers(2, 25))
    @settings(max_examples=30, deadline=None)
    def test_coverage_property(self, seed, n):
        rng = np.random.default_rng(seed)
        lo = rng.uniform(0, 100, size=n)
        hi = lo + rng.uniform(0.01, 40, size=n)
        intervals = _interval_classes(lo, hi, eta=0.5, max_classes=24)
        for a, b in zip(lo, hi):
            assert any(ia <= a + 1e-12 and b <= ib + 1e-12
                       for ia, ib in intervals)


class TestGenerateCandidateFilters:
    def test_every_subscription_contained_somewhere(self, rng):
        subs = clustered_subs(rng)
        candidates = generate_candidate_filters(subs, num_brokers=4, rng=rng)
        matrix = candidates.containment_matrix(subs)
        assert matrix.any(axis=0).all()

    def test_global_meb_present(self, rng):
        subs = clustered_subs(rng)
        candidates = generate_candidate_filters(subs, num_brokers=4, rng=rng)
        meb = subs.meb()
        assert candidates.contains_rect(meb).any() or any(
            candidates.rect(i) == meb for i in range(len(candidates)))

    def test_tight_candidates_exist(self, rng):
        """Clusters should yield candidates far smaller than the MEB."""
        subs = clustered_subs(rng, clusters=4, per=10)
        candidates = generate_candidate_filters(subs, num_brokers=4, rng=rng)
        meb_volume = subs.meb().volume()
        assert candidates.volumes().min() < 0.05 * meb_volume

    def test_respects_max_candidates(self, rng):
        subs = clustered_subs(rng, clusters=10, per=10)
        config = FilterGenConfig(max_candidates=15)
        candidates = generate_candidate_filters(subs, num_brokers=10,
                                                rng=rng, config=config)
        assert len(candidates) <= 15 + 1  # +1 for the re-appended MEB

    def test_without_super_subscriptions(self, rng):
        subs = clustered_subs(rng, clusters=3, per=5)
        config = FilterGenConfig(use_super_subscriptions=False)
        candidates = generate_candidate_filters(subs, num_brokers=2,
                                                rng=rng, config=config)
        assert candidates.containment_matrix(subs).any(axis=0).all()

    def test_network_points_accepted(self, rng):
        subs = clustered_subs(rng)
        points = rng.normal(size=(len(subs), 5))
        candidates = generate_candidate_filters(subs, num_brokers=2, rng=rng,
                                                network_points=points)
        assert len(candidates) >= 1

    def test_single_subscription(self, rng):
        subs = RectSet(np.array([[1.0, 1.0]]), np.array([[2.0, 3.0]]))
        candidates = generate_candidate_filters(subs, num_brokers=3, rng=rng)
        assert candidates.containment_matrix(subs).any(axis=0).all()

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_candidate_filters(RectSet.empty(2), 2, rng)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FilterGenConfig(eta=0.4)
        with pytest.raises(ValueError):
            FilterGenConfig(eta=1.0)
        with pytest.raises(ValueError):
            FilterGenConfig(super_subscription_factor=0)


class TestIntervalDedupe:
    def test_near_duplicates_collapse(self):
        from repro.core.slp.filtergen import _dedupe_intervals

        intervals = [(0.0, 1.0), (1e-12, 1.0 + 1e-12), (0.5, 1.5)]
        assert _dedupe_intervals(intervals, 1e-9) == [(0.0, 1.0), (0.5, 1.5)]

    def test_zero_tolerance_keeps_distinct_floats(self):
        from repro.core.slp.filtergen import _dedupe_intervals

        intervals = [(0.0, 1.0), (1e-12, 1.0), (0.0, 1.0)]  # one exact dup
        assert _dedupe_intervals(intervals, 0.0) == [(0.0, 1.0), (1e-12, 1.0)]

    def test_close_lo_far_hi_survives(self):
        from repro.core.slp.filtergen import _dedupe_intervals

        intervals = [(0.0, 1.0), (1e-12, 2.0)]
        assert _dedupe_intervals(intervals, 1e-9) == intervals

    def test_interval_classes_dedupe_reduces_candidates(self):
        from repro.core.slp.filtergen import _interval_classes

        # Projections engineered so two length classes emit the same
        # interval up to float noise.
        lo = np.array([0.0, 0.0 + 1e-13, 4.0])
        hi = np.array([1.0, 1.0 - 1e-13, 5.0])
        exact = _interval_classes(lo, hi, eta=0.5, max_classes=8,
                                  dedupe_tol=0.0)
        tolerant = _interval_classes(lo, hi, eta=0.5, max_classes=8,
                                     dedupe_tol=1e-9)
        assert len(tolerant) <= len(exact)
        # Every projection is still covered by some tolerant interval.
        for a, b in zip(lo, hi):
            assert any(ivl_a <= a + 1e-9 and b <= ivl_b + 1e-9
                       for ivl_a, ivl_b in tolerant)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            FilterGenConfig(interval_dedupe_tol=-1e-9)
