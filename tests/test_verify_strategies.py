"""Random-problem strategies: determinism, shape, and feasibility."""

import numpy as np
import pytest

from repro.verify import (
    EVENT_DOMAIN,
    STRATEGY_NAMES,
    problem_cases,
    random_problem,
)


class TestDeterminism:
    def test_same_seed_same_instance(self):
        a = random_problem(42, "clustered").problem
        b = random_problem(42, "clustered").problem
        assert np.array_equal(a.subscriber_points, b.subscriber_points)
        assert np.array_equal(a.subscriptions.lo, b.subscriptions.lo)
        assert np.array_equal(a.tree.positions, b.tree.positions)
        assert a.params == b.params

    def test_different_seeds_differ(self):
        a = random_problem(1, "uniform").problem
        b = random_problem(2, "uniform").problem
        assert not np.array_equal(a.subscriptions.lo, b.subscriptions.lo)

    def test_kinds_differ(self):
        a = random_problem(5, "uniform").problem
        b = random_problem(5, "skewed").problem
        assert not np.array_equal(a.subscriptions.lo, b.subscriptions.lo)


class TestInstanceShape:
    @pytest.mark.parametrize("kind", STRATEGY_NAMES)
    def test_instances_are_wellformed(self, kind):
        for seed in range(5):
            instance = random_problem(seed, kind)
            problem = instance.problem
            assert instance.case_id == f"{kind}-{seed}"
            assert 16 <= problem.num_subscribers < 48
            assert 3 <= problem.num_leaf_brokers <= problem.tree.num_brokers
            # Subscriptions live inside the shared event domain.
            assert np.all(problem.subscriptions.lo >= EVENT_DOMAIN.lo)
            assert np.all(problem.subscriptions.hi <= EVENT_DOMAIN.hi)
            # Feasibility: every subscriber has a latency-feasible leaf.
            assert problem.candidate_counts().min() >= 1

    def test_degenerate_strategy_produces_flat_boxes(self):
        rects = random_problem(0, "degenerate").problem.subscriptions
        widths = rects.widths()
        assert np.any(widths == 0.0)
        assert np.any(widths > 0.0)

    def test_adversarial_strategy_produces_duplicates(self):
        found_duplicates = False
        for seed in range(5):
            rects = random_problem(seed, "adversarial").problem.subscriptions
            if len(rects.dedupe()) < len(rects):
                found_duplicates = True
                break
        assert found_duplicates

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            random_problem(0, "mystery")


class TestProblemCases:
    def test_round_robin_covers_every_strategy(self):
        cases = problem_cases(10)
        kinds = [kind for kind, _ in cases]
        for name in STRATEGY_NAMES:
            assert name in kinds

    def test_seeds_are_distinct(self):
        cases = problem_cases(25, base_seed=100)
        assert len({seed for _, seed in cases}) == 25
        assert min(seed for _, seed in cases) == 100

    def test_count_validation(self):
        assert problem_cases(0) == []
        with pytest.raises(ValueError):
            problem_cases(-1)
