"""Tests for the SA problem model, validation, and filter construction."""

import numpy as np
import pytest

from repro import (
    SAParameters,
    SAProblem,
    SASolution,
    build_one_level_tree,
    filters_from_assignment,
)
from repro.geometry import Rect, RectSet
from repro.pubsub import Filter


def line_problem(max_delay=0.5, beta=2.0, beta_max=3.0):
    """Publisher at origin; two brokers at x=1 and x=2; subs on the line."""
    tree = build_one_level_tree(np.zeros(2),
                                np.array([[1.0, 0.0], [2.0, 0.0]]))
    points = np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
    subs = RectSet(np.array([[0.0, 0.0], [4.0, 4.0], [8.0, 8.0]]),
                   np.array([[1.0, 1.0], [5.0, 5.0], [9.0, 9.0]]))
    params = SAParameters(alpha=2, max_delay=max_delay, beta=beta,
                          beta_max=beta_max)
    return SAProblem(tree, points, subs, params)


class TestParameters:
    def test_defaults_match_paper(self):
        p = SAParameters()
        assert p.alpha == 3
        assert p.max_delay == 0.3
        assert (p.beta, p.beta_max) == (1.5, 1.8)

    @pytest.mark.parametrize("kwargs", [
        {"alpha": 0},
        {"max_delay": -0.1},
        {"beta": 0.0},
        {"beta": 2.0, "beta_max": 1.5},
        {"latency_mode": "bogus"},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SAParameters(**kwargs)


class TestProblemDerivations:
    def test_shortest_latency(self):
        problem = line_problem()
        # Subscriber at (1,0): best via broker 1 -> 1 + 0 = 1.
        assert problem.shortest_latency[0] == pytest.approx(1.0)
        # Subscriber at (3,0): broker1 path 1+2=3; broker2 path 2+1=3.
        assert problem.shortest_latency[2] == pytest.approx(3.0)

    def test_latency_budget_scaling(self):
        problem = line_problem(max_delay=0.5)
        assert np.allclose(problem.latency_budgets,
                           1.5 * problem.shortest_latency)

    def test_feasible_leaf_matrix(self):
        problem = line_problem(max_delay=0.1)
        # Subscriber 0 at (1,0): broker1 latency 1 (ok), broker2 2+1=3 (no).
        assert problem.feasible_leaf[0, 0]
        assert not problem.feasible_leaf[1, 0]

    def test_candidate_counts(self):
        problem = line_problem(max_delay=5.0)
        assert problem.candidate_counts().tolist() == [2, 2, 2]

    def test_delays(self):
        problem = line_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[1], leaves[1], leaves[1]])
        delays = problem.delays(assignment)
        # Subscriber 0 via broker2: 2 + 1 = 3 vs best 1 -> delay 2.
        assert delays[0] == pytest.approx(2.0)

    def test_delays_unassigned_inf(self):
        problem = line_problem()
        delays = problem.delays(np.array([-1, -1, -1]))
        assert np.isinf(delays).all()

    def test_loads_and_lbf(self):
        problem = line_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[0], leaves[1]])
        assert problem.loads(assignment).tolist() == [2, 1]
        assert problem.load_balance_factor(assignment) == pytest.approx(
            2 / (0.5 * 3))

    def test_custom_kappas_validation(self):
        tree = build_one_level_tree(np.zeros(2), np.ones((2, 2)))
        points = np.zeros((1, 2))
        subs = RectSet(np.zeros((1, 2)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            SAProblem(tree, points, subs, kappas=np.array([0.5, 0.7]))
        with pytest.raises(ValueError):
            SAProblem(tree, points, subs, kappas=np.array([1.0]))

    def test_explicit_latency_budgets(self):
        tree = build_one_level_tree(np.zeros(2), np.ones((2, 2)))
        points = np.zeros((2, 2))
        subs = RectSet(np.zeros((2, 2)), np.ones((2, 2)))
        problem = SAProblem(tree, points, subs,
                            latency_budgets=np.array([10.0, 0.1]))
        assert problem.feasible_leaf[:, 0].all()
        assert not problem.feasible_leaf[:, 1].any()

    def test_last_hop_mode(self):
        tree = build_one_level_tree(np.zeros(2),
                                    np.array([[1.0, 0.0], [5.0, 0.0]]))
        points = np.array([[1.5, 0.0]])
        subs = RectSet(np.zeros((1, 2)), np.ones((1, 2)))
        params = SAParameters(max_delay=0.5, latency_mode="last_hop",
                              beta=2.0, beta_max=2.0)
        problem = SAProblem(tree, points, subs, params)
        # Last hops: 0.5 and 3.5; budget = 1.5 * 0.5 = 0.75.
        assert problem.feasible_leaf[0, 0]
        assert not problem.feasible_leaf[1, 0]

    def test_dimension_mismatch_rejected(self):
        tree = build_one_level_tree(np.zeros(2), np.ones((2, 2)))
        subs = RectSet(np.zeros((1, 2)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            SAProblem(tree, np.zeros((1, 3)), subs)
        with pytest.raises(ValueError):
            SAProblem(tree, np.zeros((2, 2)), subs)


class TestValidation:
    def test_valid_solution(self):
        problem = line_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[0], leaves[1]])
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        report = SASolution(problem, assignment, filters).validate()
        assert report.feasible
        assert report.nesting_ok
        assert report.num_latency_violations == 0

    def test_unassigned_detected(self):
        problem = line_problem()
        assignment = np.array([int(problem.tree.leaves[0]), -1, -1])
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        report = SASolution(problem, assignment, filters).validate()
        assert not report.all_assigned
        assert not report.feasible

    def test_latency_violation_detected(self):
        problem = line_problem(max_delay=0.1)
        leaves = problem.tree.leaves
        assignment = np.array([leaves[1], leaves[1], leaves[1]])
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        report = SASolution(problem, assignment, filters).validate()
        assert not report.latency_ok
        assert report.num_latency_violations >= 1

    def test_nesting_violation_detected(self):
        problem = line_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[0], leaves[1]])
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        # Corrupt one leaf's filter so it misses its subscriptions.
        filters[int(leaves[0])] = Filter.from_rects(
            [Rect([90.0, 90.0], [91.0, 91.0])])
        report = SASolution(problem, assignment, filters).validate()
        assert not report.nesting_ok

    def test_complexity_violation_detected(self):
        problem = line_problem()  # alpha = 2
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[0], leaves[1]])
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        filters[int(leaves[0])] = Filter(RectSet(np.zeros((3, 2)),
                                                 np.full((3, 2), 100.0)))
        report = SASolution(problem, assignment, filters).validate()
        assert not report.complexity_ok

    def test_lbf_cap_detected(self):
        problem = line_problem(beta=1.0, beta_max=1.0)
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0], leaves[0], leaves[0]])
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        report = SASolution(problem, assignment, filters).validate()
        assert not report.lbf_within_max
        assert report.lbf == pytest.approx(2.0)


class TestFiltersFromAssignment:
    def test_complexity_bound(self, small_problem):
        rng = np.random.default_rng(0)
        leaves = small_problem.tree.leaves
        assignment = leaves[np.arange(small_problem.num_subscribers)
                            % len(leaves)]
        filters = filters_from_assignment(small_problem, assignment, rng)
        alpha = small_problem.params.alpha
        assert all(f.complexity <= alpha for f in filters.values())

    def test_every_subscription_covered(self, small_problem):
        rng = np.random.default_rng(0)
        leaves = small_problem.tree.leaves
        assignment = leaves[np.arange(small_problem.num_subscribers)
                            % len(leaves)]
        filters = filters_from_assignment(small_problem, assignment, rng)
        for j in range(small_problem.num_subscribers):
            assert filters[int(assignment[j])].contains_subscription(
                small_problem.subscriptions.rect(j))

    def test_multilevel_nesting(self, small_multilevel_problem):
        problem = small_multilevel_problem
        rng = np.random.default_rng(1)
        leaves = problem.tree.leaves
        assignment = leaves[np.arange(problem.num_subscribers) % len(leaves)]
        filters = filters_from_assignment(problem, assignment, rng)
        solution = SASolution(problem, assignment, filters)
        assert solution._count_nesting_violations() == 0

    def test_empty_leaf_gets_empty_filter(self):
        problem = line_problem()
        leaves = problem.tree.leaves
        assignment = np.array([leaves[0]] * 3)
        filters = filters_from_assignment(problem, assignment,
                                          np.random.default_rng(0))
        assert filters[int(leaves[1])].is_empty()
