"""Discrete-event runtime engine tests.

The correctness anchor: with zero faults, zero service time, and a
frozen population, the engine must reproduce the batch simulator
(:func:`simulate_dissemination`) *exactly* on the same seed — same
per-broker entry counts, same per-subscriber deliveries, no misses.
"""

import numpy as np
import pytest

from repro import (
    DisseminationEngine,
    RuntimeConfig,
    UniformEvents,
    offline_greedy,
    simulate_dissemination,
)
from repro.geometry import Rect
from repro.pubsub import sample_event_stream


DIST = UniformEvents(Rect([0, 0], [100, 100]))


def make_engine(problem, solution, **config_kwargs):
    return DisseminationEngine(
        problem.tree, solution.filters, solution.assignment,
        problem.subscriptions, config=RuntimeConfig(**config_kwargs),
        subscriber_points=problem.subscriber_points)


class TestFaultFreeEquivalence:
    def test_matches_batch_simulator_exactly(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        batch = simulate_dissemination(
            tiny_problem.tree, solution.filters, solution.assignment,
            tiny_problem.subscriptions, DIST, np.random.default_rng(42),
            num_events=700,
            subscriber_points=tiny_problem.subscriber_points)
        engine = make_engine(tiny_problem, solution)
        result = engine.run(DIST, np.random.default_rng(42), num_events=700)

        assert np.array_equal(result.node_entries, batch.node_entries)
        assert np.array_equal(result.deliveries, batch.deliveries)
        assert np.array_equal(result.missed, batch.missed)
        assert result.total_missed == 0
        assert result.total_delivery_latency == pytest.approx(
            batch.total_delivery_latency)

    def test_sample_event_stream_replicates_rng_consumption(self):
        """The helper draws exactly like the batch simulator's chunking."""
        direct = DIST.sample(np.random.default_rng(3), 100)
        streamed = sample_event_stream(DIST, np.random.default_rng(3), 100,
                                       chunk_size=512)
        assert np.array_equal(direct, streamed)
        # Chunked consumption differs from one big draw once num_events
        # exceeds the chunk, and the helper must follow the chunked path.
        chunked = sample_event_stream(DIST, np.random.default_rng(3), 700,
                                      chunk_size=512)
        assert chunked.shape == (700, 2)
        assert np.array_equal(chunked[:512],
                              DIST.sample(np.random.default_rng(3), 512))

    def test_as_simulation_result_view(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        result = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(0), num_events=200)
        view = result.as_simulation_result()
        assert view.num_events == 200
        assert np.array_equal(view.deliveries, result.deliveries)
        assert view.delivery_rate == result.delivery_rate


class TestDeterminism:
    def test_same_seed_identical_telemetry(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        runs = []
        for _ in range(2):
            engine = make_engine(tiny_problem, solution, service_time=0.01,
                                 link_loss=0.05, trace_events=5)
            result = engine.run(DIST, np.random.default_rng(9),
                                num_events=300)
            runs.append(result)
        assert runs[0].telemetry.to_json() == runs[1].telemetry.to_json()
        assert np.array_equal(runs[0].deliveries, runs[1].deliveries)
        assert runs[0].duration == runs[1].duration


class TestQueueing:
    def test_zero_service_time_leaves_queues_empty(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        result = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(1), num_events=300)
        assert int(result.queue_peaks.max()) == 0

    def test_slow_service_builds_queues_without_losing_events(
            self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        baseline = make_engine(tiny_problem, solution,
                               publish_interval=0.1).run(
            DIST, np.random.default_rng(5), num_events=300)
        # Service slower than the publish interval: queues must grow, yet
        # with unbounded capacity every delivery still happens.
        slow = make_engine(tiny_problem, solution,
                           publish_interval=0.1, service_time=0.5).run(
            DIST, np.random.default_rng(5), num_events=300)
        assert int(slow.queue_peaks.max()) > 0
        assert slow.total_deliveries == baseline.total_deliveries
        assert slow.total_missed == 0
        assert slow.duration > baseline.duration
        assert slow.mean_delivery_latency > baseline.mean_delivery_latency

    def test_bounded_queue_drops_under_backpressure(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        result = make_engine(tiny_problem, solution,
                             publish_interval=0.01, service_time=1.0,
                             queue_capacity=1).run(
            DIST, np.random.default_rng(5), num_events=300)
        drops = result.telemetry.counter("events_dropped_backpressure").value
        assert drops > 0
        assert result.total_missed > 0
        assert result.delivery_rate < 1.0


class TestValidation:
    def test_missing_filter_rejected(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        incomplete = dict(solution.filters)
        incomplete.pop(int(tiny_problem.tree.leaves[0]))
        with pytest.raises(ValueError):
            DisseminationEngine(tiny_problem.tree, incomplete,
                                solution.assignment,
                                tiny_problem.subscriptions)

    def test_bad_assignment_shape_rejected(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        with pytest.raises(ValueError):
            DisseminationEngine(tiny_problem.tree, solution.filters,
                                solution.assignment[:-1],
                                tiny_problem.subscriptions)

    @pytest.mark.parametrize("kwargs", [
        {"publish_interval": -1.0},
        {"service_time": -0.1},
        {"queue_capacity": 0},
        {"link_loss": 1.0},
        {"link_loss": -0.2},
        {"trace_events": -1},
        {"max_duration": 0.0},
        {"max_duration": -3.0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)

    def test_negative_event_count_rejected(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        with pytest.raises(ValueError):
            make_engine(tiny_problem, solution).run(
                DIST, np.random.default_rng(0), num_events=-1)


class TestMaxDuration:
    def test_guard_aborts_and_flags_the_result(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        full = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(4), num_events=200)
        assert full.aborted is False

        capped = make_engine(tiny_problem, solution, max_duration=50.0).run(
            DIST, np.random.default_rng(4), num_events=200)
        assert capped.aborted is True
        assert capped.duration <= 50.0
        assert capped.total_deliveries < full.total_deliveries
        aborts = capped.telemetry.counter("aborted_max_duration").value
        assert aborts == 1

    def test_loose_guard_is_a_no_op(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        result = make_engine(tiny_problem, solution,
                             max_duration=10**9).run(
            DIST, np.random.default_rng(4), num_events=100)
        assert result.aborted is False


class TestResultAccessors:
    def test_zero_event_run_is_all_zero(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        result = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(0), num_events=0)
        assert result.total_deliveries == 0
        assert result.total_broker_entries == 0
        assert result.mean_delivery_latency == 0.0
        assert result.empirical_bandwidth(100 * 100) == 0.0
        assert result.delivery_rate == 1.0
        assert result.events_per_time() == 0.0

    def test_to_dict_and_dump_round_trip(self, tiny_problem, tmp_path):
        import json

        solution = offline_greedy(tiny_problem)
        result = make_engine(tiny_problem, solution).run(
            DIST, np.random.default_rng(6), num_events=120)
        payload = result.to_dict()
        assert payload["schema_version"] == 1
        assert payload["kind"] == "runtime_result"
        assert payload["num_events"] == 120
        assert payload["deliveries"] == result.deliveries.tolist()
        assert payload["telemetry"]["counters"]["deliveries"] == \
            result.total_deliveries
        # to_dict is deterministic; the file form adds provenance only.
        path = tmp_path / "result.json"
        result.dump(str(path))
        dumped = json.loads(path.read_text())
        assert dumped.pop("metadata").keys() == {
            "git_commit", "timestamp_utc", "host"}
        assert dumped == json.loads(json.dumps(payload))

    def test_trace_spans_recorded_and_closed(self, tiny_problem):
        solution = offline_greedy(tiny_problem)
        engine = make_engine(tiny_problem, solution, trace_events=3)
        result = engine.run(DIST, np.random.default_rng(2), num_events=50)
        spans = [s for s in result.telemetry.spans
                 if s.name.startswith("event[")]
        assert len(spans) == 3
        assert all(s.end is not None for s in spans)
