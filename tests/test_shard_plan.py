"""Shard planning invariants: partitioning, covers, packing, rebalance.

The plan layer is pure, deterministic bookkeeping — but every
dissemination guarantee downstream leans on its invariants: the
subgroups must partition the population exactly, every member
subscription must lie inside its shard's cover filter, and re-planning
must respect the capacity bound while moving as little as possible.
"""

import numpy as np
import pytest

from repro.geometry import RectSet
from repro.shard import (
    MAX_COVER_RECTS,
    ShardPlan,
    plan_shards,
    rebalance_groups,
    replan_shards,
)


def boxes(rng, n):
    lo = rng.uniform(0.0, 90.0, size=(n, 2))
    hi = np.minimum(lo + rng.uniform(0.5, 10.0, size=(n, 2)), 100.0)
    return RectSet(lo, hi)


def assert_partition(plan: ShardPlan) -> None:
    owner = plan.shard_of()
    assert (owner >= 0).all(), "every subscriber must be owned"
    assert int(plan.loads().sum()) == plan.num_subscribers
    seen = np.concatenate(plan.members) if plan.num_shards else np.empty(0)
    assert len(seen) == len(np.unique(seen)) == plan.num_subscribers


def assert_covers_enclose(plan: ShardPlan, subs: RectSet) -> None:
    for members, cover in zip(plan.members, plan.covers):
        if not len(members):
            continue
        sub = subs.take(members)
        # Every member rectangle must lie inside some cover rectangle's
        # bounding region: probe with the member's own corners/centre.
        for pts in (sub.lo, sub.hi, (sub.lo + sub.hi) / 2):
            assert cover.contains_points(pts).all()


class TestPlanShards:
    @pytest.mark.parametrize("shards", [1, 2, 3, 8])
    def test_partition_and_covers(self, rng, shards):
        subs = boxes(rng, 200)
        assignment = rng.integers(0, 6, size=200)
        plan = plan_shards(subs, shards, assignment=assignment)
        assert plan.num_shards <= shards
        assert_partition(plan)
        assert_covers_enclose(plan, subs)

    def test_deterministic(self, rng):
        subs = boxes(rng, 150)
        assignment = rng.integers(0, 5, size=150)
        a = plan_shards(subs, 4, assignment=assignment)
        b = plan_shards(subs, 4, assignment=assignment)
        assert all(np.array_equal(x, y)
                   for x, y in zip(a.members, b.members))
        assert np.array_equal(a.group_shard, b.group_shard)

    def test_feasibility_signature_grouping(self, rng):
        subs = boxes(rng, 60)
        feasible = rng.random((4, 60)) < 0.5
        feasible[0] = True  # every subscriber has at least one leaf
        plan = plan_shards(subs, 3, feasible=feasible)
        assert_partition(plan)
        # Subscribers sharing a feasibility column stay in one subgroup
        # unless the size cap split them.
        packed = np.packbits(feasible, axis=0).T
        owner = plan.shard_of()
        for group in plan.groups:
            assert len(np.unique(packed[group], axis=0)) == 1
            assert len(np.unique(owner[group])) == 1

    def test_effective_shards_capped_by_groups(self, rng):
        subs = boxes(rng, 10)
        # One signature, group cap >= population: a single subgroup.
        plan = plan_shards(subs, 8, max_group_size=10)
        assert plan.num_shards == 1

    def test_lpt_balances_loads(self, rng):
        subs = boxes(rng, 400)
        assignment = rng.integers(0, 16, size=400)
        plan = plan_shards(subs, 4, assignment=assignment)
        loads = plan.loads()
        # LPT keeps the spread within the largest subgroup's size.
        largest = max(len(g) for g in plan.groups)
        assert int(loads.max() - loads.min()) <= largest

    def test_cover_rect_cap(self, rng):
        subs = boxes(rng, 300)
        assignment = np.arange(300)  # every subscriber its own signature
        plan = plan_shards(subs, 2, assignment=assignment,
                           max_group_size=1, max_cover_rects=8)
        for cover in plan.covers:
            assert len(cover.rects) <= 8
        assert_covers_enclose(plan, subs)

    def test_empty_population(self):
        subs = RectSet(np.empty((0, 2)), np.empty((0, 2)))
        plan = plan_shards(subs, 4)
        assert plan.num_subscribers == 0
        assert plan.num_shards == 1
        assert_partition(plan)

    def test_bad_arguments(self, rng):
        subs = boxes(rng, 20)
        with pytest.raises(ValueError):
            plan_shards(subs, 0)
        with pytest.raises(ValueError):
            plan_shards(subs, 2, max_group_size=0)
        with pytest.raises(ValueError):
            plan_shards(subs, 2, assignment=np.zeros(3, dtype=int))


class TestRebalance:
    def test_all_fit_at_home_nothing_moves(self):
        weights = np.array([5, 5, 5, 5])
        home = np.array([0, 0, 1, 1])
        assert np.array_equal(
            rebalance_groups(weights, home, 2), home)

    def test_overflow_migrates_minimally(self):
        # Shard 0 is overloaded: capacity ceil(40/2)=20, home load 30.
        weights = np.array([10, 10, 10, 10])
        home = np.array([0, 0, 0, 1])
        assigned = rebalance_groups(weights, home, 2)
        moved = int(np.sum(assigned != home))
        assert moved == 1
        loads = np.bincount(assigned, weights=weights, minlength=2)
        assert loads.max() <= 20

    def test_single_shard_trivial(self):
        assigned = rebalance_groups(np.array([3, 7]), np.array([0, 0]), 1)
        assert np.array_equal(assigned, [0, 0])

    def test_deterministic(self):
        weights = np.array([8, 6, 6, 4, 4, 2])
        home = np.array([0, 0, 0, 1, 1, 2])
        a = rebalance_groups(weights, home, 3)
        b = rebalance_groups(weights, home, 3)
        assert np.array_equal(a, b)

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            rebalance_groups(np.array([1]), np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            rebalance_groups(np.array([1]), np.array([5]), 2)
        with pytest.raises(ValueError):
            rebalance_groups(np.array([1]), np.array([0]), 0)


class TestReplanShards:
    def test_unchanged_population_moves_nothing(self, rng):
        subs = boxes(rng, 200)
        assignment = rng.integers(0, 6, size=200)
        plan = plan_shards(subs, 3, assignment=assignment)
        new_plan, moved = replan_shards(subs, plan, assignment=assignment)
        assert moved == 0
        assert np.array_equal(new_plan.shard_of(), plan.shard_of())

    def test_churned_assignment_stays_partition(self, rng):
        subs = boxes(rng, 200)
        assignment = rng.integers(0, 6, size=200)
        plan = plan_shards(subs, 3, assignment=assignment)
        churned = assignment.copy()
        churned[rng.choice(200, size=50, replace=False)] = \
            rng.integers(0, 6, size=50)
        new_plan, moved = replan_shards(subs, plan, assignment=churned)
        assert_partition(new_plan)
        assert_covers_enclose(new_plan, subs)
        owner = plan.shard_of()
        new_owner = new_plan.shard_of()
        # Migration stays a small fraction: the untouched 150 subscribers
        # keep their signatures, so their subgroups anchor at home.
        assert moved == int(np.sum(owner != new_owner))
        assert moved <= 100

    def test_capacity_respected_up_to_one_group(self, rng):
        subs = boxes(rng, 240)
        assignment = rng.integers(0, 8, size=240)
        plan = plan_shards(subs, 4, assignment=assignment)
        new_plan, _moved = replan_shards(subs, plan, assignment=assignment)
        capacity = -(-240 // new_plan.num_shards)
        largest = max(len(g) for g in new_plan.groups)
        assert int(new_plan.loads().max()) <= capacity + largest
